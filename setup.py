"""Legacy setup shim: enables `pip install -e . --no-use-pep517` on
environments that lack the `wheel` package (configuration in pyproject.toml)."""
from setuptools import setup

setup()
