"""Shared fixtures for the PEAS reproduction test suite."""

import random

import pytest

from repro.net import Field
from repro.sim import RngRegistry, Simulator

from tests.helpers import make_network


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def rngs():
    return RngRegistry(seed=12345)


@pytest.fixture
def small_field():
    return Field(20.0, 20.0)


@pytest.fixture
def small_network():
    return make_network()
