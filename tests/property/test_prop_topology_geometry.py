"""Property-based tests: working topology maintenance and §3 geometry."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import min_pairwise_distance, rsa_working_set
from repro.net import Field, SpatialGrid, distance
from repro.routing import WorkingTopology

coords = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
points = st.tuples(coords, coords)


class TestWorkingTopologyProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(points, min_size=1, max_size=30, unique=True),
        st.data(),
    )
    def test_adjacency_matches_brute_force_under_churn(self, positions, data):
        """After any add/remove interleaving, adjacency equals ground truth."""
        grid = SpatialGrid(Field(30.0, 30.0), cell_size=3.0)
        for index, position in enumerate(positions):
            grid.insert(index, position)
        topology = WorkingTopology(grid, comm_range=10.0)
        active = {}
        script = data.draw(
            st.lists(
                st.tuples(st.integers(0, len(positions) - 1), st.booleans()),
                max_size=60,
            )
        )
        for index, should_add in script:
            if should_add and index not in active:
                topology.add_working(index, positions[index])
                active[index] = positions[index]
            elif not should_add and index in active:
                topology.remove_working(index)
                del active[index]
        for node, position in active.items():
            expected = {
                other
                for other, other_position in active.items()
                if other != node and distance(position, other_position) <= 10.0
            }
            assert topology.neighbors(node) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(points, min_size=1, max_size=25, unique=True))
    def test_components_partition_nodes(self, positions):
        grid = SpatialGrid(Field(30.0, 30.0), cell_size=3.0)
        topology = WorkingTopology(grid, comm_range=8.0)
        for index, position in enumerate(positions):
            grid.insert(index, position)
            topology.add_working(index, position)
        components = topology.connected_components()
        union = set()
        total = 0
        for component in components:
            assert not (component & union)  # disjoint
            union |= component
            total += len(component)
        assert union == set(range(len(positions)))
        assert total == len(positions)


class TestRsaProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(points, min_size=1, max_size=80, unique=True),
        st.floats(min_value=1.0, max_value=8.0),
        st.integers(min_value=0, max_value=1000),
    )
    def test_separation_and_maximality(self, candidates, probe_range, seed):
        rng = random.Random(seed)
        workers = rsa_working_set(candidates, probe_range, rng)
        # Separation: no two workers within the probing range.
        assert min_pairwise_distance(workers) >= probe_range - 1e-9
        # Maximality: every candidate is a worker or has one within range.
        worker_set = set(workers)
        for candidate in candidates:
            if candidate not in worker_set:
                assert any(
                    math.dist(candidate, worker) <= probe_range
                    for worker in workers
                )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(points, min_size=1, max_size=50, unique=True))
    def test_workers_subset_of_candidates(self, candidates):
        workers = rsa_working_set(candidates, 3.0, random.Random(1))
        assert set(workers) <= set(candidates)
