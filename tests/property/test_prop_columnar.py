"""Scalar/columnar backend equivalence, element for element.

The columnar backend's whole correctness story is that it is a drop-in
replacement: for any insert/remove history and any query, ``SpatialGrid``
and ``ColumnarSpatialGrid`` (and a :class:`NeighborCache` over each) must
return the *same ids in the same canonical order with bit-equal
distances*.  These properties drive both indexes through arbitrary
mutation/query interleavings; the full-run corollary (byte-identical
golden traces under ``REPRO_BACKEND=scalar|columnar``) lives in
``tests/integration/test_columnar_identity.py``.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Field, SpatialGrid
from repro.net.columnar import (
    ColumnarSpatialGrid,
    backend_default,
    make_spatial_grid,
)
from repro.net.neighbors import NeighborCache

coords = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
points = st.tuples(coords, coords)
radii = st.floats(
    min_value=0.0, max_value=25.0, allow_nan=False, allow_infinity=False
)

#: an op is ("remove", index-into-live) | ("query", center, radius)
#: | ("neighbors", index-into-live, radius)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=59)),
        st.tuples(st.just("query"), points, radii),
        st.tuples(
            st.just("neighbors"),
            st.integers(min_value=0, max_value=59),
            radii,
        ),
    ),
    max_size=40,
)


def _build_pair(positions):
    field = Field(50.0, 50.0)
    scalar = SpatialGrid(field, cell_size=3.0)
    columnar = ColumnarSpatialGrid(field, cell_size=3.0)
    for node_id, position in enumerate(positions):
        scalar.insert(node_id, position)
        columnar.insert(node_id, position)
    return scalar, columnar


class TestGridEquivalence:
    @given(positions=st.lists(points, min_size=1, max_size=40), ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_queries_agree_across_mutation_histories(self, positions, ops):
        scalar, columnar = _build_pair(positions)
        scalar_cache = NeighborCache(scalar, enabled=True)
        columnar_cache = NeighborCache(columnar, enabled=True)
        live = list(range(len(positions)))

        for op in ops:
            if op[0] == "remove":
                if not live:
                    continue
                item = live.pop(op[1] % len(live))
                scalar.remove(item)
                columnar.remove(item)
            elif op[0] == "query":
                _, center, radius = op
                assert columnar.within(center, radius) == scalar.within(
                    center, radius
                )
                # within_annotated has no ordering contract; membership and
                # the exact (dist_sq, insertion index, id) triples must match.
                assert sorted(columnar.within_annotated(center, radius)) == sorted(
                    scalar.within_annotated(center, radius)
                )
            else:
                if not live:
                    continue
                _, index, radius = op
                item = live[index % len(live)]
                # Exact equality: same ids, same distance-sorted order, and
                # bit-equal floats (both backends run the identical
                # subtract/square/sqrt arithmetic).
                assert columnar_cache.neighbors_with_distance(
                    item, radius
                ) == scalar_cache.neighbors_with_distance(item, radius)

    @given(positions=st.lists(points, min_size=1, max_size=30), center=points)
    @settings(max_examples=60, deadline=None)
    def test_nearest_distance_agrees(self, positions, center):
        scalar, columnar = _build_pair(positions)

        def dist(grid, item):
            x, y = grid.position(item)
            dx, dy = x - center[0], y - center[1]
            # dx*dx + dy*dy, not hypot: both backends *select* by this
            # quantity, and hypot would distinguish ties that the selection
            # metric (which underflows for pathologically close points)
            # cannot.
            return dx * dx + dy * dy

        # Ties are broken arbitrarily by the scalar backend (documented),
        # deterministically by the columnar one — the distance is the
        # comparable quantity.
        assert dist(columnar, columnar.nearest(center)) == dist(
            scalar, scalar.nearest(center)
        )


class TestBackendSelection:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_default() == "columnar"

    def test_typo_raises_instead_of_silently_falling_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "columnr")
        try:
            backend_default()
        except ValueError as err:
            assert "REPRO_BACKEND" in str(err)
        else:
            raise AssertionError("expected ValueError for a backend typo")

    def test_factory_honors_explicit_backend(self):
        field = Field(10.0, 10.0)
        assert isinstance(
            make_spatial_grid(field, 3.0, backend="columnar"),
            ColumnarSpatialGrid,
        )
        scalar = make_spatial_grid(field, 3.0, backend="scalar")
        assert isinstance(scalar, SpatialGrid)
        assert not isinstance(scalar, ColumnarSpatialGrid)
