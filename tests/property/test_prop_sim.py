"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.events import Event

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)
priorities = st.integers(min_value=0, max_value=30)


class TestEventOrdering:
    @given(st.lists(st.tuples(times, priorities), min_size=1, max_size=60))
    def test_events_fire_in_sort_key_order(self, specs):
        sim = Simulator()
        fired = []
        for index, (time, priority) in enumerate(specs):
            sim.schedule_at(
                time,
                lambda i=index: fired.append(i),
                priority=priority,
            )
        sim.run()
        keys = [(specs[i][0], specs[i][1]) for i in fired]
        assert keys == sorted(keys, key=lambda k: (k[0], k[1]))
        assert len(fired) == len(specs)

    @given(st.lists(times, min_size=1, max_size=60))
    def test_clock_is_monotone(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)

    @given(
        st.lists(times, min_size=2, max_size=40),
        st.data(),
    )
    def test_cancelled_events_never_fire(self, delays, data):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(delay, lambda i=i: fired.append(i))
            for i, delay in enumerate(delays)
        ]
        to_cancel = data.draw(
            st.sets(st.integers(0, len(events) - 1), max_size=len(events))
        )
        for index in to_cancel:
            events[index].cancel()
        sim.run()
        assert set(fired) == set(range(len(events))) - to_cancel

    @given(st.lists(times, min_size=1, max_size=40), times)
    def test_run_until_partitions_execution(self, delays, cut):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=cut)
        early = list(fired)
        sim.run()
        assert all(d <= cut for d in early)
        assert sorted(fired) == sorted(delays)


class TestEventSortKey:
    @given(times, times, priorities, priorities)
    def test_ordering_total_and_consistent(self, t1, t2, p1, p2):
        a = Event(t1, lambda: None, priority=p1)
        b = Event(t2, lambda: None, priority=p2)
        assert (a < b) != (b < a)  # strict total order via seq tiebreak
        if t1 < t2:
            assert a < b
