"""Snapshot/restore exactness at *any* point in the event stream.

The integration suite checkpoints at chunk boundaries; these properties
pin the stronger contract: pause the engine after an **arbitrary event
index** (``run_bounded(max_events=k)`` leaves the simulation exactly
between two events), snapshot, restore into a fresh process-equivalent
``LiveRun``, run to completion — and the result must be indistinguishable
from never having stopped:

* the restored run's trace, appended to the checkpointing run's prefix,
  is byte-identical (canonical JSON) to the uninterrupted golden trace;
* every ``RunResult`` metric matches exactly (manifest excluded: it
  carries wall time by design).

Covered for PEAS-with-traffic and one baseline (``duty_cycle``), on both
spatial-index backends (``REPRO_BACKEND=scalar|columnar``).
"""

import contextlib
import dataclasses
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import Scenario
from repro.harness import LiveRun, RunOptions, resume, run
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer

SCENARIOS = {
    "peas": Scenario(
        num_nodes=20,
        seed=5,
        field_size=(18.0, 18.0),
        failure_per_5000s=8.0,
        with_traffic=True,
        max_time_s=2_000.0,
    ),
    "duty_cycle": Scenario(
        num_nodes=20,
        seed=5,
        protocol="duty_cycle",
        field_size=(18.0, 18.0),
        failure_per_5000s=8.0,
        with_traffic=False,
        max_time_s=2_000.0,
    ),
}

#: every scenario above fires well over this many engine events, so a
#: budget-stop at k <= MAX_EVENT_INDEX is always mid-run
MAX_EVENT_INDEX = 120

#: non-vacuity floor per scenario: PEAS traces protocol activity, the
#: baselines only trace fault-engine events
MIN_TRACE_EVENTS = {"peas": 50, "duty_cycle": 2}


@contextlib.contextmanager
def backend_env(backend):
    """Pin ``REPRO_BACKEND`` without pytest's function-scoped monkeypatch
    (which Hypothesis rejects: it would be shared across examples)."""
    old = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = backend
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = old


def comparable(result):
    payload = dataclasses.asdict(result)
    payload.pop("manifest", None)  # wall time differs by design
    return payload


def canonical(events):
    return [json.dumps(event, sort_keys=True) for event in events]


_golden = {}


def golden(name, backend):
    key = (name, backend)
    if key not in _golden:
        sink = RingBufferSink()
        result = run(SCENARIOS[name], RunOptions(), tracer=Tracer(sink))
        _golden[key] = (comparable(result), canonical(sink.events()))
    return _golden[key]


@pytest.mark.parametrize("backend", ["scalar", "columnar"])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
@settings(max_examples=4, deadline=None)
@given(k=st.integers(min_value=1, max_value=MAX_EVENT_INDEX))
def test_snapshot_at_any_event_index_is_exact(name, backend, k):
    with backend_env(backend):
        want_result, want_trace = golden(name, backend)
        scenario = SCENARIOS[name]

        prefix_sink = RingBufferSink()
        live = LiveRun(scenario, RunOptions(), tracer=Tracer(prefix_sink))
        live.start()
        fired = live.sim.run_bounded(
            until=scenario.max_time_s, max_events=k
        )
        assert fired == k, "scenario too small for MAX_EVENT_INDEX"
        snapshot = live.snapshot_state()

        suffix_sink = RingBufferSink()
        restored = resume(snapshot, RunOptions(), tracer=Tracer(suffix_sink))

        got_trace = canonical(prefix_sink.events()) + canonical(
            suffix_sink.events()
        )
        assert got_trace == want_trace
        assert comparable(restored) == want_result
        # guard against a silently empty sink making the bytes vacuous
        assert len(want_trace) >= MIN_TRACE_EVENTS[name]
