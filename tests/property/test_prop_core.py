"""Property-based tests for the Adaptive Sleeping math and batteries."""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import RateEstimator, select_feedback, updated_rate
from repro.energy import MOTE_PROFILE, NodeBattery, RadioMode

rates = st.floats(min_value=1e-5, max_value=2.0, allow_nan=False)
positive_rates = st.floats(min_value=1e-4, max_value=10.0, allow_nan=False)


class TestUpdatedRateProperties:
    @given(rates, positive_rates, positive_rates)
    def test_result_within_clamps(self, current, measured, desired):
        result = updated_rate(current, measured, desired, 1e-3, 2.0, 4.0)
        assert 1e-3 <= result <= 2.0

    @given(rates, positive_rates, positive_rates)
    def test_capped_step_bounded(self, current, measured, desired):
        result = updated_rate(current, measured, desired, 1e-9, 1e9, 4.0)
        assert current / 4.0 - 1e-12 <= result <= current * 4.0 + 1e-12

    @given(rates, positive_rates)
    def test_fixed_point_when_measured_equals_desired(self, current, desired):
        result = updated_rate(current, desired, desired, 1e-9, 1e9, None)
        assert abs(result - current) < 1e-12

    @given(rates, positive_rates, positive_rates)
    def test_direction_matches_error_sign(self, current, measured, desired):
        assume(abs(measured - desired) / desired > 1e-6)
        result = updated_rate(current, measured, desired, 1e-9, 1e9, 4.0)
        if measured > desired:
            assert result <= current
        else:
            assert result >= current

    @given(
        st.lists(rates, min_size=1, max_size=20),
        positive_rates,
    )
    def test_aggregate_fixed_point(self, sleeper_rates, desired):
        """Eq. 2 against the exact aggregate lands exactly on lambda_d."""
        aggregate = sum(sleeper_rates)
        new_rates = [
            updated_rate(r, aggregate, desired, 1e-12, 1e9, None)
            for r in sleeper_rates
        ]
        assert abs(sum(new_rates) - desired) / desired < 1e-9


class TestSelectFeedbackProperties:
    @given(st.lists(st.one_of(st.none(), positive_rates), max_size=10))
    def test_largest_rule_returns_max_of_present(self, measurements):
        present = [m for m in measurements if m is not None]
        result = select_feedback(measurements, largest=True)
        if present:
            assert result == max(present)
        else:
            assert result is None


class TestRateEstimatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=500.0, allow_nan=False),
            min_size=1,
            max_size=80,
        ),
        st.integers(min_value=2, max_value=16),
    )
    def test_windowed_measurement_equals_k_over_elapsed(self, gaps, k):
        estimator = RateEstimator(k, mode="windowed")
        now = 0.0
        arrivals = []
        for index, gap in enumerate(gaps):
            now += gap
            arrivals.append(now)
            estimator.on_probe(now, ("n", index))
        windows = (len(arrivals) - 1) // k
        assert estimator.windows_completed == windows
        if windows:
            # Verify the most recent completed window's value.
            start = arrivals[(windows - 1) * k]
            end = arrivals[windows * k]
            assert abs(estimator.measured_rate - k / (end - start)) < 1e-9

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=30))
    def test_duplicate_wakeups_never_counted(self, copies):
        estimator = RateEstimator(64, mode="running", min_horizon_s=1.0,
                                  start_time=0.0)
        for i in range(copies):
            estimator.on_probe(10.0 + i * 0.001, ("same", 0))
        assert estimator.pending_count == 1

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.001, max_value=1.0),
        st.integers(min_value=5, max_value=200),
    )
    def test_running_estimate_positive_and_finite(self, rate, n):
        rng = random.Random(0)
        estimator = RateEstimator(1000, mode="running", min_horizon_s=1.0,
                                  start_time=0.0)
        now = 0.0
        for index in range(n):
            now += rng.expovariate(rate)
            estimator.on_probe(now, ("n", index))
        estimate = estimator.estimate(now + 2.0)
        assert estimate is not None
        assert 0.0 < estimate < float("inf")


class TestBatteryProperties:
    charges = st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),  # time gap
            st.sampled_from([RadioMode.SLEEP, RadioMode.IDLE, RadioMode.OFF]),
            st.floats(min_value=0.0, max_value=0.01),  # frame energy
        ),
        max_size=40,
    )

    @given(charges)
    def test_remaining_never_negative_and_monotone(self, steps):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        now = 0.0
        previous = battery.remaining(0.0)
        for gap, mode, joules in steps:
            now += gap
            battery.set_mode(now, mode)
            if joules:
                battery.charge(now, joules, "x")
            current = battery.remaining(now)
            assert 0.0 <= current <= previous + 1e-12
            previous = current

    @given(charges)
    def test_consumed_plus_remaining_is_initial(self, steps):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        now = 0.0
        for gap, mode, joules in steps:
            now += gap
            battery.set_mode(now, mode)
            if joules:
                battery.charge(now, joules, "x")
        assert abs(battery.consumed(now) + battery.remaining(now) - 57.0) < 1e-9

    @given(st.floats(min_value=0.1, max_value=60.0))
    def test_depletion_prediction_exact_for_constant_draw(self, initial):
        battery = NodeBattery(MOTE_PROFILE, initial)
        battery.set_mode(0.0, RadioMode.IDLE)
        ttd = battery.time_to_depletion(0.0)
        assert abs(battery.remaining(ttd)) < 1e-9
