"""Property tests for the result store's honesty contract.

Two invariants, over *arbitrary* ``peas-result/1`` payloads:

* **Round trip** — any well-formed :class:`RunResult` put into the store
  comes back observably identical (canonical ``result_to_dict`` form).
* **Never trust a corrupt record** — flip any single bit anywhere in a
  stored record file and ``get`` must either still return the identical
  result (the flip landed somewhere semantically dead, which canonical
  JSON makes rare) or return ``None`` and move the file to quarantine.
  It must *never* return a result that differs from what was stored —
  that is the whole point of the embedded payload digest.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import RunResult, Scenario, result_to_dict
from repro.store import ResultStore

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
nonneg = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)


@st.composite
def run_results(draw):
    return RunResult(
        num_nodes=draw(st.integers(min_value=1, max_value=2000)),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        failure_rate_per_5000s=draw(nonneg),
        end_time=draw(nonneg),
        coverage_lifetimes=draw(st.dictionaries(
            st.integers(min_value=1, max_value=8),
            st.one_of(st.none(), nonneg), max_size=4,
        )),
        delivery_lifetime=draw(st.one_of(st.none(), nonneg)),
        total_wakeups=draw(st.integers(min_value=0, max_value=10**9)),
        energy_total_j=draw(nonneg),
        energy_overhead_j=draw(nonneg),
        energy_by_category=draw(st.dictionaries(names, nonneg, max_size=4)),
        failures_injected=draw(st.integers(min_value=0, max_value=2000)),
        counters=draw(st.dictionaries(
            names, st.integers(min_value=0, max_value=10**9), max_size=4,
        )),
        channel_counters=draw(st.dictionaries(
            names, st.integers(min_value=0, max_value=10**9), max_size=4,
        )),
        series=draw(st.dictionaries(
            names,
            st.lists(st.tuples(nonneg, finite), max_size=4),
            max_size=2,
        )),
        extras=draw(st.dictionaries(names, finite, max_size=4)),
    )


def _fresh_store(tmp_path_factory):
    return ResultStore(tmp_path_factory.mktemp("store") / "s")


class TestStoreHonesty:
    @settings(max_examples=40, deadline=None)
    @given(result=run_results())
    def test_round_trip_is_exact(self, tmp_path_factory, result):
        store = _fresh_store(tmp_path_factory)
        scenario = Scenario(num_nodes=result.num_nodes, seed=result.seed)
        key = store.key_for(scenario)
        store.put(key, result, scenario)
        restored = store.get(key)
        assert restored is not None
        assert result_to_dict(restored) == result_to_dict(result)

    @settings(max_examples=40, deadline=None)
    @given(result=run_results(), data=st.data())
    def test_any_single_bit_flip_is_never_trusted(
        self, tmp_path_factory, result, data
    ):
        store = _fresh_store(tmp_path_factory)
        scenario = Scenario(num_nodes=result.num_nodes, seed=result.seed)
        key = store.key_for(scenario)
        store.put(key, result, scenario)
        golden = result_to_dict(result)

        path = store.record_path(key)
        raw = bytearray(path.read_bytes())
        position = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        raw[position] ^= 1 << bit
        path.write_bytes(bytes(raw))

        restored = store.get(key)
        if restored is None:
            # Corruption detected: the record must be quarantined (or the
            # flip made the file vanish from the read path entirely).
            if not path.exists():
                assert (
                    list(store.quarantine_dir.iterdir())
                    or store.session["quarantined"] > 0
                )
        else:
            # The flip landed somewhere semantically dead (e.g. turned one
            # JSON whitespace byte into another): the result must still be
            # byte-for-byte the stored one.
            assert result_to_dict(restored) == golden

    @settings(max_examples=20, deadline=None)
    @given(result=run_results())
    def test_canonical_digest_is_order_insensitive(
        self, tmp_path_factory, result
    ):
        # Rewriting the record with reordered keys (same content) must
        # still verify: the digest covers canonical JSON, not file bytes.
        store = _fresh_store(tmp_path_factory)
        scenario = Scenario(num_nodes=result.num_nodes, seed=result.seed)
        key = store.key_for(scenario)
        store.put(key, result, scenario)
        path = store.record_path(key)
        record = json.loads(path.read_text(encoding="utf-8"))
        reordered = {k: record[k] for k in reversed(list(record))}
        path.write_text(json.dumps(reordered), encoding="utf-8")
        restored = store.get(key)
        assert restored is not None
        assert result_to_dict(restored) == result_to_dict(result)
