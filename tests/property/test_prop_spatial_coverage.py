"""Property-based tests: spatial index and coverage grid vs brute force."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage import CoverageGrid
from repro.net import Field, SpatialGrid, distance, distance_sq

coords = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
points = st.tuples(coords, coords)


class TestSpatialGridProperties:
    @given(
        st.lists(points, min_size=1, max_size=50, unique=True),
        points,
        st.floats(min_value=0.1, max_value=40.0),
    )
    def test_within_matches_brute_force(self, positions, center, radius):
        grid = SpatialGrid(Field(30.0, 30.0), cell_size=3.0)
        for index, position in enumerate(positions):
            grid.insert(index, position)
        # The documented membership predicate is d_sq <= radius**2 (both
        # backends); a sqrt-based oracle disagrees by one ulp on points
        # sitting exactly on the boundary circle.
        expected = {
            i
            for i, p in enumerate(positions)
            if distance_sq(p, center) <= radius * radius
        }
        assert set(grid.within(center, radius)) == expected

    @given(st.lists(points, min_size=1, max_size=40, unique=True), points)
    def test_nearest_matches_brute_force(self, positions, center):
        grid = SpatialGrid(Field(30.0, 30.0), cell_size=3.0)
        for index, position in enumerate(positions):
            grid.insert(index, position)
        found = grid.nearest(center)
        best = min(distance(p, center) for p in positions)
        assert distance(positions[found], center) == best

    @given(st.lists(points, min_size=2, max_size=40, unique=True), st.data())
    def test_remove_then_query_consistent(self, positions, data):
        grid = SpatialGrid(Field(30.0, 30.0), cell_size=3.0)
        for index, position in enumerate(positions):
            grid.insert(index, position)
        removed = data.draw(
            st.sets(st.integers(0, len(positions) - 1), max_size=len(positions) - 1)
        )
        for index in removed:
            grid.remove(index)
        survivors = set(grid.within((15.0, 15.0), 50.0))
        assert survivors == set(range(len(positions))) - removed


class TestCoverageGridProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(points, min_size=0, max_size=20),
        st.data(),
    )
    def test_counts_match_recount_after_random_ops(self, nodes, data):
        """After any interleaving of adds and removes, every maintained
        K-fraction equals a from-scratch recount."""
        grid = CoverageGrid(Field(30.0, 30.0), sensing_range=6.0, resolution=2.0)
        active = []
        operations = data.draw(
            st.lists(st.booleans(), min_size=0, max_size=len(nodes) * 2)
        )
        pending = list(nodes)
        for is_add in operations:
            if is_add and pending:
                node = pending.pop()
                grid.add_node(node)
                active.append(node)
            elif not is_add and active:
                node = active.pop()
                grid.remove_node(node)
        # Brute-force recount on the same lattice.
        xs = [i * 2.0 for i in range(16)]
        for k in (1, 2, 3):
            covered = sum(
                1
                for x in xs
                for y in xs
                if sum(1 for n in active
                       if distance_sq(n, (x, y)) <= 36.0) >= k
            )
            assert grid.fraction(k) * grid.num_points == covered

    @settings(max_examples=25, deadline=None)
    @given(st.lists(points, min_size=1, max_size=15))
    def test_add_remove_all_restores_empty(self, nodes):
        grid = CoverageGrid(Field(30.0, 30.0), sensing_range=6.0, resolution=2.0)
        for node in nodes:
            grid.add_node(node)
        for node in nodes:
            grid.remove_node(node)
        assert grid.fraction(1) == 0.0
        assert grid._counts.sum() == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(points, min_size=0, max_size=15))
    def test_monotone_in_k(self, nodes):
        grid = CoverageGrid(Field(30.0, 30.0), sensing_range=6.0, resolution=2.0)
        for node in nodes:
            grid.add_node(node)
        fractions = [grid.fraction(k) for k in range(1, 6)]
        assert fractions == sorted(fractions, reverse=True)
