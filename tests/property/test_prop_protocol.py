"""Property-based fuzzing of the live protocol: random kill schedules.

Whatever failure pattern is injected, structural invariants must hold:
counters consistent, energy conserved, observer streams balanced, dead
nodes silent, and the working set consistent with node modes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NodeMode
from tests.helpers import make_network


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    kill_script=st.lists(
        st.tuples(
            st.floats(min_value=10.0, max_value=3000.0),  # when
            st.integers(min_value=0, max_value=59),       # whom
        ),
        max_size=25,
    ),
)
def test_protocol_invariants_under_random_failures(seed, kill_script):
    sim, network = make_network(num_nodes=60, seed=seed, field_size=(25.0, 25.0))

    starts = []
    stops = []
    network.working_observers.append(
        lambda t, node, started: (starts if started else stops).append(node.node_id)
    )
    network.start()
    for when, victim in kill_script:
        def kill(victim=victim):
            if victim in network.alive_ids():
                network.kill(victim)
        sim.schedule(when, kill)
    sim.run(until=3500.0)

    # --- observer stream balances the live working set ---------------------
    assert len(starts) - len(stops) == len(network.working_ids())

    # --- node modes consistent with the working set ------------------------
    for node in network.sensor_nodes():
        if node.node_id in network.working_ids():
            assert node.mode is NodeMode.WORKING
        else:
            assert node.mode is not NodeMode.WORKING
        if node.node_id not in network.alive_ids():
            assert node.mode is NodeMode.DEAD

    # --- energy conservation ------------------------------------------------
    report = network.energy_report()
    assert 0.0 <= report.total_consumed_j <= network.total_initial_energy() + 1e-6
    assert 0.0 <= report.overhead_j <= report.total_consumed_j + 1e-6

    # --- counter consistency --------------------------------------------------
    counters = network.counters
    assert counters.get("work_starts") == len(starts)
    assert counters.get("deaths_failure") <= len(kill_script)
    assert counters.get("probes_sent") <= counters.get("wakeups") * 3

    # --- channel sanity --------------------------------------------------------
    channel = network.channel.counters
    assert channel.get("frames_delivered") >= 0
    assert channel.get("frames_sent") >= counters.get("probes_sent")


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_working_set_is_maximal_like_after_settling(seed):
    """After the boot phase settles (no failures), every sleeping node has
    a working node within the probing range — the RSA maximality property
    realized by the live protocol."""
    from repro.net import distance

    sim, network = make_network(num_nodes=80, seed=seed, field_size=(25.0, 25.0))
    network.start()
    sim.run(until=1500.0)
    working_positions = [
        network.node(i).position for i in network.working_ids()
    ]
    uncovered_sleepers = 0
    sleepers = 0
    for node in network.sensor_nodes():
        if node.mode is NodeMode.SLEEPING:
            sleepers += 1
            if not any(
                distance(node.position, w) <= 3.0 for w in working_positions
            ):
                uncovered_sleepers += 1
    # A sleeper not covered by any worker would start working on its next
    # wakeup; right after boot that should be (nearly) nobody.
    if sleepers:
        assert uncovered_sleepers / sleepers < 0.15
