"""Property-based tests for the fault models.

The Gilbert–Elliott channel's empirical loss frequency must converge on
the analytical stationary average ``(g·p_g + b·p_b)/(g + b)`` for any
parameterization — the property that keeps bursty-loss scenarios honest
about their configured average severity.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import BurstyLossFault
from repro.net.loss import GilbertElliottLoss

means = st.floats(min_value=5.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False)
loss_probs = st.floats(min_value=0.0, max_value=0.95,
                       allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestGilbertElliottStationarity:
    @settings(max_examples=25, deadline=None)
    @given(good_mean=means, bad_mean=means, good_loss=loss_probs,
           bad_loss=loss_probs, seed=seeds)
    def test_empirical_loss_converges_to_stationary_average(
        self, good_mean, bad_mean, good_loss, bad_loss, seed
    ):
        loss = GilbertElliottLoss(
            good_mean, bad_mean, good_loss, bad_loss, random.Random(seed)
        )
        # Unit-spaced samples over >= 600 expected sojourn cycles: the
        # occupancy estimator's own std is ~1/sqrt(cycles) < 0.05.
        samples = 60_000
        dropped = sum(loss.drop(float(t)) for t in range(samples))
        expected = loss.average_loss()
        assert abs(dropped / samples - expected) < 0.06

    @settings(max_examples=25, deadline=None)
    @given(good_mean=means, bad_mean=means, good_loss=loss_probs,
           bad_loss=loss_probs)
    def test_plan_entry_average_matches_process_average(
        self, good_mean, bad_mean, good_loss, bad_loss
    ):
        entry = BurstyLossFault(
            good_mean_s=good_mean, bad_mean_s=bad_mean,
            good_loss=good_loss, bad_loss=bad_loss,
        )
        process = GilbertElliottLoss(
            good_mean, bad_mean, good_loss, bad_loss, random.Random(0)
        )
        assert entry.average_loss() == process.average_loss()

    @settings(max_examples=25, deadline=None)
    @given(good_mean=means, bad_mean=means, good_loss=loss_probs,
           bad_loss=loss_probs, seed=seeds)
    def test_same_rng_same_outcomes(
        self, good_mean, bad_mean, good_loss, bad_loss, seed
    ):
        times = [t * 1.3 for t in range(2_000)]
        runs = []
        for _ in range(2):
            loss = GilbertElliottLoss(
                good_mean, bad_mean, good_loss, bad_loss,
                random.Random(seed),
            )
            runs.append([loss.drop(t) for t in times])
        assert runs[0] == runs[1]
