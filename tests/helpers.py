"""Shared construction helpers for the test suite."""

from repro.core import PEASConfig, PEASNetwork
from repro.net import Field, uniform_deployment
from repro.sim import RngRegistry, Simulator


def make_network(
    num_nodes=40,
    seed=7,
    field_size=(20.0, 20.0),
    config=None,
    loss_rate=0.0,
    anchors=(),
):
    """Build a small PEAS network ready to start."""
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    field = Field(*field_size)
    positions = uniform_deployment(field, num_nodes, rngs.stream("deployment"))
    network = PEASNetwork(
        sim,
        field,
        positions,
        config if config is not None else PEASConfig(),
        rngs,
        loss_rate=loss_rate,
        anchors=anchors,
    )
    return sim, network
