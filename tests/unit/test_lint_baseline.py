"""Baseline ratchet round-trips, the determinism-refusal policy, and the
self-lint gate: the committed tree must stay clean against the committed
``lint-baseline.json``.
"""

import json
from pathlib import Path

import pytest

from repro.lint import (
    CATEGORY_DETERMINISM,
    CATEGORY_HOT_PATH,
    Violation,
    lint_paths,
    load_baseline,
    partition_by_baseline,
    save_baseline,
)
from repro.lint.baseline import BaselineError
from repro.lint.cli import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_violation(rule="H201", category=CATEGORY_HOT_PATH, line=10,
                   source_line="self.tracer.emit(x)", path="repro/mod.py"):
    return Violation(
        rule=rule,
        name="some-rule",
        category=category,
        path=path,
        line=line,
        col=4,
        message="test finding",
        source_line=source_line,
    )


# ----------------------------------------------------------------- round-trip
def test_save_and_load_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    violations = [make_violation(line=10), make_violation(line=20)]
    save_baseline(path, violations)
    baseline = load_baseline(path)
    new, suppressed = partition_by_baseline(violations, baseline)
    assert new == []
    assert suppressed == violations


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_corrupt_and_versioned_baselines_are_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("not json")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_baseline(path)
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError, match="version"):
        load_baseline(path)
    path.write_text(json.dumps({"version": 1, "entries": [{"rule": "X"}]}))
    with pytest.raises(BaselineError, match="fingerprint"):
        load_baseline(path)


def test_occurrence_counting(tmp_path):
    # Two identical findings baselined; a third occurrence of the same
    # fingerprint is NEW (same path + rule + source line => same print).
    path = tmp_path / "baseline.json"
    twice = [make_violation(line=10), make_violation(line=20)]
    save_baseline(path, twice)
    thrice = twice + [make_violation(line=30)]
    assert all(v.fingerprint() == thrice[0].fingerprint() for v in thrice)
    new, suppressed = partition_by_baseline(thrice, load_baseline(path))
    assert len(suppressed) == 2
    assert len(new) == 1


# --------------------------------------------------------------------- policy
def test_determinism_findings_are_refused(tmp_path):
    path = tmp_path / "baseline.json"
    bad = make_violation(rule="D101", category=CATEGORY_DETERMINISM)
    with pytest.raises(BaselineError, match="determinism"):
        save_baseline(path, [bad])
    assert not path.exists()
    save_baseline(path, [bad], allow_determinism=True)
    assert len(load_baseline(path)) == 1


def test_cli_update_refuses_determinism(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    baseline = tmp_path / "baseline.json"
    assert run_lint([str(dirty), "--baseline", str(baseline),
                     "--update-baseline"]) == 2
    assert not baseline.exists()


def test_cli_ratchet_suppresses_then_catches_new(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "def hot(tracer):  # peas-lint: hot\n"
        "    tracer.emit({})\n"
    )
    baseline = tmp_path / "baseline.json"
    assert run_lint([str(dirty), "--root", str(tmp_path),
                     "--baseline", str(baseline), "--update-baseline"]) == 0
    assert run_lint([str(dirty), "--root", str(tmp_path),
                     "--baseline", str(baseline)]) == 0
    dirty.write_text(
        dirty.read_text() +
        "\ndef hot2(tracer):  # peas-lint: hot\n"
        "    tracer.emit({1: 2})\n"
    )
    assert run_lint([str(dirty), "--root", str(tmp_path),
                     "--baseline", str(baseline)]) == 1


# ------------------------------------------------------------------ self-lint
def test_tree_is_clean_against_committed_baseline():
    """The acceptance gate: ``peas-lint src/`` must pass on this checkout."""
    findings = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    new, _suppressed = partition_by_baseline(findings, baseline)
    assert new == [], "\n".join(v.render() for v in new)


def test_committed_baseline_contains_no_determinism_entries():
    payload = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    assert payload["version"] == 1
    offenders = [e for e in payload["entries"]
                 if e.get("category") == CATEGORY_DETERMINISM]
    assert offenders == []
