"""Unit contracts for ``peas-snapshot/1``: path templating, restore
classification, fork preconditions, provenance enforcement and the atomic
file format.  The end-to-end byte-identity story lives in
``tests/integration/test_snapshot_roundtrip.py`` and
``tests/property/test_prop_snapshot.py``.
"""

import json

import pytest

from repro.experiments import Scenario
from repro.experiments.serialize import scenario_to_dict
from repro.faults import FaultPlan, load_fault_plan
from repro.harness import RunOptions, load_snapshot, run, save_snapshot
from repro.harness.snapshot import (
    FORK_ALLOWED_FIELDS,
    SNAPSHOT_SCHEMA,
    _check_provenance,
    _validate_fork,
    classify_restore,
    resume,
)
from repro.sim import SnapshotError

SCENARIO = Scenario(num_nodes=9, seed=4, protocol="duty_cycle")


# ------------------------------------------------------------- templating
class TestSnapshotPathTemplating:
    def test_placeholders_substitute_like_trace_path(self):
        options = RunOptions(
            trace_path="t-{seed}-{nodes}.ndjson",
            snapshot_path="s-{seed}-{nodes}-{protocol}.json",
        )
        assert options.resolved_trace_path(SCENARIO) == "t-4-9.ndjson"
        assert (
            options.resolved_snapshot_path(SCENARIO)
            == "s-4-9-duty_cycle.json"
        )

    def test_none_resolves_to_none(self):
        assert RunOptions().resolved_snapshot_path(SCENARIO) is None

    @pytest.mark.parametrize("field", ["trace_path", "snapshot_path"])
    def test_unknown_placeholder_names_offender_and_supported(self, field):
        options = RunOptions(**{field: "out-{sed}.json"})
        with pytest.raises(ValueError) as err:
            getattr(options, f"resolved_{field}")(SCENARIO)
        message = str(err.value)
        assert "{sed}" in message
        assert field in message
        for supported in ("{seed}", "{nodes}", "{protocol}"):
            assert supported in message

    @pytest.mark.parametrize("field", ["trace_path", "snapshot_path"])
    def test_positional_placeholder_rejected(self, field):
        options = RunOptions(**{field: "out-{}.json"})
        with pytest.raises(ValueError, match="positional"):
            getattr(options, f"resolved_{field}")(SCENARIO)

    def test_checkpoint_cadence_validation(self):
        with pytest.raises(ValueError, match="positive"):
            RunOptions(snapshot_path="s.json", checkpoint_every_s=0.0)
        with pytest.raises(ValueError, match="requires snapshot_path"):
            RunOptions(checkpoint_every_s=100.0)
        with pytest.raises(ValueError, match="positive"):
            RunOptions(stop_after_s=-1.0)


# ------------------------------------------------------- restore classify
class TestClassifyRestore:
    def test_identical_scenarios_resume(self):
        d = scenario_to_dict(SCENARIO)
        assert classify_restore(d, dict(d)) == "resume"

    @pytest.mark.parametrize("field,value", [
        ("failure_per_5000s", 32.0),
        ("max_time_s", 123.0),
    ])
    def test_allowlisted_changes_fork(self, field, value):
        base = scenario_to_dict(SCENARIO)
        assert classify_restore(
            base, scenario_to_dict(SCENARIO.with_(**{field: value}))
        ) == "fork"

    def test_blocked_field_raises_naming_it(self):
        base = scenario_to_dict(SCENARIO)
        variant = scenario_to_dict(SCENARIO.with_(num_nodes=99, seed=5))
        with pytest.raises(SnapshotError) as err:
            classify_restore(base, variant)
        message = str(err.value)
        assert "num_nodes" in message and "seed" in message
        for allowed in sorted(FORK_ALLOWED_FIELDS):
            assert allowed in message

    def test_fork_requires_quiescent_burn_in(self):
        dirty = scenario_to_dict(SCENARIO.with_(failure_per_5000s=8.0))
        with pytest.raises(SnapshotError, match="fault-quiescent"):
            _validate_fork(dirty, SCENARIO.with_(failure_per_5000s=16.0))

    def test_fork_rejects_clock_drift_variants(self, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "schema": "peas-faultplan/1",
            "entries": [{"kind": "clock_drift", "max_skew": 0.05}],
        }), encoding="utf-8")
        drifty = SCENARIO.with_(fault_plan=load_fault_plan(plan_file))
        quiescent = scenario_to_dict(
            SCENARIO.with_(failure_per_5000s=0.0, fault_plan=FaultPlan())
        )
        with pytest.raises(SnapshotError, match="clock_drift"):
            _validate_fork(quiescent, drifty)


# ------------------------------------------------------------- provenance
def small_snapshot(tmp_path, **scenario_changes):
    scenario = Scenario(
        num_nodes=9, seed=4, protocol="duty_cycle", with_traffic=False,
        max_time_s=600.0, failure_per_5000s=0.0,
    ).with_(**scenario_changes)
    target = tmp_path / "snap.json"
    run(scenario, RunOptions(snapshot_path=str(target)))
    return target


class TestProvenance:
    def test_roundtrip_and_format_check(self, tmp_path):
        target = small_snapshot(tmp_path)
        document = load_snapshot(target)
        assert document["format"] == SNAPSHOT_SCHEMA
        assert set(document["provenance"]) == {
            "git_sha", "config_digest", "created_at_sim_s",
            "created_events_executed",
        }
        assert not target.with_name("snap.json.tmp").exists()  # atomic write
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "peas-trace/1"}', encoding="utf-8")
        with pytest.raises(SnapshotError, match="peas-snapshot/1"):
            load_snapshot(bad)

    def test_corrupt_config_digest_always_fatal(self, tmp_path):
        document = load_snapshot(small_snapshot(tmp_path))
        document["scenario"]["seed"] = 99  # edited after the fact
        with pytest.raises(SnapshotError, match="corrupt"):
            _check_provenance(document, force=True)

    def test_git_sha_mismatch_refused_unless_forced(self, tmp_path):
        document = load_snapshot(small_snapshot(tmp_path))
        if document["provenance"]["git_sha"] is None:
            pytest.skip("no git sha in this environment")
        document["provenance"]["git_sha"] = "0" * 40
        with pytest.raises(SnapshotError, match="force"):
            _check_provenance(document)
        _check_provenance(document, force=True)  # explicit override

    def test_resume_refuses_stale_sha_end_to_end(self, tmp_path):
        document = load_snapshot(small_snapshot(tmp_path))
        if document["provenance"]["git_sha"] is None:
            pytest.skip("no git sha in this environment")
        document["provenance"]["git_sha"] = "0" * 40
        with pytest.raises(SnapshotError, match="git"):
            resume(document)
        result = resume(document, force=True)
        assert result.end_time >= 600.0  # ran to the horizon's chunk grid

    def test_save_snapshot_creates_parent_dirs(self, tmp_path):
        nested = tmp_path / "a" / "b" / "snap.json"
        save_snapshot({"format": SNAPSHOT_SCHEMA, "scenario": {}}, nested)
        assert json.loads(nested.read_text())["format"] == SNAPSHOT_SCHEMA
