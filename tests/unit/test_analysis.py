"""Unit tests for the §3 / §2.2.1 analysis modules."""

import math
import random

import pytest

from repro.analysis import (
    THEOREM_RANGE_FACTOR,
    connectivity_probability,
    connectivity_vs_range_factor,
    empty_cell_count,
    empty_cells_vs_side,
    is_connected,
    k_for_error,
    merged_interval_samples,
    min_neighbor_distances,
    min_pairwise_distance,
    neighbor_distance_bound_fraction,
    nodes_for_condition,
    relative_error_quantile,
    rsa_working_set,
    simulate_estimator_errors,
    working_graph,
)
from repro.net import Field, uniform_deployment


class TestGeometry:
    def test_theorem_factor(self):
        assert THEOREM_RANGE_FACTOR == pytest.approx(1 + math.sqrt(5))

    def test_min_pairwise_distance(self):
        points = [(0.0, 0.0), (3.0, 0.0), (0.0, 4.0)]
        assert min_pairwise_distance(points) == pytest.approx(3.0)

    def test_min_pairwise_single_point(self):
        assert min_pairwise_distance([(1.0, 1.0)]) == float("inf")

    def test_min_pairwise_matches_brute_force(self):
        rng = random.Random(4)
        points = [(rng.uniform(0, 30), rng.uniform(0, 30)) for _ in range(60)]
        brute = min(
            math.dist(points[i], points[j])
            for i in range(len(points))
            for j in range(i + 1, len(points))
        )
        assert min_pairwise_distance(points) == pytest.approx(brute)

    def test_min_neighbor_distances(self):
        points = [(0.0, 0.0), (1.0, 0.0), (10.0, 0.0)]
        distances = min_neighbor_distances(points)
        assert distances[0] == pytest.approx(1.0)
        assert distances[2] == pytest.approx(9.0)

    def test_rsa_separation_invariant(self):
        """The probing rule guarantees pairwise distance >= R_p."""
        rng = random.Random(1)
        field = Field(50.0, 50.0)
        candidates = uniform_deployment(field, 600, rng)
        workers = rsa_working_set(candidates, probe_range=3.0, rng=rng)
        assert min_pairwise_distance(workers) >= 3.0

    def test_rsa_maximality(self):
        """Every non-worker candidate has a worker within R_p (else it
        would have become one)."""
        rng = random.Random(2)
        field = Field(30.0, 30.0)
        candidates = uniform_deployment(field, 300, rng)
        workers = rsa_working_set(candidates, probe_range=3.0, rng=rng)
        worker_set = set(workers)
        for candidate in candidates:
            if candidate in worker_set:
                continue
            assert any(math.dist(candidate, w) <= 3.0 for w in workers)

    def test_rsa_density_near_saturation(self):
        """Dense deployments saturate near the RSA packing density
        (~0.547 disk-coverage fraction -> ~0.077 workers per m^2 at
        R_p = 3)."""
        rng = random.Random(3)
        field = Field(50.0, 50.0)
        candidates = uniform_deployment(field, 2500, rng)
        workers = rsa_working_set(candidates, probe_range=3.0, rng=rng)
        density = len(workers) / field.area
        assert 0.06 < density < 0.09

    def test_rsa_invalid_range(self):
        with pytest.raises(ValueError):
            rsa_working_set([(0.0, 0.0)], probe_range=0.0, rng=random.Random(1))


class TestConnectivity:
    def test_working_graph_edges(self):
        graph = working_graph([(0.0, 0.0), (5.0, 0.0), (20.0, 0.0)], tx_range=10.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 2)

    def test_is_connected_chain(self):
        chain = [(float(i * 5), 0.0) for i in range(5)]
        assert is_connected(chain, tx_range=6.0)
        assert not is_connected(chain, tx_range=4.0)

    def test_trivial_sets_connected(self):
        assert is_connected([], 5.0)
        assert is_connected([(1.0, 1.0)], 5.0)

    def test_bound_fraction_for_dense_rsa(self):
        """Lemma 3.2: nearest working neighbors within (1+sqrt5) R_p."""
        rng = random.Random(5)
        field = Field(50.0, 50.0)
        candidates = uniform_deployment(field, 1500, rng)
        workers = rsa_working_set(candidates, probe_range=3.0, rng=rng)
        assert neighbor_distance_bound_fraction(workers, 3.0) == 1.0

    def test_connectivity_probability_monotone_in_range(self):
        rng = random.Random(6)
        field = Field(40.0, 40.0)
        low = connectivity_probability(field, 300, 3.0, 4.0, trials=10, rng=rng)
        rng = random.Random(6)
        high = connectivity_probability(field, 300, 3.0, 12.0, trials=10, rng=rng)
        assert high >= low

    def test_theorem31_factor_gives_connectivity(self):
        """At R_t = (1+sqrt5) R_p and adequate density, PEAS working sets
        are connected (Theorem 3.1)."""
        rng = random.Random(7)
        field = Field(50.0, 50.0)
        probability = connectivity_probability(
            field, 600, 3.0, THEOREM_RANGE_FACTOR * 3.0, trials=15, rng=rng
        )
        assert probability == 1.0

    def test_range_factor_sweep_shape(self):
        rng = random.Random(8)
        rows = connectivity_vs_range_factor(
            Field(40.0, 40.0), 400, 3.0, [1.2, THEOREM_RANGE_FACTOR], trials=8,
            rng=rng,
        )
        assert rows[0][1] <= rows[1][1]
        assert rows[1][1] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            working_graph([(0.0, 0.0)], tx_range=0.0)
        with pytest.raises(ValueError):
            connectivity_probability(
                Field(10, 10), 10, 3.0, 10.0, trials=0, rng=random.Random(1)
            )


class TestCells:
    def test_empty_cell_count_zero_when_everything_covered(self):
        rng = random.Random(1)
        # Absurdly dense: every one of the 4 cells occupied.
        assert empty_cell_count(10.0, 5000, 5.0, rng) == 0

    def test_empty_cell_count_full_when_no_nodes(self):
        rng = random.Random(1)
        assert empty_cell_count(10.0, 0, 5.0, rng) == 4

    def test_nodes_for_condition(self):
        n = nodes_for_condition(100.0, 3.0, k=3.0)
        expected = 3.0 * 100.0**2 * math.log(100.0) / 9.0
        assert n == math.ceil(expected)

    def test_condition_requires_side_above_one(self):
        with pytest.raises(ValueError):
            nodes_for_condition(1.0, 3.0, 3.0)

    def test_lemma31_dichotomy(self):
        """k > 2 drives E[#empty] toward 0; k far below 2 leaves many."""
        rng = random.Random(2)
        high_k = empty_cells_vs_side([60.0], 3.0, k=3.0, trials=3, rng=rng)
        low_k = empty_cells_vs_side([60.0], 3.0, k=0.5, trials=3, rng=rng)
        assert high_k[0][1] < low_k[0][1]

    def test_high_k_vanishing_empties(self):
        rng = random.Random(3)
        rows = empty_cells_vs_side([40.0, 80.0], 3.0, k=4.0, trials=2, rng=rng)
        assert rows[-1][1] <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            empty_cell_count(0.0, 10, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            empty_cells_vs_side([10.0], 1.0, 3.0, trials=0, rng=random.Random(1))


class TestEstimation:
    def test_clt_quantile_scales_inverse_sqrt_k(self):
        assert relative_error_quantile(64, 0.99) == pytest.approx(
            relative_error_quantile(16, 0.99) / 2.0
        )

    def test_paper_claim_quantified(self):
        """§2.2.1 claims 1% error at 99% confidence for k >= 16; the CLT
        actually requires k ~ 66000 — the discrepancy we report in
        EXPERIMENTS.md."""
        assert relative_error_quantile(16, 0.99) > 0.5
        assert 60000 < k_for_error(0.01, 0.99) < 70000

    def test_simulated_errors_match_clt_scale(self):
        rng = random.Random(4)
        errors_16 = simulate_estimator_errors(16, 0.02, 3000, rng)
        errors_64 = simulate_estimator_errors(64, 0.02, 3000, rng)
        rms_16 = (sum(e * e for e in errors_16) / len(errors_16)) ** 0.5
        rms_64 = (sum(e * e for e in errors_64) / len(errors_64)) ** 0.5
        assert rms_16 == pytest.approx(1 / 4.0, rel=0.3)
        assert rms_64 == pytest.approx(1 / 8.0, rel=0.3)

    def test_estimator_nearly_unbiased_at_large_k(self):
        rng = random.Random(5)
        errors = simulate_estimator_errors(128, 0.02, 4000, rng)
        assert abs(sum(errors) / len(errors)) < 0.03

    def test_merged_poisson_rate_is_sum(self):
        """Equation 3: superposed Poisson processes sum their rates."""
        rng = random.Random(6)
        total, intervals = merged_interval_samples(
            [0.01, 0.02, 0.03], samples=8000, rng=rng
        )
        assert total == pytest.approx(0.06)
        mean_interval = sum(intervals) / len(intervals)
        assert mean_interval == pytest.approx(1 / 0.06, rel=0.08)

    def test_merged_intervals_exponential_cv(self):
        """Exponential intervals have coefficient of variation ~1."""
        rng = random.Random(7)
        _, intervals = merged_interval_samples([0.05, 0.05], samples=8000, rng=rng)
        mean = sum(intervals) / len(intervals)
        var = sum((x - mean) ** 2 for x in intervals) / len(intervals)
        assert math.sqrt(var) / mean == pytest.approx(1.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_error_quantile(0, 0.99)
        with pytest.raises(ValueError):
            relative_error_quantile(16, 1.5)
        with pytest.raises(ValueError):
            k_for_error(0.0, 0.99)
        with pytest.raises(ValueError):
            simulate_estimator_errors(4, 0.0, 10, random.Random(1))
        with pytest.raises(ValueError):
            merged_interval_samples([], 10, random.Random(1))
