"""Unit tests for the event-detection substrate."""

import random

import pytest

from repro.net import Field
from repro.sensing import DetectionMonitor, EventOutcome, TargetEvent, generate_events
from repro.sim import Simulator


class FakeNode:
    def __init__(self, node_id, position):
        self.node_id = node_id
        self.position = position


class TestTargetEvent:
    def test_end_time(self):
        event = TargetEvent((1.0, 1.0), start_time=10.0, dwell_s=50.0)
        assert event.end_time == 60.0

    def test_unique_ids(self):
        a = TargetEvent((0.0, 0.0), 0.0, 1.0)
        b = TargetEvent((0.0, 0.0), 0.0, 1.0)
        assert a.uid != b.uid

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetEvent((0.0, 0.0), 0.0, 0.0)
        with pytest.raises(ValueError):
            TargetEvent((0.0, 0.0), -1.0, 1.0)


class TestEventOutcome:
    def test_detected_latency(self):
        event = TargetEvent((0.0, 0.0), 100.0, 50.0)
        outcome = EventOutcome(event, detected_at=130.0)
        assert outcome.detected
        assert outcome.latency_s == pytest.approx(30.0)

    def test_missed(self):
        event = TargetEvent((0.0, 0.0), 100.0, 50.0)
        outcome = EventOutcome(event, detected_at=None)
        assert not outcome.detected
        assert outcome.latency_s is None


class TestGenerateEvents:
    def test_rate_controls_count(self):
        field = Field(50.0, 50.0)
        events = generate_events(field, rate_hz=0.1, horizon_s=10000.0,
                                 dwell_s=100.0, rng=random.Random(1))
        assert 800 < len(events) < 1200  # ~1000 expected

    def test_events_inside_field_and_horizon(self):
        field = Field(30.0, 30.0)
        events = generate_events(field, 0.05, 2000.0, 100.0, random.Random(2))
        assert all(field.contains(event.position) for event in events)
        assert all(0 <= event.start_time < 2000.0 for event in events)

    def test_dwell_jitter(self):
        field = Field(30.0, 30.0)
        events = generate_events(field, 0.05, 5000.0, 100.0, random.Random(3),
                                 dwell_jitter=0.5)
        dwells = {round(event.dwell_s, 3) for event in events}
        assert len(dwells) > 5
        assert all(50.0 <= event.dwell_s <= 150.0 for event in events)

    def test_validation(self):
        field = Field(10.0, 10.0)
        with pytest.raises(ValueError):
            generate_events(field, 0.0, 100.0, 10.0, random.Random(1))
        with pytest.raises(ValueError):
            generate_events(field, 0.1, 0.0, 10.0, random.Random(1))
        with pytest.raises(ValueError):
            generate_events(field, 0.1, 100.0, 10.0, random.Random(1),
                            dwell_jitter=1.0)


class TestDetectionMonitor:
    def test_instant_detection_when_covered(self):
        sim = Simulator()
        event = TargetEvent((10.0, 10.0), start_time=50.0, dwell_s=100.0)
        monitor = DetectionMonitor(sim, [event], sensing_range=10.0)
        monitor.on_working_change(0.0, FakeNode(1, (12.0, 10.0)), True)
        sim.run(until=60.0)
        outcome = monitor.outcomes[event.uid]
        assert outcome.detected
        assert outcome.latency_s == pytest.approx(0.0)

    def test_delayed_detection_by_replacement(self):
        sim = Simulator()
        event = TargetEvent((10.0, 10.0), start_time=50.0, dwell_s=200.0)
        monitor = DetectionMonitor(sim, [event], sensing_range=10.0)
        sim.schedule(120.0, monitor.on_working_change, 120.0,
                     FakeNode(1, (10.0, 11.0)), True)
        sim.run(until=300.0)
        outcome = monitor.outcomes[event.uid]
        assert outcome.detected
        assert outcome.latency_s == pytest.approx(70.0)
        assert monitor.delayed_detections() == 1

    def test_missed_event(self):
        sim = Simulator()
        event = TargetEvent((10.0, 10.0), start_time=50.0, dwell_s=100.0)
        monitor = DetectionMonitor(sim, [event], sensing_range=10.0)
        monitor.on_working_change(0.0, FakeNode(1, (40.0, 40.0)), True)
        sim.run(until=300.0)
        outcome = monitor.outcomes[event.uid]
        assert not outcome.detected
        assert monitor.detection_ratio() == 0.0

    def test_min_detectors_requires_quorum(self):
        sim = Simulator()
        event = TargetEvent((10.0, 10.0), start_time=50.0, dwell_s=200.0)
        monitor = DetectionMonitor(sim, [event], sensing_range=10.0,
                                   min_detectors=2)
        monitor.on_working_change(0.0, FakeNode(1, (12.0, 10.0)), True)
        sim.run(until=60.0)
        assert event.uid not in monitor.outcomes  # one observer: not enough
        monitor.on_working_change(70.0, FakeNode(2, (8.0, 10.0)), True)
        assert monitor.outcomes[event.uid].detected

    def test_worker_leaving_before_event_does_not_detect(self):
        sim = Simulator()
        event = TargetEvent((10.0, 10.0), start_time=50.0, dwell_s=50.0)
        monitor = DetectionMonitor(sim, [event], sensing_range=10.0)
        node = FakeNode(1, (10.0, 11.0))
        monitor.on_working_change(0.0, node, True)
        sim.schedule(10.0, monitor.on_working_change, 10.0, node, False)
        sim.run(until=200.0)
        assert not monitor.outcomes[event.uid].detected

    def test_detection_ratio_and_mean_latency(self):
        sim = Simulator()
        events = [
            TargetEvent((10.0, 10.0), 10.0, 100.0),
            TargetEvent((40.0, 40.0), 10.0, 100.0),
        ]
        monitor = DetectionMonitor(sim, events, sensing_range=10.0)
        monitor.on_working_change(0.0, FakeNode(1, (10.0, 10.0)), True)
        sim.run(until=300.0)
        assert monitor.detection_ratio() == pytest.approx(0.5)
        assert monitor.mean_latency() == pytest.approx(0.0)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DetectionMonitor(sim, [], sensing_range=0.0)
        with pytest.raises(ValueError):
            DetectionMonitor(sim, [], min_detectors=0)


class TestDetectionWithPEAS:
    def test_peas_detects_events_through_failures(self):
        """End-to-end: events appearing over a PEAS network keep being
        detected while the network lives, including after failures."""
        from tests.helpers import make_network

        sim, network = make_network(num_nodes=120, seed=31,
                                    field_size=(30.0, 30.0))
        events = generate_events(
            Field(30.0, 30.0), rate_hz=0.02, horizon_s=3000.0, dwell_s=120.0,
            rng=random.Random(4),
        )
        monitor = DetectionMonitor(sim, events, sensing_range=10.0)
        network.working_observers.append(monitor.on_working_change)
        network.start()
        sim.run(until=200.0)
        for victim in list(network.working_ids())[:10]:
            network.kill(victim)
        sim.run(until=3500.0)
        assert monitor.detection_ratio() > 0.95
