"""The whole-program graph engine: summaries, resolution, cache.

Fixture trees are written under ``tmp_path`` with a ``repro/`` segment so
module naming and sim-scope detection behave as they do on the real tree.
"""

import json
import textwrap

import pytest

from repro.lint.graph import (
    CACHE_FILENAME,
    SummaryCache,
    build_program,
    module_name_for,
    summarize_module,
)


def write_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def graph_of(tmp_path, files, cache=False):
    write_tree(tmp_path, files)
    cache_path = tmp_path / CACHE_FILENAME if cache else None
    return build_program([tmp_path / "repro"], root=tmp_path,
                         cache_path=cache_path)


# ------------------------------------------------------------ module naming
def test_module_name_for_strips_source_prefix():
    assert module_name_for("src/repro/sim/engine.py") == ("repro.sim.engine", False)
    assert module_name_for("repro/sim/engine.py") == ("repro.sim.engine", False)
    assert module_name_for("repro/obs/__init__.py") == ("repro.obs", True)
    assert module_name_for("standalone.py") == ("standalone", False)


# ---------------------------------------------------------------- summaries
def test_summary_round_trips_through_json():
    source = textwrap.dedent(
        """
        import time
        from ..obs import helper

        class Base:
            def greet(self):  # peas-lint: hot
                return helper()

        class Child(Base):
            def __init__(self):
                self.x = 1

        def clocky():
            return time.time()
        """
    )
    import ast

    summary = summarize_module("repro/sim/mod.py", source, ast.parse(source))
    payload = json.loads(json.dumps(summary.as_dict()))
    from repro.lint.graph import ModuleSummary

    restored = ModuleSummary.from_dict(payload)
    assert restored == summary
    assert restored.functions["clocky"].sinks[0].what == "time.time()"
    assert restored.functions["Base.greet"].markers == ("hot",)
    assert restored.classes["Child"].bases == ("Base",)
    assert restored.imports["helper"] == "repro.obs.helper"


# --------------------------------------------------------------- resolution
def test_resolves_direct_relative_and_reexported_imports(tmp_path):
    graph = graph_of(tmp_path, {
        "repro/util/__init__.py": "from .impl import helper\n",
        "repro/util/impl.py": "def helper():\n    return 1\n",
        "repro/sim/a.py": """
            from ..util import helper
            from ..util.impl import helper as direct

            def use():
                helper()

            def use_direct():
                direct()
        """,
    })
    edges = {
        target
        for symbol in ("repro.sim.a:use", "repro.sim.a:use_direct")
        for target, _ in graph.edges_from(symbol)
    }
    assert edges == {"repro.util.impl:helper"}


def test_resolves_self_methods_inheritance_and_constructors(tmp_path):
    graph = graph_of(tmp_path, {
        "repro/sim/base.py": """
            class Base:
                def shared(self):
                    return 0
        """,
        "repro/sim/impl.py": """
            from .base import Base

            class Impl(Base):
                def __init__(self):
                    self.n = 0

                def run(self):
                    self.shared()

            def make():
                return Impl()
        """,
    })
    run_edges = [t for t, _ in graph.edges_from("repro.sim.impl:Impl.run")]
    assert run_edges == ["repro.sim.base:Base.shared"]
    make_edges = [t for t, _ in graph.edges_from("repro.sim.impl:make")]
    assert make_edges == ["repro.sim.impl:Impl.__init__"]


def test_unresolvable_calls_produce_no_edges(tmp_path):
    graph = graph_of(tmp_path, {
        "repro/sim/a.py": """
            import os

            def use(thing):
                os.getcwd()        # stdlib: outside the lint scope
                thing.method()     # unknown receiver type
                (lambda: 1)()      # not nameable
        """,
    })
    assert graph.edges_from("repro.sim.a:use") == []


def test_graph_dumps(tmp_path):
    graph = graph_of(tmp_path, {
        "repro/sim/a.py": """
            def callee():
                return 1

            def caller():
                return callee()
        """,
    })
    payload = json.loads(graph.to_json())
    assert payload["schema"] == "peas-callgraph/1"
    functions = payload["modules"]["repro.sim.a"]["functions"]
    assert functions["caller"]["calls"] == [
        {"to": "repro.sim.a.callee", "line": 6}
    ]
    assert functions["caller"]["sim_scoped"] is True
    dot = graph.to_dot()
    assert '"repro.sim.a.caller" -> "repro.sim.a.callee";' in dot


# -------------------------------------------------------------------- cache
FILES = {
    "repro/sim/a.py": "def f():\n    return 1\n",
    "repro/sim/b.py": "def g():\n    return 2\n",
}


def test_cache_cold_then_warm(tmp_path):
    graph = graph_of(tmp_path, FILES, cache=True)
    assert graph.stats == {"parsed": 2, "cached": 0}
    warm = build_program([tmp_path / "repro"], root=tmp_path,
                         cache_path=tmp_path / CACHE_FILENAME)
    assert warm.stats == {"parsed": 0, "cached": 2}


def test_mtime_only_touch_stays_warm_content_change_reparses(tmp_path):
    graph_of(tmp_path, FILES, cache=True)
    target = tmp_path / "repro/sim/a.py"
    # mtime bump, identical bytes: still a cache hit
    target.touch()
    warm = build_program([tmp_path / "repro"], root=tmp_path,
                         cache_path=tmp_path / CACHE_FILENAME)
    assert warm.stats == {"parsed": 0, "cached": 2}
    # content change: exactly that file re-parses
    target.write_text("def f():\n    return 3\n", encoding="utf-8")
    edited = build_program([tmp_path / "repro"], root=tmp_path,
                           cache_path=tmp_path / CACHE_FILENAME)
    assert edited.stats == {"parsed": 1, "cached": 1}


def test_corrupt_or_version_skewed_cache_degrades_to_cold(tmp_path):
    write_tree(tmp_path, FILES)
    cache_path = tmp_path / CACHE_FILENAME
    cache_path.write_text("{not json", encoding="utf-8")
    graph = build_program([tmp_path / "repro"], root=tmp_path,
                          cache_path=cache_path)
    assert graph.stats == {"parsed": 2, "cached": 0}
    payload = json.loads(cache_path.read_text(encoding="utf-8"))
    payload["version"] = 999
    cache_path.write_text(json.dumps(payload), encoding="utf-8")
    graph = build_program([tmp_path / "repro"], root=tmp_path,
                          cache_path=cache_path)
    assert graph.stats == {"parsed": 2, "cached": 0}


def test_cache_prunes_deleted_files(tmp_path):
    graph_of(tmp_path, FILES, cache=True)
    (tmp_path / "repro/sim/b.py").unlink()
    build_program([tmp_path / "repro"], root=tmp_path,
                  cache_path=tmp_path / CACHE_FILENAME)
    payload = json.loads((tmp_path / CACHE_FILENAME).read_text(encoding="utf-8"))
    assert sorted(payload["entries"]) == ["repro/sim/a.py"]


def test_syntax_error_files_are_skipped_not_cached(tmp_path):
    write_tree(tmp_path, {"repro/sim/bad.py": "def broken(:\n"})
    graph = build_program([tmp_path / "repro"], root=tmp_path,
                          cache_path=tmp_path / CACHE_FILENAME)
    assert graph.stats == {"parsed": 0, "cached": 0}
    assert graph.by_module == {}


def test_content_hash_is_stable():
    assert SummaryCache.content_hash("x = 1\n") == SummaryCache.content_hash("x = 1\n")
    assert SummaryCache.content_hash("x = 1\n") != SummaryCache.content_hash("x = 2\n")
