"""Unit tests for the cross-run comparator (``repro.obs.diff``)."""

import json

import pytest

from repro.obs.diff import MetricDelta, diff_runs, load_run, render_diff
from repro.obs.metrics import MetricsRegistry, save_metrics


def write_run(path, label, *, runs=2, git="abc1234", wall=1.0, energy=5.0):
    path.mkdir(parents=True, exist_ok=True)
    registry = MetricsRegistry()
    registry.counter("peas_runs_total", status="ok").inc(runs)
    registry.counter("peas_energy_joules_total", cat="sleep").inc(energy)
    registry.gauge("peas_sweep_wall_seconds").set(wall)
    hist = registry.histogram("peas_coverage_lifetime_seconds", k="3")
    for _ in range(runs):
        hist.observe(2500.0)
    save_metrics(registry, path / "metrics.ndjson", meta={"label": label})
    (path / "manifest.json").write_text(json.dumps({
        "schema": "peas-sweep-manifest/1",
        "label": label,
        "runs": runs,
        "ok": runs,
        "errors": 0,
        "git_sha": git,
        "config_digest": "cfg-1",
        "protocols": ["peas"],
    }))
    return path


class TestLoadRun:
    def test_accepts_directory_or_file(self, tmp_path):
        run_dir = write_run(tmp_path / "a", "a")
        by_dir = load_run(run_dir)
        by_file = load_run(run_dir / "metrics.ndjson")
        assert by_dir.samples == by_file.samples
        assert by_dir.manifest["label"] == "a"
        assert by_dir.label == "a"

    def test_missing_manifest_degrades(self, tmp_path):
        run_dir = write_run(tmp_path / "a", "a")
        (run_dir / "manifest.json").unlink()
        record = load_run(run_dir)
        assert record.manifest == {}
        assert record.header["label"] == "a"

    def test_missing_metrics_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no metrics export"):
            load_run(tmp_path)


class TestDiffRuns:
    def test_identical_runs_show_no_movement(self, tmp_path):
        a = load_run(write_run(tmp_path / "a", "same"))
        b = load_run(write_run(tmp_path / "b", "same"))
        diff = diff_runs(a, b)
        assert diff.drift == []
        assert diff.changed == []
        assert diff.unchanged == 4
        assert "provenance: identical" in render_diff(diff)

    def test_drift_and_deltas_reported(self, tmp_path):
        a = load_run(write_run(tmp_path / "a", "a", runs=2, energy=5.0))
        b = load_run(
            write_run(tmp_path / "b", "b", runs=4, git="def5678", energy=7.5)
        )
        diff = diff_runs(a, b)
        assert ("git_sha", "abc1234", "def5678") in diff.drift
        assert ("runs", 2, 4) in diff.drift
        by_name = {d.name: d for d in diff.changed}
        runs = by_name["peas_runs_total"]
        assert (runs.value_a, runs.value_b) == (2, 4)
        assert runs.pct == pytest.approx(100.0)
        energy = by_name["peas_energy_joules_total"]
        assert energy.delta == pytest.approx(2.5)
        # Histogram compared by mean: same mean, different count -> changed.
        lifetime = by_name["peas_coverage_lifetime_seconds"]
        assert lifetime.value_a == lifetime.value_b == 2500.0
        assert (lifetime.count_a, lifetime.count_b) == (2, 4)
        report = render_diff(diff)
        assert "provenance drift" in report
        assert "energy by category" in report
        assert "top counter movers" in report

    def test_one_sided_metrics_listed(self, tmp_path):
        a_dir = write_run(tmp_path / "a", "a")
        b_dir = write_run(tmp_path / "b", "b")
        registry = MetricsRegistry()
        registry.counter("peas_runs_total", status="ok").inc(2)
        registry.counter("peas_wakeups_total").inc(9)
        save_metrics(registry, b_dir / "metrics.ndjson", meta={"label": "b"})
        diff = diff_runs(load_run(a_dir), load_run(b_dir))
        assert diff.only_b == ["peas_wakeups_total"]
        assert any(name.startswith("peas_energy") for name in diff.only_a)
        report = render_diff(diff)
        assert "only in A" in report and "only in B" in report


class TestMetricDelta:
    def test_pct_none_when_baseline_zero(self):
        delta = MetricDelta(
            name="peas_wakeups_total", labels={}, kind="counter",
            value_a=0, value_b=5,
        )
        assert delta.pct is None
        assert "new" in delta.describe()

    def test_describe_includes_labels(self):
        delta = MetricDelta(
            name="peas_runs_total", labels={"status": "ok"}, kind="counter",
            value_a=2, value_b=3,
        )
        text = delta.describe()
        assert "peas_runs_total{status=ok}" in text
        assert "+50.0%" in text
