"""Unit tests for run-result and scenario JSON serialization."""

import json

import pytest

from repro.experiments import (
    RunResult,
    Scenario,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
    scenario_from_dict,
    scenario_to_dict,
)


def make_result():
    return RunResult(
        num_nodes=320,
        seed=4,
        failure_rate_per_5000s=10.66,
        end_time=16000.0,
        coverage_lifetimes={3: 12500.0, 4: 11000.0, 5: None},
        delivery_lifetime=13000.0,
        total_wakeups=14200,
        energy_total_j=17123.4,
        energy_overhead_j=81.2,
        energy_by_category={"probe_tx": 20.0, "data_tx": 3.5},
        failures_injected=41,
        counters={"wakeups": 14200},
        channel_counters={"frames_sent": 99000},
        series={"coverage_3": [(0.0, 0.0), (100.0, 0.95)]},
        extras={"gap_mean_s": 123.0},
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        original = make_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.num_nodes == original.num_nodes
        assert restored.coverage_lifetimes == original.coverage_lifetimes
        assert restored.delivery_lifetime == original.delivery_lifetime
        assert restored.energy_by_category == original.energy_by_category
        assert restored.series == original.series
        assert restored.extras == original.extras
        assert restored.counters == original.counters

    def test_coverage_keys_are_ints_after_round_trip(self):
        restored = result_from_dict(result_to_dict(make_result()))
        assert all(isinstance(k, int) for k in restored.coverage_lifetimes)

    def test_none_lifetime_survives(self):
        restored = result_from_dict(result_to_dict(make_result()))
        assert restored.coverage_lifetimes[5] is None

    def test_dict_is_json_compatible(self):
        import json

        json.dumps(result_to_dict(make_result()))

    def test_unknown_schema_rejected(self):
        payload = result_to_dict(make_result())
        payload["schema"] = 99
        with pytest.raises(ValueError):
            result_from_dict(payload)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        results = [make_result(), make_result()]
        path = tmp_path / "runs.json"
        save_results(results, path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0].total_wakeups == results[0].total_wakeups
        assert loaded[1].series == results[1].series

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_results(path)

    def test_round_trip_through_real_run(self, tmp_path):
        from repro.experiments import run_scenario

        result = run_scenario(
            Scenario(num_nodes=20, field_size=(15.0, 15.0), seed=1,
                     with_traffic=False, max_time_s=1000.0, keep_series=True)
        )
        path = tmp_path / "real.json"
        save_results([result], path)
        (restored,) = load_results(path)
        assert restored.total_wakeups == result.total_wakeups
        assert restored.coverage_lifetimes == result.coverage_lifetimes


class TestScenarioRoundTrip:
    def test_round_trip_preserves_every_field(self):
        import dataclasses

        original = Scenario(
            num_nodes=123,
            field_size=(33.0, 44.0),
            seed=9,
            failure_per_5000s=21.33,
            protocol="gaf",
            with_traffic=True,
            keep_series=True,
            measure_gaps=True,
            max_time_s=2500.0,
        )
        restored = scenario_from_dict(scenario_to_dict(original))
        for spec in dataclasses.fields(Scenario):
            assert getattr(restored, spec.name) == getattr(original, spec.name), spec.name

    def test_round_trip_survives_json(self):
        original = Scenario(num_nodes=64, protocol="duty_cycle")
        payload = json.loads(json.dumps(scenario_to_dict(original)))
        restored = scenario_from_dict(payload)
        assert restored == original
        assert restored.protocol == "duty_cycle"
        assert isinstance(restored.field_size, tuple)
        assert isinstance(restored.coverage_ks, tuple)

    def test_golden_payload_shape(self):
        # Pin the wire format: schema marker plus one key per Scenario
        # field, with config/profile as nested dicts.
        payload = scenario_to_dict(Scenario(num_nodes=10))
        assert payload["schema"] == "peas-scenario/1"
        assert payload["protocol"] == "peas"
        assert payload["num_nodes"] == 10
        assert isinstance(payload["config"], dict)
        assert isinstance(payload["profile"], dict)
        assert isinstance(payload["field_size"], list)

    def test_unknown_schema_rejected(self):
        payload = scenario_to_dict(Scenario())
        payload["schema"] = "peas-scenario/99"
        with pytest.raises(ValueError):
            scenario_from_dict(payload)
