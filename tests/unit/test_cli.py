"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.nodes == 160
        assert args.failure_rate == pytest.approx(10.66)

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "--nodes", "320", "--seed", "5", "--no-traffic"]
        )
        assert args.nodes == 320
        assert args.seed == 5
        assert args.no_traffic

    def test_all_artifact_commands_exist(self):
        parser = build_parser()
        for name in ("fig9", "fig10", "fig11", "table1", "fig12", "fig13", "fig14"):
            assert parser.parse_args([name]).command == name

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_run_trace_and_profile_flags(self):
        args = build_parser().parse_args(
            ["run", "--trace", "out.ndjson", "--profile"]
        )
        assert args.trace == "out.ndjson"
        assert args.profile

    def test_run_faults_flag(self):
        args = build_parser().parse_args(["run", "--faults", "plan.json"])
        assert args.faults == "plan.json"
        assert build_parser().parse_args(["run"]).faults is None

    def test_run_snapshot_flags(self):
        args = build_parser().parse_args(
            ["run", "--snapshot", "ck.json", "--checkpoint-every", "500",
             "--stop-after", "1200"]
        )
        assert args.snapshot == "ck.json"
        assert args.checkpoint_every == 500.0
        assert args.stop_after == 1200.0
        defaults = build_parser().parse_args(["run"])
        assert defaults.snapshot is None
        assert defaults.restore is None
        assert defaults.checkpoint_every is None
        assert not defaults.force_restore

    def test_run_restore_fork_flags(self):
        args = build_parser().parse_args(
            ["run", "--restore", "ck.json", "--force-restore",
             "--fork-failure-rate", "32", "--fork-faults", "plan.json",
             "--fork-max-time", "9000"]
        )
        assert args.restore == "ck.json"
        assert args.force_restore
        assert args.fork_failure_rate == 32.0
        assert args.fork_faults == "plan.json"
        assert args.fork_max_time == 9000.0

    def test_robustness_command_exists(self):
        assert build_parser().parse_args(["robustness"]).command == "robustness"

    def test_inspect_command(self):
        args = build_parser().parse_args(
            ["inspect", "trace.ndjson", "--validate", "--max-nodes", "5"]
        )
        assert args.command == "inspect"
        assert args.trace == "trace.ndjson"
        assert args.validate
        assert args.max_nodes == 5


class TestCommands:
    def test_estimator_command(self, capsys):
        assert main(["estimator", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "k-interval estimator" in out
        assert "66" in out  # k_for_error magnitude

    def test_connectivity_command(self, capsys):
        assert main(["connectivity", "--trials", "2", "--nodes", "150",
                     "--side", "30"]) == 0
        out = capsys.readouterr().out
        assert "P(connected)" in out

    def test_run_command_small(self, capsys, monkeypatch):
        # Tiny population on the full field finishes quickly.
        assert main(["run", "--nodes", "12", "--seed", "1", "--no-traffic",
                     "--failure-rate", "0"]) == 0
        out = capsys.readouterr().out
        assert "total wakeups" in out
        assert "coverage lifetime" in out

    def test_run_traced_then_inspect(self, capsys, tmp_path):
        trace = tmp_path / "run.ndjson"
        assert main(["run", "--nodes", "12", "--seed", "1", "--no-traffic",
                     "--failure-rate", "0", "--trace", str(trace),
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "engine profile" in out
        assert "provenance" in out
        assert trace.exists()
        manifest = tmp_path / "run.manifest.json"
        assert manifest.exists()

        assert main(["inspect", str(trace), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "schema OK" in out
        assert "per-node state timelines" in out

    def test_run_snapshot_then_restore_stitches_bytes(self, capsys, tmp_path):
        base = ["run", "--nodes", "12", "--seed", "1", "--no-traffic",
                "--failure-rate", "4"]
        assert main(base + ["--trace", str(tmp_path / "full.ndjson")]) == 0
        assert main(base + ["--trace", str(tmp_path / "prefix.ndjson"),
                            "--snapshot", str(tmp_path / "ck.json"),
                            "--stop-after", "1000"]) == 0
        out = capsys.readouterr().out
        assert "snapshot:" in out
        assert main(["run", "--restore", str(tmp_path / "ck.json"),
                     "--trace", str(tmp_path / "suffix.ndjson")]) == 0
        out = capsys.readouterr().out
        assert "restore:" in out and "resume" in out
        stitched = (tmp_path / "prefix.ndjson").read_bytes() + (
            tmp_path / "suffix.ndjson").read_bytes()
        assert stitched == (tmp_path / "full.ndjson").read_bytes()

    def test_run_restore_rejects_wrong_file(self, capsys, tmp_path):
        bogus = tmp_path / "not-a-snapshot.json"
        bogus.write_text('{"format": "peas-trace/1"}')
        with pytest.raises(SystemExit):
            main(["run", "--restore", str(bogus)])

    def test_inspect_invalid_trace_fails(self, capsys, tmp_path):
        trace = tmp_path / "bad.ndjson"
        trace.write_text('{"t": 0, "ev": "bogus", "node": 1}\n')
        with pytest.raises(SystemExit) as excinfo:
            main(["inspect", str(trace), "--validate"])
        assert excinfo.value.code == 1
        assert "schema violation" in capsys.readouterr().err
