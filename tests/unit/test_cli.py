"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.nodes == 160
        assert args.failure_rate == pytest.approx(10.66)

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "--nodes", "320", "--seed", "5", "--no-traffic"]
        )
        assert args.nodes == 320
        assert args.seed == 5
        assert args.no_traffic

    def test_all_artifact_commands_exist(self):
        parser = build_parser()
        for name in ("fig9", "fig10", "fig11", "table1", "fig12", "fig13", "fig14"):
            assert parser.parse_args([name]).command == name

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestCommands:
    def test_estimator_command(self, capsys):
        assert main(["estimator", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "k-interval estimator" in out
        assert "66" in out  # k_for_error magnitude

    def test_connectivity_command(self, capsys):
        assert main(["connectivity", "--trials", "2", "--nodes", "150",
                     "--side", "30"]) == 0
        out = capsys.readouterr().out
        assert "P(connected)" in out

    def test_run_command_small(self, capsys, monkeypatch):
        # Tiny population on the full field finishes quickly.
        assert main(["run", "--nodes", "12", "--seed", "1", "--no-traffic",
                     "--failure-rate", "0"]) == 0
        out = capsys.readouterr().out
        assert "total wakeups" in out
        assert "coverage lifetime" in out
