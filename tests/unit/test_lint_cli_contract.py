"""The ``peas-lint`` CLI contract: exit codes, cache, graph and explain.

CI and the pre-commit hook script against these exit codes, so they are
pinned here rather than implied: 0 clean, 1 new findings, 2 usage error.
"""

import json
import textwrap

import pytest

from repro.lint.cli import run_lint
from repro.lint.graph import CACHE_FILENAME

CLOCKY = """
    import time

    def schedule():
        return time.time()
"""


def write_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def lint(tmp_path, *extra):
    return run_lint([str(tmp_path / "repro"), "--root", str(tmp_path), *extra])


# ----------------------------------------------------------------- exit codes
def test_exit_0_on_empty_tree(tmp_path, capsys):
    (tmp_path / "repro").mkdir()
    assert lint(tmp_path) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_exit_0_on_clean_tree(tmp_path):
    write_tree(tmp_path, {"repro/sim/ok.py": "def f():\n    return 1\n"})
    assert lint(tmp_path) == 0


def test_exit_1_on_findings(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/engine.py": CLOCKY})
    assert lint(tmp_path) == 1
    assert "D103" in capsys.readouterr().out


def test_exit_1_on_syntax_error_file(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/bad.py": "def broken(:\n"})
    assert lint(tmp_path) == 1
    assert "E000" in capsys.readouterr().out


def test_exit_2_on_unknown_rule_id(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/ok.py": "x = 1\n"})
    assert lint(tmp_path, "--select", "Z999") == 2
    assert "Z999" in capsys.readouterr().err


def test_exit_2_on_missing_path(tmp_path, capsys):
    assert run_lint([str(tmp_path / "nowhere")]) == 2
    assert "no such path" in capsys.readouterr().err


# ---------------------------------------------------------------------- graph
def test_graph_json_dump_exits_0_even_with_findings(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/engine.py": CLOCKY})
    assert lint(tmp_path, "--graph", "json") == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "peas-callgraph/1"
    assert "repro.sim.engine" in payload["modules"]


def test_graph_dot_dump(tmp_path, capsys):
    write_tree(tmp_path, {
        "repro/sim/a.py": "def callee():\n    return 1\n\n"
                          "def caller():\n    return callee()\n",
    })
    assert lint(tmp_path, "--graph", "dot") == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert '"repro.sim.a.caller" -> "repro.sim.a.callee";' in out


# -------------------------------------------------------------------- explain
def _fingerprint_of(tmp_path, capsys):
    assert lint(tmp_path, "--format", "json") == 1
    payload = json.loads(capsys.readouterr().out)
    return payload["new"][0]


def test_explain_prints_chain_and_exits_0(tmp_path, capsys):
    write_tree(tmp_path, {
        "repro/analysis/helpers.py": """
            import time

            def stamp():
                return time.time()
        """,
        "repro/sim/engine.py": """
            from ..analysis.helpers import stamp

            def schedule():
                return stamp()
        """,
    })
    fingerprint = _fingerprint_of(tmp_path, capsys)
    assert lint(tmp_path, "--explain", fingerprint) == 0
    out = capsys.readouterr().out
    assert f"fingerprint: {fingerprint}" in out
    assert "call chain:" in out
    assert "repro.analysis.helpers.stamp" in out


def test_explain_unknown_fingerprint_exits_2(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/ok.py": "x = 1\n"})
    assert lint(tmp_path, "--explain", "deadbeefdeadbeef") == 2
    assert "no finding" in capsys.readouterr().err


# ------------------------------------------------------------------- baseline
def test_update_baseline_refuses_determinism_findings(tmp_path, capsys):
    write_tree(tmp_path, {
        "repro/analysis/helpers.py": """
            import time

            def stamp():
                return time.time()
        """,
        "repro/sim/engine.py": """
            from ..analysis.helpers import stamp

            def schedule():
                return stamp()
        """,
    })
    baseline = tmp_path / "baseline.json"
    code = lint(tmp_path, "--baseline", str(baseline), "--update-baseline")
    assert code == 2
    assert "determinism" in capsys.readouterr().err
    assert not baseline.exists()


# ---------------------------------------------------------------------- cache
def test_cache_file_written_and_reused(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/ok.py": "def f():\n    return 1\n"})
    assert lint(tmp_path) == 0
    cache_path = tmp_path / CACHE_FILENAME
    assert cache_path.exists()
    cold = json.loads(cache_path.read_text(encoding="utf-8"))
    assert "repro/sim/ok.py" in cold["entries"]


def test_cli_cache_invalidation_on_content_change_only(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/ok.py": "def f():\n    return 1\n"})

    def stats():
        assert lint(tmp_path, "--graph", "json") == 0
        return json.loads(capsys.readouterr().out)["stats"]

    assert stats() == {"parsed": 1, "cached": 0}
    # mtime-only touch: still warm
    (tmp_path / "repro/sim/ok.py").touch()
    assert stats() == {"parsed": 0, "cached": 1}
    # content change: that file re-parses
    (tmp_path / "repro/sim/ok.py").write_text(
        "def f():\n    return 2\n", encoding="utf-8")
    assert stats() == {"parsed": 1, "cached": 0}


def test_no_cache_flag_skips_the_cache_file(tmp_path, capsys):
    write_tree(tmp_path, {"repro/sim/ok.py": "def f():\n    return 1\n"})
    assert lint(tmp_path, "--no-cache") == 0
    assert not (tmp_path / CACHE_FILENAME).exists()
