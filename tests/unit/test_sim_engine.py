"""Unit tests for repro.sim.engine.Simulator."""

import pytest

from repro.sim import EventQueueEmpty, SimulationError, Simulator


class TestScheduling:
    def test_schedule_relative_delay(self, sim):
        event = sim.schedule(5.0, lambda: None)
        assert event.time == 5.0

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule_at(7.0, lambda: None)
        assert sim.peek_time() == 7.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_pending_events_counts_queue(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2


class TestExecutionOrder:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_among_equal_times(self, sim):
        fired = []
        for tag in "abc":
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_priority_overrides_fifo(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "late", priority=20)
        sim.schedule(1.0, fired.append, "early", priority=0)
        sim.run()
        assert fired == ["early", "late"]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestRunUntil:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_run_until_advances_clock_with_empty_queue(self, sim):
        sim.run(until=9.0)
        assert sim.now == 9.0

    def test_event_exactly_at_until_fires(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_resume_after_until(self, sim):
        fired = []
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["late"]

    def test_until_with_cancelled_head_events(self, sim):
        """Tombstoned heap heads must not stall or mis-advance the clock."""
        fired = []
        doomed = [sim.schedule(t, fired.append, f"dead@{t}") for t in (1.0, 2.0)]
        sim.schedule(3.0, fired.append, "live")
        for event in doomed:
            event.cancel()
        sim.run(until=5.0)
        assert fired == ["live"]
        assert sim.now == 5.0

    def test_until_before_cancelled_tail(self, sim):
        """Clock lands exactly on ``until`` even when later events are dead."""
        fired = []
        sim.schedule(1.0, fired.append, "early")
        late = sim.schedule(10.0, fired.append, "late")
        late.cancel()
        sim.run(until=4.0)
        assert fired == ["early"]
        assert sim.now == 4.0
        sim.run()  # drain: only the tombstone remains
        assert fired == ["early"]

    def test_live_events_excludes_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.live_events == 1
        assert sim.pending_events >= sim.live_events

    def test_mass_cancellation_compacts_queue(self, sim):
        """Tombstone reaping keeps the heap from growing without bound."""
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
        for event in events[:400]:
            event.cancel()
        assert sim.live_events == 100
        assert sim.pending_events < 500  # compaction reaped dead entries
        sim.run()
        assert sim.events_executed == 100
        assert sim.now == 500.0


class TestControl:
    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append("first"), sim.stop()))
        sim.schedule(2.0, fired.append, "second")
        sim.run()
        assert fired == ["first"]

    def test_max_events_guard(self, sim):
        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=10)

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.step()
        assert fired == ["a"]

    def test_step_empty_queue_raises(self, sim):
        with pytest.raises(EventQueueEmpty):
            sim.step()

    def test_not_reentrant(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_peek_skips_cancelled_head(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_events_executed_excludes_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        sim.run()
        assert sim.events_executed == 1


class TestHooks:
    def test_pre_event_hook_sees_each_event(self, sim):
        seen = []
        sim.pre_event_hooks.append(lambda event: seen.append(event.time))
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert seen == [1.0, 2.0]
