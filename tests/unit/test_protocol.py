"""Unit tests for repro.core.protocol.PEASNetwork wiring."""

import pytest

from repro.core import PEASConfig, PEASNetwork, validate_timing
from repro.net import Field, RadioModel
from repro.sim import RngRegistry, Simulator

from tests.helpers import make_network


class TestValidateTiming:
    def test_paper_defaults_fit(self):
        validate_timing(PEASConfig(), RadioModel())

    def test_too_many_probes_rejected(self):
        with pytest.raises(ValueError):
            validate_timing(PEASConfig(num_probes=8), RadioModel())

    def test_short_window_rejected(self):
        with pytest.raises(ValueError):
            validate_timing(PEASConfig(probe_window_s=0.04), RadioModel())

    def test_slow_bitrate_rejected(self):
        """Longer airtime can push the burst past the window."""
        with pytest.raises(ValueError):
            validate_timing(PEASConfig(), RadioModel(bitrate_bps=5_000.0))


class TestConstruction:
    def test_nodes_get_sequential_ids(self):
        sim, network = make_network(num_nodes=5)
        assert sorted(network.nodes) == [0, 1, 2, 3, 4]

    def test_population(self):
        sim, network = make_network(num_nodes=12)
        assert network.population == 12

    def test_position_outside_field_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PEASNetwork(
                sim, Field(10.0, 10.0), [(50.0, 50.0)], PEASConfig(),
                RngRegistry(seed=1),
            )

    def test_batteries_within_profile_range(self):
        sim, network = make_network(num_nodes=30)
        for node in network.sensor_nodes():
            assert 54.0 <= node.battery.initial_j <= 60.0

    def test_anchor_outside_field_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PEASNetwork(
                sim, Field(10.0, 10.0), [(5.0, 5.0)], PEASConfig(),
                RngRegistry(seed=1), anchors=[(50.0, 50.0)],
            )


class TestObservers:
    def test_working_observers_see_starts_and_stops(self):
        sim, network = make_network(num_nodes=10, field_size=(15.0, 15.0))
        events = []
        network.working_observers.append(
            lambda t, node, started: events.append((t, node.node_id, started))
        )
        network.start()
        sim.run(until=300.0)
        starts = [e for e in events if e[2]]
        assert starts
        assert len(network.working_ids()) == sum(1 for e in events if e[2]) - sum(
            1 for e in events if not e[2]
        )

    def test_death_observers_fire(self):
        sim, network = make_network(num_nodes=5)
        deaths = []
        network.death_observers.append(
            lambda t, node, cause: deaths.append((node.node_id, cause))
        )
        network.start()
        sim.run(until=100.0)
        network.kill(0)
        assert len(deaths) == 1

    def test_working_set_tracks_observer_stream(self):
        sim, network = make_network(num_nodes=20)
        live = set()

        def observer(t, node, started):
            if started:
                live.add(node.node_id)
            else:
                live.discard(node.node_id)

        network.working_observers.append(observer)
        network.start()
        sim.run(until=6000.0)
        assert live == set(network.working_ids())


class TestEnergyAccounting:
    def test_frame_energy_lands_in_categories(self):
        sim, network = make_network(num_nodes=10, field_size=(10.0, 10.0))
        network.start()
        sim.run(until=500.0)
        report = network.energy_report()
        assert report.by_category.get("probe_tx", 0.0) > 0
        assert report.by_category.get("probe_idle", 0.0) > 0

    def test_total_bounded_by_initial(self):
        sim, network = make_network(num_nodes=10)
        network.start()
        sim.run(until=10000.0)
        report = network.energy_report()
        assert report.total_consumed_j <= network.total_initial_energy() + 1e-6

    def test_overhead_is_small_fraction(self):
        sim, network = make_network(num_nodes=40)
        network.start()
        sim.run(until=6000.0)
        report = network.energy_report()
        assert report.overhead_ratio < 0.02  # §1: "less than 1%" at full life


class TestKill:
    def test_kill_removes_from_alive(self):
        sim, network = make_network(num_nodes=5)
        network.start()
        network.kill(3)
        assert 3 not in network.alive_ids()

    def test_all_dead_after_killing_everyone(self):
        sim, network = make_network(num_nodes=4)
        network.start()
        for node_id in range(4):
            network.kill(node_id)
        assert network.all_dead

    def test_working_positions_match_ids(self):
        sim, network = make_network(num_nodes=15)
        network.start()
        sim.run(until=200.0)
        assert len(network.working_positions()) == len(network.working_ids())
