"""Unit tests for repro.net.radio.RadioModel."""

import random

import pytest

from repro.net import PACKET_SIZE_BYTES, RadioModel


class TestAirtime:
    def test_paper_frame_airtime(self):
        """25 bytes at 20 kbps = 10 ms (§5.1)."""
        radio = RadioModel()
        assert radio.airtime(PACKET_SIZE_BYTES) == pytest.approx(0.010)

    def test_scales_with_size(self):
        radio = RadioModel()
        assert radio.airtime(50) == pytest.approx(2 * radio.airtime(25))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RadioModel().airtime(0)


class TestRssi:
    def test_monotonically_decreasing(self):
        radio = RadioModel()
        assert radio.rssi(1.0) > radio.rssi(2.0) > radio.rssi(5.0) > radio.rssi(10.0)

    def test_inverse_square_default(self):
        radio = RadioModel()
        assert radio.rssi(2.0) == pytest.approx(0.25)

    def test_custom_exponent(self):
        radio = RadioModel(path_loss_exponent=3.0)
        assert radio.rssi(2.0) == pytest.approx(1 / 8)

    def test_zero_distance_infinite(self):
        assert RadioModel().rssi(0.0) == float("inf")

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            RadioModel().rssi(-1.0)

    def test_irregularity_jitters(self):
        radio = RadioModel(irregularity=0.3)
        rng = random.Random(1)
        values = {radio.rssi(5.0, rng) for _ in range(20)}
        assert len(values) > 1

    def test_no_rng_means_nominal(self):
        radio = RadioModel(irregularity=0.3)
        assert radio.rssi(5.0) == pytest.approx(5.0**-2)

    def test_irregularity_validation(self):
        with pytest.raises(ValueError):
            RadioModel(irregularity=1.0)


class TestThreshold:
    def test_threshold_matches_nominal_rssi_at_range(self):
        radio = RadioModel()
        assert radio.threshold_for_range(3.0) == pytest.approx(radio.rssi(3.0))

    def test_signal_from_inside_range_passes_threshold(self):
        radio = RadioModel()
        threshold = radio.threshold_for_range(3.0)
        assert radio.rssi(2.5) >= threshold
        assert radio.rssi(3.5) < threshold

    def test_range_beyond_max_rejected(self):
        with pytest.raises(ValueError):
            RadioModel(max_range_m=10.0).threshold_for_range(11.0)

    def test_nonpositive_range_rejected(self):
        with pytest.raises(ValueError):
            RadioModel().threshold_for_range(0.0)


class TestTxRangeValidation:
    def test_valid_range_passes(self):
        assert RadioModel().validate_tx_range(3.0) == 3.0

    def test_max_range_allowed(self):
        assert RadioModel(max_range_m=10.0).validate_tx_range(10.0) == 10.0

    def test_exceeding_max_rejected(self):
        with pytest.raises(ValueError):
            RadioModel(max_range_m=10.0).validate_tx_range(10.5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            RadioModel().validate_tx_range(0.0)


class TestConstruction:
    def test_paper_defaults(self):
        radio = RadioModel()
        assert radio.bitrate_bps == 20_000.0
        assert radio.max_range_m == 10.0

    def test_invalid_bitrate(self):
        with pytest.raises(ValueError):
            RadioModel(bitrate_bps=0.0)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            RadioModel(path_loss_exponent=0.0)
