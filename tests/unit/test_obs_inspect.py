"""Unit tests for trace summarization (``repro.obs.inspect``)."""

from repro.obs import events, render_summary, summarize_trace
from repro.obs.events import encode_event
from repro.obs.inspect import summarize_trace_file


def _sample_events():
    return [
        events.state(0.0, 1, "sleeping", "probing"),
        events.probe_tx(0.0, 1, wakeup=0, idx=0),
        events.reply_tx(0.01, 2, lam=0.02, tw=30.0),
        events.state(0.1, 1, "probing", "sleeping", cause="reply_heard", rate_hz=1.0),
        events.rate(0.1, 1, old_hz=1.0, new_hz=0.5, lam=0.02),
        events.lambda_hat(5.0, 2, lam=0.03, window=1),
        events.collision(6.0, 2, frames=2),
        events.drop(6.5, 1, "half_duplex"),
        events.energy(7.0, 1, "probe_tx", 0.001),
        events.energy(7.0, 2, "reply_tx", 0.002),
        events.fail(8.0, 2),
        events.state(8.0, 2, "working", "dead", cause="failure"),
    ]


class TestSummarize:
    def test_counts_and_span(self):
        summary = summarize_trace(_sample_events())
        assert summary.n_events == 12
        assert summary.t_min == 0.0
        assert summary.t_max == 8.0
        assert summary.by_type["state"] == 3
        assert summary.by_type["energy"] == 2

    def test_transitions_per_node(self):
        summary = summarize_trace(_sample_events())
        assert [hop[1:3] for hop in summary.transitions[1]] == [
            ("sleeping", "probing"),
            ("probing", "sleeping"),
        ]
        assert summary.transitions[1][1][3] == "reply_heard"

    def test_series_and_aggregates(self):
        summary = summarize_trace(_sample_events())
        assert summary.lambda_series == [(5.0, 0.03)]
        assert summary.rate_series == [(0.1, 0.5)]
        assert summary.energy_by_cat == {"probe_tx": 0.001, "reply_tx": 0.002}
        assert summary.collisions == 2
        assert summary.drops == {"half_duplex": 1}
        assert summary.failures == [(8.0, 2)]

    def test_top_talkers(self):
        summary = summarize_trace(_sample_events())
        talkers = summary.top_talkers()
        assert talkers[0] in [(1, 1, 0), (2, 0, 1)]
        assert len(talkers) == 2

    def test_mode_durations(self):
        summary = summarize_trace(_sample_events())
        durations = summary.mode_durations(1)
        # sleeping [0, 0] + probing [0, 0.1] + sleeping [0.1, 8.0 (t_max)]
        assert durations["probing"] == 0.1
        assert durations["sleeping"] == 7.9

    def test_nodes_sorts_sensors_before_anchors(self):
        trace = [
            events.state(0.0, "anchor0", "sleeping", "probing"),
            events.state(0.0, 5, "sleeping", "probing"),
        ]
        assert summarize_trace(trace).nodes == [5, "anchor0"]

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.n_events == 0
        assert summary.t_min is None
        assert "(empty)" in render_summary(summary)


class TestRender:
    def test_render_mentions_everything(self):
        text = render_summary(summarize_trace(_sample_events()))
        assert "12 events" in text
        assert "top talkers" in text
        assert "lambda-hat" in text
        assert "energy by category" in text
        assert "per-node state timelines" in text
        assert "failures injected: 1" in text

    def test_render_caps_node_list(self):
        trace = [events.state(0.0, n, "sleeping", "probing") for n in range(30)]
        text = render_summary(summarize_trace(trace), max_nodes=10)
        assert "10 of 30 nodes" in text
        assert "20 more nodes elided" in text


class TestFileRoundTrip:
    def test_summarize_trace_file(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        path.write_text(
            "\n".join(encode_event(e) for e in _sample_events()) + "\n"
        )
        summary = summarize_trace_file(path)
        assert summary.n_events == 12
        assert summary.failures == [(8.0, 2)]
