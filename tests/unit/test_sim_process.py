"""Unit tests for repro.sim.process (Timer, PeriodicProcess, start_process)."""

import pytest

from repro.sim import PeriodicProcess, Timer, start_process


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_passes_args(self, sim):
        fired = []
        timer = Timer(sim, lambda a, b: fired.append((a, b)))
        timer.start(1.0, "x", 2)
        sim.run()
        assert fired == [("x", 2)]

    def test_restart_cancels_previous(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5.0)
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, fired.append)
        timer.start(1.0, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_armed_and_expiry(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        assert timer.expiry is None
        timer.start(4.0)
        assert timer.armed
        assert timer.expiry == 4.0
        sim.run()
        assert not timer.armed

    def test_rearm_after_fire(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]


class TestPeriodicProcess:
    def test_repeats_at_interval(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 2.0, lambda: ticks.append(sim.now))
        process.start()
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_custom_first_delay(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 5.0, lambda: ticks.append(sim.now))
        process.start(first_delay=1.0)
        sim.run(until=11.0)
        assert ticks == [1.0, 6.0, 11.0]

    def test_stop_ends_repetition(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        process.start()
        sim.schedule(2.5, process.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_within_callback(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                process.stop()

        process = PeriodicProcess(sim, 1.0, tick)
        process.start()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_double_start_is_noop(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        process.start()
        process.start()
        sim.run(until=2.0)
        assert ticks == [1.0, 2.0]

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)

    def test_running_property(self, sim):
        process = PeriodicProcess(sim, 1.0, lambda: None)
        assert not process.running
        process.start()
        assert process.running
        process.stop()
        assert not process.running


class TestStartProcess:
    def test_sequential_delays(self, sim):
        log = []

        def script():
            log.append(("a", sim.now))
            yield 2.0
            log.append(("b", sim.now))
            yield 3.0
            log.append(("c", sim.now))

        start_process(sim, script())
        sim.run()
        assert log == [("a", 0.0), ("b", 2.0), ("c", 5.0)]

    def test_empty_generator_completes(self, sim):
        def script():
            return
            yield  # pragma: no cover

        start_process(sim, script())
        sim.run()
        assert sim.now == 0.0

    def test_two_processes_interleave(self, sim):
        log = []

        def proc(name, delay):
            for _ in range(2):
                yield delay
                log.append((name, sim.now))

        start_process(sim, proc("fast", 1.0))
        start_process(sim, proc("slow", 1.5))
        sim.run()
        assert log == [("fast", 1.0), ("slow", 1.5), ("fast", 2.0), ("slow", 3.0)]
