"""Unit tests for the experiments harness (metrics, scenario, tables, paper)."""

import pytest

from repro.experiments import (
    DEPLOYMENT_NUMBERS,
    FAILURE_RATES,
    MeanStd,
    RunResult,
    Scenario,
    aggregate_lifetimes,
    aggregate_values,
    deployment_scenarios,
    expand_seeds,
    failure_scenarios,
    fig9_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
    fig14_rows,
    fmt,
    format_series,
    format_table,
    group_by,
    table1_rows,
)


def result(n=160, seed=0, rate=10.66, **kwargs):
    defaults = dict(
        num_nodes=n,
        seed=seed,
        failure_rate_per_5000s=rate,
        end_time=10000.0,
        coverage_lifetimes={3: 5000.0, 4: 4800.0, 5: 4500.0},
        delivery_lifetime=5500.0,
        total_wakeups=1000,
        energy_total_j=8000.0,
        energy_overhead_j=12.0,
        failures_injected=20,
    )
    defaults.update(kwargs)
    return RunResult(**defaults)


class TestRunResult:
    def test_overhead_ratio(self):
        assert result().energy_overhead_ratio == pytest.approx(12.0 / 8000.0)

    def test_overhead_ratio_zero_total(self):
        assert result(energy_total_j=0.0).energy_overhead_ratio == 0.0

    def test_failure_fraction(self):
        assert result().failure_fraction == pytest.approx(20 / 160)


class TestAggregation:
    def test_mean_std(self):
        stats = aggregate_values([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx((2 / 3) ** 0.5)
        assert stats.n == 3

    def test_missing_values_skipped(self):
        stats = aggregate_values([1.0, None, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.n == 2

    def test_all_missing(self):
        assert aggregate_values([None, None]) is None

    def test_aggregate_lifetimes(self):
        runs = [result(coverage_lifetimes={4: 100.0}),
                result(coverage_lifetimes={4: 200.0})]
        assert aggregate_lifetimes(runs, 4).mean == pytest.approx(150.0)

    def test_meanstd_format(self):
        text = f"{MeanStd(10.0, 1.0, 3):.1f}"
        assert "10.0" in text and "1.0" in text


class TestScenario:
    def test_paper_defaults(self):
        scenario = Scenario()
        assert scenario.field_size == (50.0, 50.0)
        assert scenario.failure_per_5000s == pytest.approx(10.66)
        assert scenario.report_interval_s == 10.0
        assert scenario.lifetime_threshold == 0.90

    def test_source_sink_corners(self):
        scenario = Scenario()
        assert scenario.source == (0.0, 0.0)
        assert scenario.sink == (50.0, 50.0)

    def test_with_copy(self):
        scenario = Scenario().with_(num_nodes=480)
        assert scenario.num_nodes == 480

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(num_nodes=0)
        with pytest.raises(ValueError):
            Scenario(deployment="teleport")
        with pytest.raises(ValueError):
            Scenario(failure_per_5000s=-1.0)
        with pytest.raises(ValueError):
            Scenario(max_time_s=0.0)


class TestSweepHelpers:
    def test_expand_seeds(self):
        scenarios = expand_seeds([Scenario(num_nodes=160)], [0, 1, 2])
        assert [s.seed for s in scenarios] == [0, 1, 2]

    def test_group_by(self):
        results = [result(n=160), result(n=320), result(n=160, seed=1)]
        groups = group_by(results, lambda r: r.num_nodes)
        assert len(groups[160]) == 2
        assert len(groups[320]) == 1


class TestPaperDefinitions:
    def test_deployment_numbers(self):
        assert DEPLOYMENT_NUMBERS == (160, 320, 480, 640, 800)

    def test_failure_rates_span(self):
        assert FAILURE_RATES[0] == pytest.approx(5.33)
        assert FAILURE_RATES[-1] == pytest.approx(48.0)
        assert len(FAILURE_RATES) == 9

    def test_deployment_scenarios(self):
        scenarios = deployment_scenarios([0, 1])
        assert len(scenarios) == 10
        assert {s.num_nodes for s in scenarios} == set(DEPLOYMENT_NUMBERS)
        assert all(s.failure_per_5000s == pytest.approx(10.66) for s in scenarios)

    def test_failure_scenarios(self):
        scenarios = failure_scenarios([0])
        assert len(scenarios) == 9
        assert all(s.num_nodes == 480 for s in scenarios)


class TestRowBuilders:
    def groups(self):
        return {
            160: [result(n=160), result(n=160, seed=1,
                                        coverage_lifetimes={3: 5200, 4: 5000, 5: 4700},
                                        delivery_lifetime=5700.0,
                                        total_wakeups=1200)],
            320: [result(n=320, coverage_lifetimes={3: 10000, 4: 9500, 5: 9000},
                         delivery_lifetime=11000.0, total_wakeups=5000)],
        }

    def test_fig9(self):
        rows = fig9_rows(self.groups())
        assert rows[0][0] == 160
        assert rows[0][2] == pytest.approx(4900.0)  # mean of 4800, 5000
        assert rows[1][1] == pytest.approx(10000.0)

    def test_fig10(self):
        rows = fig10_rows(self.groups())
        assert rows[0][1] == pytest.approx(5600.0)

    def test_fig11(self):
        rows = fig11_rows(self.groups())
        assert rows[0][1] == pytest.approx(1100.0)

    def test_table1(self):
        rows = table1_rows(self.groups())
        assert rows[0][1] == pytest.approx(12.0)
        assert rows[0][2] == pytest.approx(100 * 12.0 / 8000.0)

    def test_fig12_and_fig14(self):
        groups = {5.33: [result(rate=5.33)], 48.0: [result(rate=48.0)]}
        rows12 = fig12_rows(groups)
        assert rows12[0][0] == 5.33
        rows14 = fig14_rows(groups)
        assert rows14[-1][0] == 48.0
        assert rows14[0][1] == pytest.approx(1000.0)


class TestRecoveryMetrics:
    def test_recovery_after_faults(self):
        from repro.experiments import recovery_after_faults

        samples = [(0.0, 0.95), (10.0, 0.95), (20.0, 0.70), (30.0, 0.80),
                   (40.0, 0.92), (50.0, 0.95)]
        (record,) = recovery_after_faults(samples, [15.0], threshold=0.90)
        assert record.fault_time_s == 15.0
        assert record.dip_depth == pytest.approx(0.20)
        assert record.recovery_s == pytest.approx(25.0)

    def test_unrecovered_fault(self):
        from repro.experiments import recovery_after_faults

        samples = [(10.0, 0.5), (20.0, 0.4)]
        (record,) = recovery_after_faults(samples, [5.0], threshold=0.90)
        assert record.recovery_s is None
        assert record.dip_depth == pytest.approx(0.50)

    def test_extras_summary(self):
        from repro.experiments import recovery_after_faults, recovery_extras

        samples = [(10.0, 0.5), (20.0, 0.95)]
        extras = recovery_extras(
            recovery_after_faults(samples, [5.0, 15.0], threshold=0.90)
        )
        assert extras["recovery_mean_s"] == pytest.approx(10.0)
        assert extras["faults_unrecovered"] == 0.0
        assert recovery_extras([]) == {}


class TestRobustnessDefinitions:
    def test_regimes_cover_every_model(self):
        from repro.experiments import ROBUSTNESS_REGIMES
        from repro.faults import FAULT_KINDS

        kinds = set()
        for _name, plan in ROBUSTNESS_REGIMES:
            kinds.update(plan.kinds())
        assert kinds == set(FAULT_KINDS)
        assert ROBUSTNESS_REGIMES[0][1].is_empty  # baseline row anchors

    def test_scenarios_regime_major_order(self):
        from repro.experiments import ROBUSTNESS_REGIMES, robustness_scenarios

        seeds = [0, 1]
        scenarios = robustness_scenarios(seeds)
        assert len(scenarios) == len(ROBUSTNESS_REGIMES) * len(seeds)
        for index, (_name, plan) in enumerate(ROBUSTNESS_REGIMES):
            for offset, seed in enumerate(seeds):
                scenario = scenarios[index * len(seeds) + offset]
                assert scenario.fault_plan == plan
                assert scenario.seed == seed

    def test_rows_report_failures_as_counts(self):
        from repro.experiments import (
            ROBUSTNESS_REGIMES,
            RunError,
            robustness_rows,
        )

        ok = result(extras={"coverage_dip_max": 0.2, "recovery_mean_s": 40.0})
        error = RunError(
            scenario=Scenario(num_nodes=10),
            error_type="ValueError",
            error_message="boom",
            traceback_text="",
        )
        groups = {name: [ok, error] for name, _plan in ROBUSTNESS_REGIMES}
        rows = robustness_rows(groups)
        assert len(rows) == len(ROBUSTNESS_REGIMES)
        assert all(row[1] == "1/2" for row in rows)
        assert rows[0][3] == pytest.approx(0.2)


class TestTables:
    def test_fmt_none(self):
        assert fmt(None) == "-"

    def test_fmt_int(self):
        assert fmt(160) == "160"

    def test_fmt_float_spec(self):
        assert fmt(3.14159, ".2f") == "3.14"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("x", "y", [[1, 2.0]])
        assert "x" in text and "2.0" in text
