"""Unit tests for the energy substrate (model, battery, accounting)."""

import random

import pytest

from repro.energy import (
    MOTE_PROFILE,
    NodeBattery,
    PowerProfile,
    RadioMode,
    draw_initial_energy,
    summarize_energy,
)


class TestPowerProfile:
    def test_paper_constants(self):
        """§5.1: 60 mW tx, 12 mW rx, 12 mW idle, 0.03 mW sleep."""
        assert MOTE_PROFILE.tx_w == pytest.approx(0.060)
        assert MOTE_PROFILE.rx_w == pytest.approx(0.012)
        assert MOTE_PROFILE.idle_w == pytest.approx(0.012)
        assert MOTE_PROFILE.sleep_w == pytest.approx(0.00003)

    def test_paper_idle_lifetime(self):
        """54-60 J at idle draw -> about 4500-5000 s (§5.1)."""
        assert MOTE_PROFILE.idle_lifetime_s(54.0) == pytest.approx(4500.0)
        assert MOTE_PROFILE.idle_lifetime_s(60.0) == pytest.approx(5000.0)

    def test_mode_power_mapping(self):
        assert MOTE_PROFILE.mode_power(RadioMode.SLEEP) == MOTE_PROFILE.sleep_w
        assert MOTE_PROFILE.mode_power(RadioMode.IDLE) == MOTE_PROFILE.idle_w
        assert MOTE_PROFILE.mode_power(RadioMode.OFF) == 0.0

    def test_frame_energy(self):
        assert MOTE_PROFILE.frame_energy("tx", 0.010) == pytest.approx(0.0006)
        assert MOTE_PROFILE.frame_energy("rx", 0.010) == pytest.approx(0.00012)

    def test_frame_energy_validation(self):
        with pytest.raises(ValueError):
            MOTE_PROFILE.frame_energy("sideways", 0.01)
        with pytest.raises(ValueError):
            MOTE_PROFILE.frame_energy("tx", -0.01)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            PowerProfile(tx_w=-1.0)
        with pytest.raises(ValueError):
            PowerProfile(initial_energy_min_j=60.0, initial_energy_max_j=54.0)

    def test_draw_initial_energy_in_range(self):
        rng = random.Random(1)
        for _ in range(200):
            energy = draw_initial_energy(MOTE_PROFILE, rng)
            assert 54.0 <= energy <= 60.0


class TestNodeBattery:
    def test_initial_state(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        assert battery.remaining(0.0) == 57.0
        assert battery.mode is RadioMode.SLEEP

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            NodeBattery(MOTE_PROFILE, 0.0)

    def test_sleep_draw_tiny(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        assert battery.remaining(1000.0) == pytest.approx(57.0 - 0.00003 * 1000)

    def test_idle_draw(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        battery.set_mode(0.0, RadioMode.IDLE)
        assert battery.remaining(100.0) == pytest.approx(57.0 - 1.2)

    def test_mode_switch_integrates_piecewise(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        battery.set_mode(0.0, RadioMode.IDLE)
        battery.set_mode(100.0, RadioMode.SLEEP)
        expected = 57.0 - 0.012 * 100 - 0.00003 * 50
        assert battery.remaining(150.0) == pytest.approx(expected)

    def test_off_mode_no_draw(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        battery.set_mode(0.0, RadioMode.OFF)
        assert battery.remaining(1e9) == pytest.approx(57.0)

    def test_charge_frame_decrements_and_categorizes(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        battery.set_mode(0.0, RadioMode.IDLE)
        battery.charge_frame(10.0, "tx", 0.010, "probe_tx")
        assert battery.by_category["probe_tx"] == pytest.approx(0.0006)
        expected = 57.0 - 0.012 * 10 - 0.0006
        assert battery.remaining(10.0) == pytest.approx(expected)

    def test_attribute_does_not_decrement(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        before = battery.remaining(0.0)
        battery.attribute("probe_idle", 0.5)
        assert battery.remaining(0.0) == before
        assert battery.by_category["probe_idle"] == 0.5

    def test_attribute_negative_rejected(self):
        with pytest.raises(ValueError):
            NodeBattery(MOTE_PROFILE, 57.0).attribute("x", -1.0)

    def test_charge_arbitrary(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        battery.charge(0.0, 2.0, "election")
        assert battery.remaining(0.0) == pytest.approx(55.0)

    def test_never_negative(self):
        battery = NodeBattery(MOTE_PROFILE, 1.0)
        battery.set_mode(0.0, RadioMode.IDLE)
        assert battery.remaining(1e6) == 0.0

    def test_depleted(self):
        battery = NodeBattery(MOTE_PROFILE, 1.2)
        battery.set_mode(0.0, RadioMode.IDLE)
        assert not battery.depleted(50.0)
        assert battery.depleted(101.0)

    def test_time_to_depletion_idle(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        battery.set_mode(0.0, RadioMode.IDLE)
        assert battery.time_to_depletion(0.0) == pytest.approx(57.0 / 0.012)

    def test_time_to_depletion_off_is_none(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        battery.set_mode(0.0, RadioMode.OFF)
        assert battery.time_to_depletion(0.0) is None

    def test_time_backwards_rejected(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        battery.remaining(10.0)
        with pytest.raises(ValueError):
            battery.remaining(5.0)

    def test_consumed_complements_remaining(self):
        battery = NodeBattery(MOTE_PROFILE, 57.0)
        battery.set_mode(0.0, RadioMode.IDLE)
        assert battery.consumed(100.0) == pytest.approx(57.0 - battery.remaining(100.0))


class TestSummarizeEnergy:
    def test_totals_and_overhead(self):
        batteries = []
        for _ in range(3):
            battery = NodeBattery(MOTE_PROFILE, 57.0)
            battery.set_mode(0.0, RadioMode.IDLE)
            battery.charge_frame(10.0, "tx", 0.010, "probe_tx")
            battery.charge(10.0, 0.1, "data_tx")
            batteries.append(battery)
        report = summarize_energy(batteries, now=10.0)
        assert report.total_consumed_j == pytest.approx(3 * (0.12 + 0.0006 + 0.1))
        assert report.overhead_j == pytest.approx(3 * 0.0006)
        assert 0 < report.overhead_ratio < 1

    def test_empty_population(self):
        report = summarize_energy([], now=0.0)
        assert report.total_consumed_j == 0.0
        assert report.overhead_ratio == 0.0

    def test_format_row(self):
        report = summarize_energy([], now=0.0)
        assert "overhead" in report.format_row("x")
