"""The hot-path registry must point at real code.

A refactor that moves or renames a registered function would otherwise
silently stop policing it: the suffix no longer matches, or the qualname no
longer resolves, and peas-lint just skips it.  These tests pin every entry
of both tables to an actual ``def`` in the source tree.
"""

import ast
from pathlib import Path

import pytest

from repro.lint.hotpaths import ENGINE_FAST_LOOPS, HOT_FUNCTIONS

SRC = Path(__file__).resolve().parents[2] / "src"


def _qualnames(path: Path) -> set:
    """All ``name`` / ``Class.method`` qualnames defined in a module."""
    tree = ast.parse(path.read_text())
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(f"{node.name}.{item.name}")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


def _resolve(suffix: str) -> Path:
    matches = [p for p in SRC.rglob("*.py") if p.as_posix().endswith(suffix)]
    assert matches, f"registry suffix {suffix!r} matches no file under src/"
    assert len(matches) == 1, f"registry suffix {suffix!r} is ambiguous: {matches}"
    return matches[0]


@pytest.mark.parametrize(
    "table_name,table",
    [("HOT_FUNCTIONS", HOT_FUNCTIONS), ("ENGINE_FAST_LOOPS", ENGINE_FAST_LOOPS)],
)
def test_every_entry_resolves_to_a_real_def(table_name, table):
    for suffix, qualnames in table.items():
        defined = _qualnames(_resolve(suffix))
        missing = set(qualnames) - defined
        assert not missing, (
            f"{table_name}[{suffix!r}] registers functions that no longer "
            f"exist: {sorted(missing)}"
        )


def test_fast_loops_are_a_subset_of_hot_functions():
    # The fast-loop rules extend the hot-function rules; every fast loop
    # should also get the trace-guard policing.
    for suffix, qualnames in ENGINE_FAST_LOOPS.items():
        assert suffix in HOT_FUNCTIONS, suffix
        assert qualnames <= HOT_FUNCTIONS[suffix], (
            f"fast loops in {suffix!r} missing from HOT_FUNCTIONS: "
            f"{sorted(qualnames - HOT_FUNCTIONS[suffix])}"
        )
