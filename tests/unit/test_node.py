"""Behavioral tests for the PEAS node state machine over a real channel."""

import pytest

from repro.core import DeathCause, NodeMode, PEASConfig, PEASNetwork
from repro.net import Field
from repro.sim import RngRegistry, Simulator


def make(positions, config=None, seed=3, loss_rate=0.0, anchors=(),
         field_size=(30.0, 30.0)):
    sim = Simulator()
    network = PEASNetwork(
        sim,
        Field(*field_size),
        positions,
        config if config is not None else PEASConfig(),
        RngRegistry(seed=seed),
        loss_rate=loss_rate,
        anchors=anchors,
    )
    return sim, network


class TestLoneNode:
    def test_starts_sleeping(self):
        sim, network = make([(5.0, 5.0)])
        network.start()
        assert network.node(0).mode is NodeMode.SLEEPING

    def test_wakes_and_works_with_no_neighbors(self):
        sim, network = make([(5.0, 5.0)])
        network.start()
        sim.run(until=100.0)
        node = network.node(0)
        assert node.mode is NodeMode.WORKING
        assert network.working_ids() == {0}
        assert node.wakeup_count == 1

    def test_probes_sent_per_wakeup(self):
        sim, network = make([(5.0, 5.0)])
        network.start()
        sim.run(until=100.0)
        assert network.counters.get("probes_sent") == 3  # num_probes default

    def test_dies_of_energy_depletion(self):
        sim, network = make([(5.0, 5.0)])
        network.start()
        sim.run(until=6000.0)
        node = network.node(0)
        assert node.mode is NodeMode.DEAD
        assert node.death_cause is DeathCause.ENERGY
        # §5.1: ~4500-5000 s of idle operation (plus a short sleep first).
        assert 4400.0 < node.battery.profile.idle_lifetime_s(node.battery.initial_j) < 5100.0

    def test_all_dead_after_depletion(self):
        sim, network = make([(5.0, 5.0)])
        network.start()
        sim.run(until=6000.0)
        assert network.all_dead


class TestTwoNodesInProbeRange:
    """Two nodes 2 m apart: exactly one should end up working."""

    POSITIONS = [(10.0, 10.0), (12.0, 10.0)]

    def test_exactly_one_works(self):
        sim, network = make(self.POSITIONS)
        network.start()
        sim.run(until=200.0)
        modes = {network.node(i).mode for i in (0, 1)}
        assert NodeMode.WORKING in modes
        assert len(network.working_ids()) == 1

    def test_sleeper_heard_reply(self):
        sim, network = make(self.POSITIONS)
        network.start()
        sim.run(until=200.0)
        assert network.counters.get("sleeps_after_reply") >= 1
        assert network.counters.get("replies_sent") >= 1

    def test_sleeper_replaces_dead_worker(self):
        sim, network = make(self.POSITIONS)
        network.start()
        sim.run(until=200.0)
        (worker_id,) = network.working_ids()
        network.kill(worker_id)
        sim.run(until=sim.now + 3000.0)
        other = 1 - worker_id
        assert network.node(other).mode is NodeMode.WORKING

    def test_killed_node_counts_failure(self):
        sim, network = make(self.POSITIONS)
        network.start()
        sim.run(until=200.0)
        (worker_id,) = network.working_ids()
        network.kill(worker_id)
        assert network.node(worker_id).death_cause is DeathCause.FAILURE
        assert network.counters.get("deaths_failure") == 1


class TestTwoNodesOutOfProbeRange:
    def test_both_work(self):
        sim, network = make([(10.0, 10.0), (14.0, 10.0)])  # 4 m > Rp = 3 m
        network.start()
        sim.run(until=200.0)
        assert len(network.working_ids()) == 2


class TestRateAdaptation:
    def test_sleeper_rate_changes_after_feedback(self):
        """With one worker and several sleepers, feedback eventually moves
        the sleepers' rates off the initial lambda_0."""
        positions = [(10.0, 10.0), (11.0, 10.0), (10.0, 11.0), (11.0, 11.0)]
        sim, network = make(positions)
        network.start()
        sim.run(until=3000.0)
        sleeping = [
            network.node(i)
            for i in range(4)
            if network.node(i).mode is NodeMode.SLEEPING
        ]
        assert sleeping, "expected at least one sleeping node"
        assert network.counters.get("rate_adaptations") >= 1
        assert any(n.rate_hz != pytest.approx(0.1) for n in sleeping)

    def test_rates_respect_clamps(self):
        positions = [(10.0 + dx, 10.0 + dy) for dx in range(3) for dy in range(3)]
        config = PEASConfig()
        sim, network = make(positions, config=config)
        network.start()
        sim.run(until=4000.0)
        for node in network.nodes.values():
            if node.alive and not node.anchor:
                assert config.min_rate_hz <= node.rate_hz <= config.max_rate_hz


class TestOverlapResolution:
    # Two future workers 2 m apart plus several probers around them that
    # keep the control plane active (a saturated all-working cluster never
    # probes, so overlaps could never be discovered).
    POSITIONS = [
        (10.0, 10.0), (12.0, 10.0),
        (11.0, 10.0), (10.5, 10.8), (11.5, 9.2), (10.2, 9.5),
    ]

    @staticmethod
    def _force_working(sim, node):
        from repro.energy import RadioMode

        node._sleep_timer.cancel()
        node.mode = NodeMode.PROBING
        node.battery.set_mode(sim.now, RadioMode.IDLE)
        node._start_working()

    def test_younger_worker_yields(self):
        """Force two overlapping workers; when a nearby node probes, both
        reply, each hears the other, and the younger goes back to sleep."""
        config = PEASConfig(overlap_resolution=True)
        sim, network = make(self.POSITIONS, config=config)
        network.start()
        node0, node1 = network.node(0), network.node(1)
        self._force_working(sim, node0)
        sim.run(until=5.0)
        self._force_working(sim, node1)
        sim.run(until=600.0)
        assert network.counters.get("overlap_turnoffs") >= 1
        # The older worker (node0) must still be working.
        assert node0.mode is NodeMode.WORKING
        assert node1.mode is not NodeMode.WORKING

    def test_disabled_overlap_keeps_both(self):
        config = PEASConfig(overlap_resolution=False)
        sim, network = make(self.POSITIONS, config=config)
        network.start()
        self._force_working(sim, network.node(0))
        sim.run(until=5.0)
        self._force_working(sim, network.node(1))
        sim.run(until=600.0)
        assert network.counters.get("overlap_turnoffs") == 0
        assert network.node(0).mode is NodeMode.WORKING
        assert network.node(1).mode is NodeMode.WORKING


class TestAnchors:
    def test_anchor_starts_working_immediately(self):
        sim, network = make([(5.0, 5.0)], anchors=[(20.0, 20.0)])
        network.start()
        assert "anchor0" in network.working_ids()

    def test_anchor_suppresses_nearby_sleeper(self):
        sim, network = make([(20.5, 20.0)], anchors=[(20.0, 20.0)])
        network.start()
        sim.run(until=500.0)
        assert network.node(0).mode is NodeMode.SLEEPING

    def test_anchor_never_dies(self):
        sim, network = make([(5.0, 5.0)], anchors=[(20.0, 20.0)])
        network.start()
        sim.run(until=10000.0)
        assert network.node("anchor0").mode is NodeMode.WORKING

    def test_anchor_not_failure_target(self):
        sim, network = make([(5.0, 5.0)], anchors=[(20.0, 20.0)])
        network.start()
        with pytest.raises(ValueError):
            network.node("anchor0").fail()

    def test_anchor_excluded_from_population_and_energy(self):
        sim, network = make([(5.0, 5.0)], anchors=[(20.0, 20.0)])
        network.start()
        assert network.population == 1
        sim.run(until=1000.0)
        report = network.energy_report()
        # Only the sensor's consumption is counted (anchor idles at 12 mW
        # and would otherwise dominate).
        assert report.total_consumed_j < 60.0

    def test_all_dead_ignores_anchors(self):
        sim, network = make([(5.0, 5.0)], anchors=[(20.0, 20.0)])
        network.start()
        sim.run(until=8000.0)
        assert network.all_dead


class TestWakeupBookkeeping:
    def test_wakeup_counter_matches_nodes(self):
        sim, network = make([(10.0, 10.0), (11.0, 10.0), (20.0, 20.0)])
        network.start()
        sim.run(until=1000.0)
        total = sum(
            network.node(i).wakeup_count for i in range(3)
        )
        assert network.counters.get("wakeups") == total

    def test_dead_node_stops_waking(self):
        sim, network = make([(10.0, 10.0)])
        network.start()
        sim.run(until=100.0)
        network.kill(0)
        wakeups = network.counters.get("wakeups")
        sim.run(until=5000.0)
        assert network.counters.get("wakeups") == wakeups


class TestReplyDiscipline:
    def test_lone_worker_reply_always_heard(self):
        """With one worker and a lossless channel, the reply-phase design
        guarantees the prober hears a REPLY — no redundant workers."""
        redundant = 0
        for seed in range(15):
            sim, network = make([(10.0, 10.0), (12.0, 10.0)], seed=seed + 100)
            network.start()
            # Let the first node establish itself before the other wakes.
            sim.run(until=600.0)
            if len(network.working_ids()) != 1:
                redundant += 1
        assert redundant <= 2  # only near-simultaneous boot races remain

    def test_replies_suppressed_counter_exists(self):
        """Crowded neighborhoods may suppress REPLYs that can no longer fit
        the prober's window; the counter tracks it."""
        positions = [(10.0 + dx * 0.8, 10.0 + dy * 0.8)
                     for dx in range(5) for dy in range(5)]
        sim, network = make(positions, field_size=(30.0, 30.0))
        network.start()
        sim.run(until=2000.0)
        # No assertion on the value (scenario-dependent); the run must simply
        # not crash and keep the invariant replies <= probes * workers.
        assert network.counters.get("replies_sent") >= 0


class TestFixedPowerNode:
    def test_fixed_power_nodes_filter_far_workers(self):
        """In fixed-power mode a worker 5 m away (inside R_t, outside R_p)
        must not stop the prober from working."""
        config = PEASConfig(fixed_power=True)
        sim, network = make([(10.0, 10.0), (15.0, 10.0)], config=config)
        network.start()
        sim.run(until=400.0)
        assert len(network.working_ids()) == 2

    def test_fixed_power_nodes_respect_close_workers(self):
        config = PEASConfig(fixed_power=True)
        sim, network = make([(10.0, 10.0), (12.0, 10.0)], config=config)
        network.start()
        sim.run(until=400.0)
        assert len(network.working_ids()) == 1


class TestEnergyDepletionMidProbe:
    def test_node_with_tiny_battery_dies_cleanly(self):
        from repro.energy import NodeBattery, MOTE_PROFILE

        sim, network = make([(10.0, 10.0)])
        node = network.node(0)
        # Replace the battery with an almost-empty one.
        node.battery = NodeBattery(MOTE_PROFILE, 0.01, sim.now)
        network.start()
        sim.run(until=2000.0)
        assert node.mode is NodeMode.DEAD
        assert network.all_dead
