"""Good/bad fixtures for every peas-lint rule.

Each rule gets at least one snippet that must fire and one that must stay
silent, exercised through the real ``lint_file`` entry point so path scoping
(``applies_to``) is covered too.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import all_checkers, lint_file, lint_paths
from repro.lint.cli import run_lint
from repro.lint.framework import LintError


def lint_snippet(tmp_path, rel, source, select=None):
    """Write ``source`` at ``tmp_path/rel`` and lint it with the full rules."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(path, all_checkers(select=select), root=tmp_path)


def rules_of(violations):
    return [v.rule for v in violations]


# --------------------------------------------------------------------- D101
def test_d101_flags_module_level_random(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/sim/mod.py",
        """
        import random
        x = random.random()
        """,
    )
    assert rules_of(found) == ["D101"]
    assert "RngRegistry" in found[0].message


def test_d101_flags_from_import_and_aliases(tmp_path):
    found = lint_snippet(
        tmp_path,
        "anywhere.py",
        """
        import random as rnd
        from random import choice as pick

        def f(items):
            rnd.shuffle(items)
            return pick(items)
        """,
    )
    assert rules_of(found) == ["D101", "D101"]


def test_d101_allows_instance_draws(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/sim/mod.py",
        """
        import random

        def f(rng: random.Random):
            return rng.random() + rng.uniform(0, 1)
        """,
    )
    assert found == []


# --------------------------------------------------------------------- D102
def test_d102_flags_runtime_seed(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/tool.py",
        """
        import random

        def f(seed):
            return random.Random(seed)
        """,
    )
    assert rules_of(found) == ["D102"]


def test_d102_flags_unseeded_constructor(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/tool.py",
        """
        from random import Random
        r = Random()
        """,
    )
    assert rules_of(found) == ["D102"]
    assert "OS entropy" in found[0].message


def test_d102_allows_constant_and_derived_seeds(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/tool.py",
        """
        import random
        from repro.sim import derive_seed

        fallback = random.Random(0)

        def f(seed):
            return random.Random(derive_seed(seed, "stream"))
        """,
    )
    assert found == []


def test_d102_exempts_the_registry_itself(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/sim/rng.py",
        """
        import random

        def stream(seed):
            return random.Random(seed)
        """,
    )
    assert found == []


# --------------------------------------------------------------------- D103
def test_d103_flags_wallclock_in_sim_scope(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/net/mod.py",
        """
        import time
        from datetime import datetime

        def f():
            return time.time(), datetime.now()
        """,
    )
    assert sorted(rules_of(found)) == ["D103", "D103"]


def test_d103_flags_from_imported_clock(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/core/mod.py",
        """
        from time import perf_counter

        def f():
            return perf_counter()
        """,
    )
    assert rules_of(found) == ["D103"]


def test_d103_ignores_references_and_out_of_scope_code(tmp_path):
    # A bare reference (e.g. a default clock argument) is not a read, and
    # repro.perf measures wall time on purpose.
    assert lint_snippet(
        tmp_path,
        "repro/sim/mod.py",
        """
        import time

        def f(clock=time.perf_counter):
            return clock
        """,
    ) == []
    assert lint_snippet(
        tmp_path,
        "repro/perf/mod.py",
        """
        import time
        t = time.perf_counter()
        """,
    ) == []


# --------------------------------------------------------------------- D104
def test_d104_flags_set_iteration(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/routing/mod.py",
        """
        def f(items):
            for x in set(items):
                yield x
            return [y for y in {1, 2, 3}]
        """,
    )
    assert rules_of(found) == ["D104", "D104"]


def test_d104_allows_sorted_sets_and_non_sim_scope(tmp_path):
    assert lint_snippet(
        tmp_path,
        "repro/coverage/mod.py",
        """
        def f(items):
            for x in sorted(set(items)):
                yield x
        """,
    ) == []
    assert lint_snippet(
        tmp_path,
        "repro/obs/mod.py",
        """
        def f(items):
            for x in set(items):
                yield x
        """,
    ) == []


# --------------------------------------------------------------------- H201
def test_h201_flags_unguarded_emit_in_marked_hot_function(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/anything.py",
        """
        class C:
            def hot(self):  # peas-lint: hot
                self.tracer.emit({"ev": "x"})
        """,
    )
    assert rules_of(found) == ["H201"]


def test_h201_accepts_is_not_none_guards(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/anything.py",
        """
        class C:
            def hot(self):  # peas-lint: hot
                tracer = self.tracer
                if tracer is not None:
                    tracer.emit({"ev": "x"})
                if self.ok is not None and self.tracer is not None:
                    self.tracer.emit({"ev": "y"})
        """,
    )
    assert found == []


def test_h201_accepts_is_none_early_exit(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/anything.py",
        """
        class C:
            def hot(self):  # peas-lint: hot
                if self.tracer is None:
                    return
                self.tracer.emit({"ev": "x"})
        """,
    )
    assert found == []


def test_h201_applies_to_registered_hot_functions(tmp_path):
    # The registry keys on path suffixes: an unguarded emit inside a function
    # named like a registered hot path fires without any marker comment.
    found = lint_snippet(
        tmp_path,
        "repro/net/channel.py",
        """
        class BroadcastChannel:
            def transmit(self, packet):
                self.tracer.emit({"ev": "drop"})

            def unregistered(self):
                self.tracer.emit({"ev": "fine"})
        """,
    )
    assert rules_of(found) == ["H201"]
    assert found[0].source_line == 'self.tracer.emit({"ev": "drop"})'


# --------------------------------------------------------------------- H202
def test_h202_flags_alloc_in_fast_loop(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/anything.py",
        """
        def loop(events):  # peas-lint: fast-loop
            for event in events:
                label = f"ev:{event}"
                meta = {"label": label}
        """,
    )
    assert sorted(rules_of(found)) == ["H202", "H202"]


def test_h202_exempts_error_paths_and_memo_misses(tmp_path):
    found = lint_snippet(
        tmp_path,
        "repro/anything.py",
        """
        def loop(events, memo, limit):  # peas-lint: fast-loop
            for event in events:
                if len(memo) > limit:
                    raise RuntimeError(f"exceeded {limit}")
                assert event >= 0, f"bad event {event}"
                label = memo.get(event)
                if label is None:
                    label = memo[event] = f"ev:{event}"
        """,
    )
    assert found == []


# --------------------------------------------------------------------- S301
_SCHEMA_OK = """
_REQUIRED = {
    ev.PROBE: (("rng", ("float",)),),
    ev.DROP: (("reason", ("str",)),),
}
"""

_EVENTS_OK = """
PROBE = "probe"
DROP = "drop"

def probe(t, node, rng):
    return {"t": t, "ev": PROBE, "node": node, "rng": rng}

def drop(t, node, reason, detail=None):
    event = {"t": t, "ev": DROP, "node": node, "reason": reason}
    if detail is not None:
        event["detail"] = detail
    return event
"""


def lint_obs_pair(tmp_path, events_src, schema_src):
    obs = tmp_path / "repro" / "obs"
    obs.mkdir(parents=True, exist_ok=True)
    (obs / "schema.py").write_text(textwrap.dedent(schema_src), encoding="utf-8")
    events = obs / "events.py"
    events.write_text(textwrap.dedent(events_src), encoding="utf-8")
    return lint_file(events, all_checkers(select=["S301"]), root=tmp_path)


def test_s301_accepts_matching_constructors(tmp_path):
    assert lint_obs_pair(tmp_path, _EVENTS_OK, _SCHEMA_OK) == []


def test_s301_flags_field_drift(tmp_path):
    drifted = _EVENTS_OK.replace('"rng": rng}', '"rng": rng, "extra": 1}')
    found = lint_obs_pair(tmp_path, drifted, _SCHEMA_OK)
    assert rules_of(found) == ["S301"]
    assert "extra" in found[0].message


def test_s301_flags_missing_constructor_and_undeclared_type(tmp_path):
    schema = _SCHEMA_OK.replace(
        "}\n", '    ev.WAKE: (("reason", ("str",)),),\n}\n'
    )
    # WAKE has a constant but no constructor; rogue() emits an undeclared type.
    events = _EVENTS_OK + textwrap.dedent(
        """
        WAKE = "wake"
        ROGUE = "rogue"

        def rogue(t, node):
            return {"t": t, "ev": ROGUE, "node": node}
        """
    )
    found = lint_obs_pair(tmp_path, events, schema)
    messages = " | ".join(v.message for v in found)
    assert rules_of(found) == ["S301", "S301"]
    assert "no constructor" in messages
    assert "does not declare" in messages


def test_s301_flags_conditional_key_collision(tmp_path):
    # A *required* field written only conditionally is both an omission and
    # a collision (the field must stay unconditional or become optional).
    events = _EVENTS_OK.replace(
        '"node": node, "reason": reason}', '"node": node}'
    ).replace('event["detail"] = detail', 'event["reason"] = reason')
    found = lint_obs_pair(tmp_path, events, _SCHEMA_OK)
    messages = " | ".join(v.message for v in found)
    assert rules_of(found) == ["S301", "S301"]
    assert "omits required" in messages
    assert "collide" in messages


# --------------------------------------------------------------------- S302
_METRICS_TABLE = """
METRIC_NAMES = {
    "peas_runs_total": ("counter", "Runs completed."),
    "peas_sim_heap_size": ("gauge", "Peak heap size."),
    "peas_run_wall_seconds": ("histogram", "Wall seconds per run."),
}
"""


def lint_metric_calls(tmp_path, rel, source, table=_METRICS_TABLE):
    obs = tmp_path / "repro" / "obs"
    obs.mkdir(parents=True, exist_ok=True)
    (obs / "metrics.py").write_text(textwrap.dedent(table), encoding="utf-8")
    return lint_snippet(tmp_path, rel, source, select=["S302"])


def test_s302_accepts_declared_names(tmp_path):
    assert lint_metric_calls(
        tmp_path,
        "repro/experiments/mod.py",
        """
        def f(registry, status):
            registry.counter("peas_runs_total", status=status).inc()
            registry.gauge("peas_sim_heap_size").set_max(4)
            registry.histogram("peas_run_wall_seconds").observe(0.5)
        """,
    ) == []


def test_s302_flags_undeclared_name_and_kind_mismatch(tmp_path):
    found = lint_metric_calls(
        tmp_path,
        "repro/experiments/mod.py",
        """
        def f(registry):
            registry.counter("peas_bogus_total").inc()
            registry.gauge("peas_runs_total").set(1)
        """,
    )
    messages = " | ".join(v.message for v in found)
    assert rules_of(found) == ["S302", "S302"]
    assert "not declared" in messages
    assert "declared as a counter" in messages


def test_s302_checks_the_catalogue_module_itself(tmp_path):
    # Call sites inside metrics.py are checked against its own table.
    found = lint_metric_calls(
        tmp_path,
        "repro/obs/metrics.py",
        _METRICS_TABLE
        + 'def f(registry):\n'
          '    registry.histogram("peas_retired_seconds").observe(1.0)\n',
    )
    assert rules_of(found) == ["S302"]


def test_s302_ignores_non_peas_names_and_foreign_trees(tmp_path):
    # Other objects may have counter()/gauge() methods; only literal
    # peas_* names are in scope.  Trees without repro/obs/metrics.py are
    # skipped entirely.
    assert lint_metric_calls(
        tmp_path,
        "repro/experiments/mod.py",
        """
        def f(widget):
            widget.counter("clicks").inc()
        """,
    ) == []
    assert lint_snippet(
        tmp_path / "elsewhere",
        "pkg/mod.py",
        """
        def f(registry):
            registry.counter("peas_bogus_total").inc()
        """,
        select=["S302"],
    ) == []


def test_s302_flags_unparseable_catalogue_once(tmp_path):
    # A computed table is reported from metrics.py itself, not from every
    # call-site file in the tree.
    table = "METRIC_NAMES = dict(build_table())\n"
    found = lint_metric_calls(tmp_path, "repro/obs/metrics.py", table, table=table)
    assert rules_of(found) == ["S302"]
    assert "statically parseable" in found[0].message
    assert lint_metric_calls(
        tmp_path,
        "repro/experiments/mod.py",
        """
        def f(registry):
            registry.counter("peas_runs_total").inc()
        """,
        table=table,
    ) == []


# ---------------------------------------------------------------- framework
def test_syntax_error_is_a_finding(tmp_path):
    found = lint_snippet(tmp_path, "broken.py", "def f(:\n")
    assert rules_of(found) == ["E000"]


def test_select_and_ignore_filter_rules(tmp_path):
    source = """
    import random
    x = random.random()
    """
    assert rules_of(lint_snippet(tmp_path, "m.py", source, select=["D101"])) == ["D101"]
    assert lint_snippet(tmp_path, "m.py", source, select=["hot-path"]) == []
    with pytest.raises(LintError):
        all_checkers(select=["NOPE999"])


def test_lint_paths_sorts_and_recurses(tmp_path):
    for name in ("b.py", "a.py"):
        (tmp_path / name).write_text("import random\nrandom.seed(1)\n")
    found = lint_paths([tmp_path], root=tmp_path)
    assert [v.path for v in found] == ["a.py", "b.py"]


def test_fingerprint_survives_line_moves(tmp_path):
    before = lint_snippet(tmp_path, "m1.py", "import random\nx = random.random()\n")
    after = lint_snippet(
        tmp_path, "m1.py", "import random\n\n\n# shifted\nx = random.random()\n"
    )
    assert before[0].fingerprint() == after[0].fingerprint()
    assert before[0].line != after[0].line


# ---------------------------------------------------------------------- CLI
def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")

    assert run_lint([str(clean)]) == 0
    assert run_lint([str(dirty)]) == 1
    assert run_lint([str(tmp_path / "missing.py")]) == 2
    assert run_lint(["--select", "BOGUS", str(clean)]) == 2
    capsys.readouterr()

    assert run_lint(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule in ("D101", "D102", "D103", "D104", "H201", "H202", "S301", "S302"):
        assert rule in listing


def test_cli_json_report_and_output_file(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    report_path = tmp_path / "report.json"
    code = run_lint(
        ["--format", "json", "--output", str(report_path),
         "--root", str(tmp_path), str(dirty)]
    )
    assert code == 1
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"total": 1, "new": 1, "suppressed": 0}
    assert payload["findings"][0]["rule"] == "D101"
    assert payload["findings"][0]["path"] == "dirty.py"
    assert json.loads(report_path.read_text()) == payload
