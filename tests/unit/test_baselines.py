"""Unit tests for the baseline protocols and gap monitor."""

import random

import pytest

from repro.baselines import (
    AlwaysOnProtocol,
    BaselineNetwork,
    CellGapMonitor,
    DutyCycleProtocol,
    GafLikeProtocol,
    SynchronizedSleepProtocol,
    run_baseline,
)
from repro.experiments import Scenario
from repro.net import Field, uniform_deployment
from repro.sim import RngRegistry, Simulator


def make_baseline_network(num_nodes=20, seed=3, side=20.0):
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    field = Field(side, side)
    positions = uniform_deployment(field, num_nodes, rngs.stream("deployment"))
    network = BaselineNetwork(
        sim, field, positions, battery_rng=rngs.stream("battery")
    )
    return sim, network, rngs


class TestBaselineNetwork:
    def test_all_start_sleeping(self):
        sim, network, _ = make_baseline_network()
        network.start()
        assert network.working_ids() == frozenset()
        assert len(network.alive_ids()) == 20

    def test_kill(self):
        sim, network, _ = make_baseline_network()
        network.start()
        network.kill(0)
        assert 0 not in network.alive_ids()

    def test_observer_stream(self):
        sim, network, _ = make_baseline_network()
        events = []
        network.working_observers.append(
            lambda t, node, started: events.append((node.node_id, started))
        )
        network.start()
        node = network.nodes[0]
        node.set_working(True)
        node.set_working(False)
        assert events == [(0, True), (0, False)]

    def test_set_working_idempotent(self):
        sim, network, _ = make_baseline_network()
        events = []
        network.working_observers.append(
            lambda t, node, started: events.append(started)
        )
        network.start()
        node = network.nodes[0]
        node.set_working(True)
        node.set_working(True)
        assert events == [True]

    def test_death_during_work_emits_stop(self):
        sim, network, _ = make_baseline_network()
        events = []
        network.working_observers.append(
            lambda t, node, started: events.append(started)
        )
        network.start()
        network.nodes[0].set_working(True)
        network.nodes[0].die()
        assert events == [True, False]


class TestAlwaysOn:
    def test_everyone_works_then_dies_in_one_battery(self):
        sim, network, _ = make_baseline_network()
        AlwaysOnProtocol(network).start()
        assert len(network.working_ids()) == 20
        sim.run(until=5200.0)
        assert network.all_dead
        # §5.1 idle lifetime bounds: no node dies before 4500 s.
        assert sim.now >= 4500.0


class TestDutyCycle:
    def test_duty_fraction_of_population_awake(self):
        sim, network, rngs = make_baseline_network(num_nodes=200)
        DutyCycleProtocol(network, duty=0.5, period_s=100.0,
                          rng=rngs.stream("duty")).start()
        sim.run(until=500.0)
        awake = len(network.working_ids())
        assert 60 < awake < 140  # ~100 expected

    def test_full_duty_never_sleeps(self):
        sim, network, rngs = make_baseline_network()
        DutyCycleProtocol(network, duty=1.0, rng=rngs.stream("duty")).start()
        sim.run(until=300.0)
        assert len(network.working_ids()) == 20

    def test_extends_lifetime_vs_always_on(self):
        sim, network, rngs = make_baseline_network()
        DutyCycleProtocol(network, duty=0.5, rng=rngs.stream("duty")).start()
        sim.run(until=8000.0)
        assert not network.all_dead  # half duty ~ doubles lifetime

    def test_validation(self):
        _, network, _ = make_baseline_network()
        with pytest.raises(ValueError):
            DutyCycleProtocol(network, duty=0.0)
        with pytest.raises(ValueError):
            DutyCycleProtocol(network, period_s=0.0)


class TestGafLike:
    def test_one_leader_per_occupied_cell(self):
        sim, network, _ = make_baseline_network(num_nodes=60)
        protocol = GafLikeProtocol(network)
        protocol.start()
        cells_with_nodes = {
            protocol._cell_of(n) for n in network.nodes.values() if n.alive
        }
        assert len(network.working_ids()) == len(cells_with_nodes)

    def test_leader_replaced_after_depletion(self):
        sim, network, _ = make_baseline_network(num_nodes=60)
        protocol = GafLikeProtocol(network)
        protocol.start()
        first_elections = protocol.elections
        sim.run(until=12000.0)
        assert protocol.elections > first_elections

    def test_outlives_always_on(self):
        sim, network, _ = make_baseline_network(num_nodes=60)
        GafLikeProtocol(network).start()
        sim.run(until=6000.0)
        assert not network.all_dead


class TestSynchronized:
    def test_round_based_rotation(self):
        sim, network, _ = make_baseline_network(num_nodes=60)
        protocol = SynchronizedSleepProtocol(network, round_period_s=500.0)
        protocol.start()
        sim.run(until=2100.0)
        assert protocol.rounds == 5  # t=0 plus four boundaries

    def test_failure_gap_lasts_until_round_boundary(self):
        """The Figure 4 failure mode: a dead worker's cell stays dark until
        the next synchronized wakeup."""
        sim, network, _ = make_baseline_network(num_nodes=60)
        protocol = SynchronizedSleepProtocol(network, round_period_s=500.0)
        monitor = CellGapMonitor(sim, network.field, cell_size_m=3.0)
        network.working_observers.append(monitor.on_working_change)
        protocol.start()
        sim.run(until=100.0)
        victim = next(iter(network.working_ids()))
        network.kill(victim)
        sim.run(until=1000.0)
        if monitor.gaps:  # the cell had another member to take over
            assert max(monitor.gaps) <= 500.0 + 1.0
            assert min(monitor.gaps) > 0.0


class TestCellGapMonitor:
    class FakeNode:
        def __init__(self, position):
            self.position = position

    def test_gap_recorded_between_serve_periods(self):
        sim = Simulator()
        monitor = CellGapMonitor(sim, Field(10.0, 10.0), cell_size_m=3.0)
        node = self.FakeNode((5.0, 5.0))
        monitor.on_working_change(0.0, node, True)
        monitor.on_working_change(10.0, node, False)
        monitor.on_working_change(25.0, node, True)
        assert monitor.gap_count() >= 1
        assert monitor.mean_gap() == pytest.approx(15.0)

    def test_unserved_points_do_not_count(self):
        sim = Simulator()
        monitor = CellGapMonitor(sim, Field(10.0, 10.0), cell_size_m=3.0)
        node = self.FakeNode((5.0, 5.0))
        monitor.on_working_change(100.0, node, True)  # first service, no gap
        assert monitor.gap_count() == 0

    def test_terminal_outage_not_counted(self):
        sim = Simulator()
        monitor = CellGapMonitor(sim, Field(10.0, 10.0), cell_size_m=3.0)
        node = self.FakeNode((5.0, 5.0))
        monitor.on_working_change(0.0, node, True)
        monitor.on_working_change(10.0, node, False)
        assert monitor.gap_count() == 0  # never closed

    def test_overlapping_workers_no_gap(self):
        sim = Simulator()
        monitor = CellGapMonitor(sim, Field(10.0, 10.0), cell_size_m=3.0)
        a, b = self.FakeNode((5.0, 5.0)), self.FakeNode((5.05, 5.0))
        monitor.on_working_change(0.0, a, True)
        monitor.on_working_change(0.0, b, True)
        monitor.on_working_change(10.0, a, False)
        monitor.on_working_change(20.0, a, True)
        assert monitor.gap_count() == 0  # b covered throughout

    def test_percentile(self):
        sim = Simulator()
        monitor = CellGapMonitor(sim, Field(10.0, 10.0))
        monitor.gaps.extend([1.0, 2.0, 3.0, 4.0, 100.0])
        assert monitor.percentile_gap(0.5) == 3.0
        assert monitor.percentile_gap(1.0) == 100.0
        with pytest.raises(ValueError):
            monitor.percentile_gap(1.5)

    def test_underflow_detected(self):
        sim = Simulator()
        monitor = CellGapMonitor(sim, Field(10.0, 10.0))
        with pytest.raises(ValueError):
            monitor.on_working_change(0.0, self.FakeNode((5.0, 5.0)), False)


class TestRunBaseline:
    def test_always_on_run_result(self):
        scenario = Scenario(num_nodes=30, field_size=(20.0, 20.0),
                            with_traffic=False, failure_per_5000s=0.0)
        result = run_baseline(scenario, protocol="always_on")
        assert result.coverage_lifetimes[3] is not None
        assert result.end_time <= 5100.0

    def test_gap_extras_present_when_requested(self):
        scenario = Scenario(num_nodes=30, field_size=(20.0, 20.0),
                            with_traffic=False, failure_per_5000s=0.0)
        result = run_baseline(scenario, protocol="synchronized", measure_gaps=True)
        assert "gap_mean_s" in result.extras

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            run_baseline(Scenario(num_nodes=5, with_traffic=False),
                         protocol="teleportation")


class TestSpanLike:
    def test_coordinators_elected(self):
        from repro.baselines import SpanLikeProtocol

        sim, network, rngs = make_baseline_network(num_nodes=80, side=30.0)
        protocol = SpanLikeProtocol(network, rng=rngs.stream("span"))
        protocol.start()
        working = len(network.working_ids())
        assert 0 < working < 80  # some sleep, some coordinate

    def test_coordinators_bridge_neighbors(self):
        """After an election, any two radio neighbors of a sleeping node are
        connected directly or through coordinators (the SPAN guarantee,
        up to the 2-coordinator approximation)."""
        from repro.baselines import SpanLikeProtocol

        sim, network, rngs = make_baseline_network(num_nodes=60, side=25.0)
        protocol = SpanLikeProtocol(network, rng=rngs.stream("span"))
        protocol.start()
        coordinators = set(network.working_ids())
        for node in network.nodes.values():
            if node.node_id in coordinators or not node.alive:
                continue
            assert not protocol._eligible(node, coordinators), (
                f"sleeping node {node.node_id} is still eligible"
            )

    def test_re_election_after_deaths(self):
        from repro.baselines import SpanLikeProtocol

        sim, network, rngs = make_baseline_network(num_nodes=60, side=25.0)
        protocol = SpanLikeProtocol(network, round_period_s=100.0,
                                    rng=rngs.stream("span"))
        protocol.start()
        for victim in list(network.working_ids())[:5]:
            network.kill(victim)
        sim.run(until=150.0)  # next round re-elects
        assert protocol.rounds >= 2
        assert len(network.working_ids()) > 0

    def test_validation(self):
        from repro.baselines import SpanLikeProtocol

        _, network, _ = make_baseline_network()
        with pytest.raises(ValueError):
            SpanLikeProtocol(network, radio_range_m=0.0)


class TestAfecaLike:
    def test_alternates_and_scales_sleep_with_density(self):
        from repro.baselines import AfecaLikeProtocol

        sim, network, rngs = make_baseline_network(num_nodes=100, side=25.0)
        protocol = AfecaLikeProtocol(network, rng=rngs.stream("afeca"))
        protocol.start()
        sim.run(until=500.0)
        # Statistical sleeping: a fraction of the population is awake.
        awake = len(network.working_ids())
        assert 0 < awake < 100

    def test_neighbor_count_drops_with_deaths(self):
        from repro.baselines import AfecaLikeProtocol

        sim, network, rngs = make_baseline_network(num_nodes=30, side=15.0)
        protocol = AfecaLikeProtocol(network, rng=rngs.stream("afeca"))
        node = network.nodes[0]
        before = protocol.alive_neighbor_count(node)
        for other in protocol._neighbors[0][:3]:
            network.kill(other)
        assert protocol.alive_neighbor_count(node) == before - min(3, before)

    def test_outlives_always_on(self):
        from repro.baselines import AfecaLikeProtocol

        sim, network, rngs = make_baseline_network(num_nodes=100, side=20.0)
        AfecaLikeProtocol(network, rng=rngs.stream("afeca")).start()
        sim.run(until=6000.0)
        assert not network.all_dead

    def test_validation(self):
        from repro.baselines import AfecaLikeProtocol

        _, network, _ = make_baseline_network()
        with pytest.raises(ValueError):
            AfecaLikeProtocol(network, awake_s=0.0)


class TestAllFactoriesRun:
    @pytest.mark.parametrize("name", sorted(
        __import__("repro.baselines", fromlist=["BASELINE_FACTORIES"])
        .BASELINE_FACTORIES
    ))
    def test_factory_runs_small_scenario(self, name):
        scenario = Scenario(num_nodes=25, field_size=(15.0, 15.0),
                            with_traffic=False, failure_per_5000s=0.0,
                            max_time_s=2000.0)
        result = run_baseline(scenario, protocol=name)
        assert result.end_time > 0
