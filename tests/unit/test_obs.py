"""Unit tests for the observability layer: events, sinks, tracer, schema,
manifests (``repro.obs``)."""

import json

import pytest

from repro.obs import (
    NdjsonSink,
    NullSink,
    RingBufferSink,
    Tracer,
    build_manifest,
    config_hash,
    events,
    git_sha,
    load_manifest,
    null_tracer,
    save_manifest,
    validate_event,
    validate_trace_file,
)
from repro.obs.events import encode_event
from repro.obs.manifest import MANIFEST_SCHEMA
from repro.obs.schema import iter_trace_file


class TestEvents:
    def test_every_constructor_validates(self):
        samples = [
            events.state(1.0, 3, "sleeping", "probing"),
            events.state(2.0, 3, "working", "dead", cause="energy", rate_hz=0.1),
            events.probe_tx(1.0, 3, wakeup=2, idx=0),
            events.reply_tx(1.0, "anchor0", lam=None, tw=12.5),
            events.reply_tx(1.0, 4, lam=0.02, tw=12.5),
            events.collision(1.0, 3, frames=2),
            events.drop(1.0, 3, "half_duplex"),
            events.lambda_hat(1.0, 3, lam=0.05, window=1),
            events.rate(1.0, 3, old_hz=1.0, new_hz=0.5, lam=0.05),
            events.fail(1.0, 3),
            events.energy(1.0, 3, "probe_tx", 0.0006),
        ]
        for event in samples:
            assert validate_event(event) is None, event

    def test_encode_is_canonical(self):
        # Same logical event, different insertion order -> same bytes.
        a = {"t": 1.0, "ev": "fail", "node": 2}
        b = {"node": 2, "ev": "fail", "t": 1.0}
        assert encode_event(a) == encode_event(b)
        assert "\n" not in encode_event(a)
        assert " " not in encode_event(a)


class TestSchemaValidation:
    def test_unknown_type_rejected(self):
        assert "unknown event type" in validate_event({"t": 0, "ev": "nope", "node": 1})

    def test_non_dict_rejected(self):
        assert validate_event([1, 2]) is not None

    def test_negative_time_rejected(self):
        assert "'t'" in validate_event({"t": -1.0, "ev": "fail", "node": 1})

    def test_missing_field_rejected(self):
        bad = {"t": 0.0, "ev": "drop", "node": 1}
        assert "missing field 'why'" in validate_event(bad)

    def test_bad_state_name_rejected(self):
        bad = events.state(0.0, 1, "sleeping", "Zombie")
        assert "must be one of" in validate_event(bad)

    def test_bad_drop_reason_rejected(self):
        bad = events.drop(0.0, 1, "gremlins")
        assert "'why'" in validate_event(bad)

    def test_unexpected_field_rejected(self):
        bad = events.fail(0.0, 1)
        bad["extra"] = True
        assert "unexpected fields" in validate_event(bad)

    def test_bool_is_not_a_number(self):
        bad = {"t": True, "ev": "fail", "node": 1}
        assert validate_event(bad) is not None

    def test_validate_trace_file(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        lines = [
            encode_event(events.fail(1.0, 2)),
            "this is not json",
            encode_event({"t": 2.0, "ev": "bogus", "node": 3}),
        ]
        path.write_text("\n".join(lines) + "\n")
        errors = validate_trace_file(path)
        assert len(errors) == 2
        assert errors[0].startswith("line 2:")
        assert errors[1].startswith("line 3:")

    def test_validate_trace_file_truncates(self, tmp_path):
        path = tmp_path / "broken.ndjson"
        path.write_text("nope\n" * 50)
        errors = validate_trace_file(path, max_errors=5)
        assert len(errors) == 6  # 5 problems + truncation marker
        assert "stopped after" in errors[-1]


class TestSinks:
    def test_null_sink_counts_nothing(self):
        sink = NullSink()
        sink.emit({"t": 0, "ev": "fail", "node": 1})
        assert sink.emitted == 0 and sink.dropped == 0

    def test_ring_buffer_keeps_newest_and_counts_drops(self):
        sink = RingBufferSink(capacity=2)
        for i in range(5):
            sink.emit(events.fail(float(i), i))
        assert sink.emitted == 5
        assert sink.dropped == 3
        assert [e["node"] for e in sink.events()] == [3, 4]
        assert len(sink) == 2

    def test_ring_buffer_unbounded(self):
        sink = RingBufferSink()
        for i in range(10):
            sink.emit(events.fail(float(i), i))
        assert sink.dropped == 0 and len(sink) == 10

    def test_ring_buffer_type_filter(self):
        sink = RingBufferSink()
        sink.emit(events.fail(0.0, 1))
        sink.emit(events.collision(1.0, 2, 2))
        assert [e["ev"] for e in sink.events("collision")] == ["collision"]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_ndjson_sink_writes_canonical_lines(self, tmp_path):
        path = tmp_path / "out.ndjson"
        sink = NdjsonSink(path)
        sink.emit(events.fail(1.0, 2))
        sink.emit(events.collision(2.0, 3, 1))
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"t": 1.0, "ev": "fail", "node": 2}
        assert sink.emitted == 2 and sink.dropped == 0

    def test_ndjson_sink_rotation(self, tmp_path):
        path = tmp_path / "big.ndjson"
        sink = NdjsonSink(path, rotate_bytes=1024)
        event = events.energy(0.0, 1, "probe_tx", 0.123456)
        line_len = len(encode_event(event)) + 1
        for _ in range(3 * (1024 // line_len) + 3):
            sink.emit(event)
        sink.close()
        assert sink.rotations >= 2
        chunks = sink.chunk_paths()
        assert chunks[0] == path
        assert all(chunk.exists() for chunk in chunks)
        for chunk in chunks[:-1]:
            assert chunk.stat().st_size <= 1024
        total_lines = sum(
            len(chunk.read_text().splitlines()) for chunk in chunks
        )
        assert total_lines == sink.emitted

    def test_ndjson_sink_rejects_tiny_rotation(self, tmp_path):
        with pytest.raises(ValueError):
            NdjsonSink(tmp_path / "x.ndjson", rotate_bytes=10)


class TestTracer:
    def test_null_tracer_normalizes_to_none(self):
        assert null_tracer().active() is None
        assert Tracer().active() is None  # default sink is the null sink

    def test_real_tracer_is_active(self):
        tracer = Tracer(RingBufferSink())
        assert tracer.active() is tracer
        assert tracer.enabled

    def test_stats_reflect_sink(self):
        tracer = Tracer(RingBufferSink(capacity=1))
        tracer.emit(events.fail(0.0, 1))
        tracer.emit(events.fail(1.0, 2))
        assert tracer.stats() == {"emitted": 2, "dropped": 1}


class TestManifest:
    def test_config_hash_is_stable_and_sensitive(self):
        from repro.experiments import Scenario

        a = Scenario(num_nodes=10, seed=1)
        b = Scenario(num_nodes=10, seed=1)
        c = Scenario(num_nodes=11, seed=1)
        assert config_hash(a) == config_hash(b)
        assert config_hash(a) != config_hash(c)
        assert len(config_hash(a)) == 16

    def test_git_sha_in_checkout(self):
        sha = git_sha()
        # The test tree is a git checkout; outside one None is acceptable.
        if sha is not None:
            assert len(sha) == 40

    def test_build_manifest_shape(self):
        manifest = build_manifest(
            seed=7,
            config={"x": 1},
            rng_streams=("b", "a"),
            wall_time_s=1.234567,
            events_executed=100,
            sim_end_time_s=50.0,
            trace={"emitted": 3, "dropped": 0},
            mac={"num_probes": 3},
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["seed"] == 7
        assert manifest["rng_streams"] == ["a", "b"]
        assert manifest["timing"]["wall_time_s"] == 1.2346
        assert manifest["events_executed"] == 100
        assert manifest["trace"]["emitted"] == 3
        assert manifest["mac"]["num_probes"] == 3
        assert "python" in manifest["packages"]

    def test_manifest_round_trip(self, tmp_path):
        manifest = build_manifest(seed=1, config={"a": 2})
        path = tmp_path / "run.manifest.json"
        save_manifest(manifest, path)
        assert load_manifest(path) == manifest

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError):
            load_manifest(path)


class TestIterTraceFile:
    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        path.write_text(encode_event(events.fail(0.0, 1)) + "\n\n")
        assert len(list(iter_trace_file(path))) == 1
