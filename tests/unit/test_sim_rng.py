"""Unit tests for repro.sim.rng (deterministic named streams)."""

import pytest

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_name_changes_seed(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_master_changes_seed(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "stream")
        assert 0 <= seed < 2**64


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        rngs = RngRegistry(seed=1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_are_independent(self):
        rngs = RngRegistry(seed=1)
        a = [rngs.stream("a").random() for _ in range(5)]
        b = [rngs.stream("b").random() for _ in range(5)]
        assert a != b

    def test_replay_across_registries(self):
        draws1 = [RngRegistry(seed=9).stream("x").random() for _ in range(1)]
        draws2 = [RngRegistry(seed=9).stream("x").random() for _ in range(1)]
        assert draws1 == draws2

    def test_different_master_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random()
        b = RngRegistry(seed=2).stream("x").random()
        assert a != b

    def test_consuming_one_stream_does_not_perturb_another(self):
        rngs1 = RngRegistry(seed=5)
        rngs1.stream("noise").random()
        value_after_noise = rngs1.stream("signal").random()
        rngs2 = RngRegistry(seed=5)
        value_clean = rngs2.stream("signal").random()
        assert value_after_noise == value_clean

    def test_spawn_derives_child_registry(self):
        parent = RngRegistry(seed=3)
        child_a = parent.spawn("node.1")
        child_b = parent.spawn("node.2")
        assert child_a.seed != child_b.seed
        assert parent.spawn("node.1").seed == child_a.seed

    def test_exponential_draw_positive(self):
        rngs = RngRegistry(seed=1)
        for _ in range(100):
            assert rngs.exponential("e", rate=0.5) > 0

    def test_exponential_invalid_rate(self):
        with pytest.raises(ValueError):
            RngRegistry(seed=1).exponential("e", rate=0.0)

    def test_exponential_mean_close_to_inverse_rate(self):
        rngs = RngRegistry(seed=1)
        draws = [rngs.exponential("e", rate=2.0) for _ in range(20000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(0.5, rel=0.05)

    def test_uniform_within_bounds(self):
        rngs = RngRegistry(seed=1)
        for _ in range(100):
            value = rngs.uniform("u", 2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_names_lists_created_streams(self):
        rngs = RngRegistry(seed=1)
        rngs.stream("b")
        rngs.stream("a")
        assert list(rngs.names()) == ["a", "b"]
