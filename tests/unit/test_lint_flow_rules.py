"""Good/bad fixtures for the whole-program rules (W401-W404/H203).

Same convention as ``test_lint_rules.py``: every rule gets fixtures that
must fire and fixtures that must stay silent, run through the real
``lint_paths`` entry point so the graph build and sim-scope logic are
exercised end to end.
"""

import textwrap

import pytest

from repro.lint import all_checkers, lint_paths
from repro.lint.baseline import BaselineError, save_baseline

CATALOGUE = 'STREAM_NAMES = {"deployment": "d", "node.*": "per-node"}\n'


def lint_tree(tmp_path, files, select=None):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([tmp_path / "repro"],
                      all_checkers(select=select), root=tmp_path)


def rules_of(violations):
    return [v.rule for v in violations]


# --------------------------------------------------------------------- W401
HELPER = """
    import time

    def stamp():
        return time.time()

    def indirection():
        return stamp()
"""


def test_w401_flags_sim_scoped_chain_with_full_chain(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/analysis/helpers.py": HELPER,
        "repro/sim/engine.py": """
            from ..analysis.helpers import indirection

            def schedule():
                return indirection()
        """,
    }, select=["W401"])
    assert rules_of(found) == ["W401"]
    violation = found[0]
    assert violation.path == "repro/sim/engine.py"
    # the full chain, caller to sink, in both message and details
    assert "repro.sim.engine.schedule" in violation.message
    assert "repro.analysis.helpers.indirection" in violation.message
    assert "time.time()" in violation.message
    assert "repro.analysis.helpers.stamp" in violation.details
    assert "repro/analysis/helpers.py" in violation.details


def test_w401_ignores_the_same_helper_called_from_perf(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/analysis/helpers.py": HELPER,
        "repro/perf/bench.py": """
            from ..analysis.helpers import indirection

            def measure():
                return indirection()
        """,
    }, select=["W401"])
    assert found == []


def test_w401_flags_global_random_sinks_too(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/analysis/noise.py": """
            import random

            def jitter():
                return random.random()
        """,
        "repro/core/node.py": """
            from ..analysis.noise import jitter

            def wake():
                return jitter()
        """,
    }, select=["W401"])
    assert rules_of(found) == ["W401"]
    assert "random.random()" in found[0].message


def test_w401_respects_wallclock_boundary_marker(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/obs/provenance.py": """
            import time

            def wall_clock_s():  # peas-lint: wallclock-boundary
                return time.perf_counter()
        """,
        "repro/harness/runner.py": """
            from ..obs.provenance import wall_clock_s

            def run():
                return wall_clock_s()
        """,
    }, select=["W401"])
    assert found == []


def test_w401_direct_in_scope_sinks_are_d_rules_not_w401(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/engine.py": """
            import time

            def schedule():
                return time.time()
        """,
    })
    assert "D103" in rules_of(found)
    assert "W401" not in rules_of(found)


def test_w401_refuses_baselining(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/analysis/helpers.py": HELPER,
        "repro/sim/engine.py": """
            from ..analysis.helpers import indirection

            def schedule():
                return indirection()
        """,
    }, select=["W401"])
    with pytest.raises(BaselineError, match="determinism"):
        save_baseline(tmp_path / "baseline.json", found)


# --------------------------------------------------------------------- W402
def test_w402_accepts_declared_names_and_families(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/streams.py": CATALOGUE,
        "repro/sim/uses.py": """
            def build(rngs, key):
                a = rngs.stream("deployment")
                b = rngs.stream(f"node.{key}")
                return a, b
        """,
    }, select=["W402"])
    assert found == []


def test_w402_flags_undeclared_name_prefix_and_dynamic(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/streams.py": CATALOGUE,
        "repro/sim/uses.py": """
            def build(rngs, key):
                a = rngs.stream("typo-name")
                b = rngs.stream(f"edge.{key}")
                c = rngs.stream(key)
                return a, b, c
        """,
    }, select=["W402"])
    assert rules_of(found) == ["W402", "W402", "W402"]
    messages = " | ".join(v.message for v in found)
    assert '"typo-name"' in messages
    assert '"edge."' in messages
    assert "not statically checkable" in messages


def test_w402_checks_registry_helper_draws_with_literal_names(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/streams.py": CATALOGUE,
        "repro/sim/uses.py": """
            def draw(rngs, rng):
                bad = rngs.exponential("undeclared", 2.0)
                fine = rng.uniform(0.0, 1.0)   # plain Random draw: no name
                return bad, fine
        """,
    }, select=["W402"])
    assert rules_of(found) == ["W402"]
    assert '"undeclared"' in found[0].message


def test_w402_exempts_the_registry_implementation(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/streams.py": CATALOGUE,
        "repro/sim/rng.py": """
            def exponential(self, name, rate):
                return self.stream(name).expovariate(rate)
        """,
    }, select=["W402"])
    assert found == []


def test_w402_without_catalogue_flags_only_literals(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/uses.py": """
            def build(rngs):
                return rngs.stream("anything")
        """,
    }, select=["W402"])
    assert rules_of(found) == ["W402"]
    assert "no STREAM_NAMES catalogue" in found[0].message


# --------------------------------------------------------------------- W403
def test_w403_flags_lambda_and_nested_captures(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/experiments/sweep.py": """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                def task(x):
                    return x
                with ProcessPoolExecutor(initializer=lambda: None) as ex:
                    ex.submit(task, 1)
                    list(ex.map(lambda v: v, items))
        """,
    }, select=["W403"])
    assert rules_of(found) == ["W403", "W403", "W403"]
    messages = " | ".join(v.message for v in found)
    assert "initializer" in messages
    assert "task" in messages


def test_w403_flags_stateful_initargs(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/experiments/sweep.py": """
            import multiprocessing

            def boot(lock):
                pass

            def run():
                with multiprocessing.Pool(
                    initializer=boot,
                    initargs=(multiprocessing.Lock(),),
                ) as pool:
                    pool.map(len, [()])
        """,
    }, select=["W403"])
    assert rules_of(found) == ["W403"]
    assert "Lock" in found[0].message


def test_w403_allows_module_level_functions_and_thread_pools(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/experiments/sweep.py": """
            from concurrent.futures import ProcessPoolExecutor
            from functools import partial

            def worker(x):
                return x

            def run(items):
                with ProcessPoolExecutor() as ex:
                    list(ex.map(partial(worker), items))
        """,
        "repro/experiments/threads.py": """
            from concurrent.futures import ThreadPoolExecutor

            def run(items):
                with ThreadPoolExecutor() as ex:
                    list(ex.map(lambda v: v, items))  # threads: no pickling
        """,
    }, select=["W403"])
    assert found == []


# --------------------------------------------------------------------- W404
def test_w404_flags_lambda_and_nested_schedule_captures(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/core/node.py": """
            def arm(sim):
                def fire():
                    pass
                sim.schedule(1.0, fire)
                sim.schedule_at(5.0, lambda: None)
        """,
    }, select=["W404"])
    assert rules_of(found) == ["W404", "W404"]
    messages = " | ".join(v.message for v in found)
    assert "'fire'" in messages
    assert "lambda" in messages
    assert "peas-snapshot/1" in messages


def test_w404_accepts_handler_descriptors(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/core/node.py": """
            def arm(sim, node):
                def fire():
                    pass
                sim.schedule(1.0, fire, handler=("node.fire", (node.id,)))
                sim.schedule_at(5.0, lambda: None,
                                handler=("node.sleep", (node.id,)))
        """,
    }, select=["W404"])
    assert found == []


def test_w404_respects_snapshot_exempt_marker(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/process.py": """
            def advance(sim):
                def step():
                    pass
                sim.schedule(0.0, step)  # peas-lint: snapshot-exempt
        """,
    }, select=["W404"])
    assert found == []


def test_w404_quiet_outside_sim_scope_and_for_bound_methods(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/perf/bench.py": """
            def arm(sim):
                sim.schedule(1.0, lambda: None)
        """,
        "repro/core/node.py": """
            def arm(sim, node):
                sim.schedule(1.0, node.wake)
        """,
    }, select=["W404"])
    assert found == []


# --------------------------------------------------------------------- H203
def test_h203_flags_allocating_helper_called_from_fast_loop(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/engine.py": """
            def _format(event):
                return f"event {event}"

            def dispatch(queue):  # peas-lint: fast-loop
                for event in queue:
                    _format(event)
        """,
    }, select=["H203"])
    assert rules_of(found) == ["H203"]
    violation = found[0]
    assert violation.path == "repro/sim/engine.py"
    assert "_format" in violation.message
    assert "f-string" in violation.message
    assert "allocations in callee" in violation.details


def test_h203_skips_helpers_that_are_fast_loops_themselves(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/engine.py": """
            def _inner(queue):  # peas-lint: fast-loop
                return {"q": queue}

            def dispatch(queue):  # peas-lint: fast-loop
                _inner(queue)
        """,
    }, select=["H203"])
    # _inner's own allocation is H202's business, not H203's
    assert rules_of(found) == []


def test_h203_exempts_error_path_allocations_in_helpers(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/engine.py": """
            def _check(event):
                if event is None:
                    raise ValueError(f"bad event {event}")
                return event

            def dispatch(queue):  # peas-lint: fast-loop
                for event in queue:
                    _check(event)
        """,
    }, select=["H203"])
    assert found == []


def test_h203_quiet_on_non_fast_loop_callers(tmp_path):
    found = lint_tree(tmp_path, {
        "repro/sim/engine.py": """
            def _format(event):
                return f"event {event}"

            def report(queue):
                return [_format(e) for e in queue]
        """,
    }, select=["H203"])
    assert found == []
