"""The metrics registry and the ``peas-metrics/1`` export contract.

Covers the three instrument kinds, the strict-mode name catalogue, the
log2 bucketing (exact at power-of-two edges), cross-worker merge
semantics, NDJSON round-trip + validation, and the Prometheus renderer.
"""

import json
import math

import pytest

from repro.obs.metrics import (
    BUCKET_COUNT,
    BUCKET_LOG2_LOW,
    METRIC_NAMES,
    MetricsRegistry,
    RunMetrics,
    _bucket_index,
    bucket_bounds,
    load_metrics_file,
    render_prometheus,
    save_metrics,
    validate_metrics_file,
)


class TestBucketing:
    def test_bounds_layout(self):
        bounds = bucket_bounds()
        assert len(bounds) == BUCKET_COUNT + 1
        assert bounds[0] == 2.0 ** BUCKET_LOG2_LOW
        assert bounds[-1] == math.inf
        assert bounds[:-1] == sorted(bounds[:-1])

    def test_power_of_two_edges_are_exact(self):
        # Bucket i covers (2^(LOW+i-1), 2^(LOW+i)]: a power of two lands
        # in the bucket it bounds, not the next one up.
        bounds = bucket_bounds()
        for i, bound in enumerate(bounds[:-1]):
            assert _bucket_index(bound) == i
            assert _bucket_index(bound * 1.0000001) == i + 1

    def test_underflow_and_overflow(self):
        assert _bucket_index(0.0) == 0
        assert _bucket_index(2.0 ** (BUCKET_LOG2_LOW - 5)) == 0
        assert _bucket_index(2.0 ** (BUCKET_LOG2_LOW + BUCKET_COUNT + 3)) == BUCKET_COUNT

    def test_every_observation_lands_in_exactly_one_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("peas_run_wall_seconds")
        values = [0.001, 0.5, 1.0, 1.5, 3600.0, 1e9]
        for v in values:
            hist.observe(v)
        assert hist.count == len(values)
        assert sum(hist.buckets) == len(values)
        assert hist.sum == pytest.approx(sum(values))
        assert hist.mean == pytest.approx(sum(values) / len(values))


class TestRegistry:
    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("peas_runs_total", protocol="peas", status="ok")
        b = registry.counter("peas_runs_total", status="ok", protocol="peas")
        c = registry.counter("peas_runs_total", status="error", protocol="peas")
        assert a is b
        assert a is not c
        a.inc()
        a.inc(2.5)
        assert b.value == 3.5
        assert len(registry) == 2

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("peas_runs_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_set_max_keeps_peak(self):
        gauge = MetricsRegistry().gauge("peas_sim_heap_size")
        gauge.set_max(10)
        gauge.set_max(4)
        assert gauge.value == 10
        gauge.set(4)
        assert gauge.value == 4

    def test_strict_rejects_undeclared_names(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="undeclared metric name"):
            registry.counter("peas_bogus_total")

    def test_kind_must_match_catalogue(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="declared as a counter"):
            registry.gauge("peas_runs_total")

    def test_non_strict_allows_new_names_but_enforces_shape(self):
        registry = MetricsRegistry(strict=False)
        registry.counter("peas_custom_total").inc()
        with pytest.raises(ValueError, match="must match"):
            registry.counter("NotSnake")
        # One name, one kind — even off-catalogue.
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("peas_custom_total")

    def test_label_values_stringify(self):
        registry = MetricsRegistry()
        registry.histogram("peas_coverage_lifetime_seconds", k=3).observe(1.0)
        (sample,) = registry.snapshot()
        assert sample["labels"] == {"k": "3"}


class TestMergeSemantics:
    def build(self, runs_value, heap_value, observations):
        registry = MetricsRegistry()
        registry.counter("peas_runs_total").inc(runs_value)
        registry.gauge("peas_sim_heap_size").set(heap_value)
        hist = registry.histogram("peas_run_wall_seconds")
        for v in observations:
            hist.observe(v)
        return registry

    def test_counters_add_gauges_max_histograms_add(self):
        merged = MetricsRegistry()
        merged.merge(self.build(2, 10, [1.0, 2.0]).snapshot())
        merged.merge(self.build(3, 7, [4.0]).snapshot())
        assert merged.counter("peas_runs_total").value == 5
        assert merged.gauge("peas_sim_heap_size").value == 10
        hist = merged.histogram("peas_run_wall_seconds")
        assert hist.count == 3
        assert hist.sum == pytest.approx(7.0)

    def test_merge_rejects_incompatible_bucket_layout(self):
        (sample,) = [
            s for s in self.build(1, 1, [1.0]).snapshot()
            if s["type"] == "histogram"
        ]
        sample["buckets"] = sample["buckets"][:-2]
        with pytest.raises(ValueError, match="incompatible bucket layout"):
            MetricsRegistry().merge([sample])

    def test_merge_is_idempotent_on_empty(self):
        registry = MetricsRegistry()
        registry.merge([])
        assert registry.snapshot() == []


class TestExportRoundTrip:
    def populated(self):
        registry = MetricsRegistry()
        registry.counter("peas_runs_total", protocol="peas", status="ok").inc(4)
        registry.gauge("peas_run_rss_mb").set_max(120.5)
        hist = registry.histogram("peas_run_wall_seconds", phase="run")
        hist.observe(0.25)
        hist.observe(8.0)
        return registry

    def test_round_trip_preserves_every_sample(self, tmp_path):
        registry = self.populated()
        path = tmp_path / "metrics.ndjson"
        save_metrics(registry, path, meta={"label": "unit"})
        header, samples = load_metrics_file(path)
        assert header["schema"] == "peas-metrics/1"
        assert header["label"] == "unit"
        assert header["bucket_log2_low"] == BUCKET_LOG2_LOW
        assert samples == registry.snapshot()
        # Folding the samples into a fresh registry reproduces the export.
        merged = MetricsRegistry()
        merged.merge(samples)
        assert merged.snapshot() == registry.snapshot()

    def test_export_is_byte_stable(self, tmp_path):
        a, b = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
        save_metrics(self.populated(), a)
        save_metrics(self.populated(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_validator_accepts_real_exports(self, tmp_path):
        path = tmp_path / "metrics.ndjson"
        save_metrics(self.populated(), path)
        assert validate_metrics_file(path) == []

    def test_validator_catches_drift(self, tmp_path):
        path = tmp_path / "metrics.ndjson"
        save_metrics(self.populated(), path)
        lines = path.read_text().splitlines()
        doctored = []
        for line in lines:
            obj = json.loads(line)
            if obj.get("name") == "peas_runs_total":
                obj["name"] = "peas_rogue_total"
            if obj.get("type") == "histogram":
                obj["count"] += 1
            doctored.append(json.dumps(obj))
        path.write_text("\n".join(doctored) + "\n")
        problems = "\n".join(validate_metrics_file(path))
        assert "not a canonical metric" in problems
        assert "must equal the bucket total" in problems

    def test_validator_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "metrics.ndjson"
        path.write_text('{"schema":"peas-trace/1"}\n')
        (problem,) = validate_metrics_file(path)
        assert "header must declare schema" in problem

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "metrics.ndjson"
        path.write_text('{"schema":"nope/9"}\n')
        with pytest.raises(ValueError, match="unsupported metrics schema"):
            load_metrics_file(path)


class TestPrometheusRendering:
    def test_counter_gauge_and_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("peas_runs_total", protocol="peas", status="ok").inc(3)
        registry.gauge("peas_sim_heap_size").set(42)
        hist = registry.histogram("peas_run_wall_seconds")
        hist.observe(0.25)
        hist.observe(0.25)
        hist.observe(1e9)
        text = render_prometheus(registry)
        assert "# TYPE peas_runs_total counter" in text
        assert 'peas_runs_total{protocol="peas",status="ok"} 3' in text
        assert "# TYPE peas_sim_heap_size gauge" in text
        assert "peas_sim_heap_size 42" in text
        # Buckets are cumulative and end at +Inf == count.
        assert 'peas_run_wall_seconds_bucket{le="0.25"} 2' in text
        assert 'peas_run_wall_seconds_bucket{le="+Inf"} 3' in text
        assert "peas_run_wall_seconds_count 3" in text
        # Every catalogue name rendered carries its HELP line.
        assert f"# HELP peas_runs_total {METRIC_NAMES['peas_runs_total'][1]}" in text

    def test_label_escaping(self):
        registry = MetricsRegistry(strict=False)
        registry.counter("peas_runs_total", status='we"ird\\x').inc()
        text = render_prometheus(registry)
        assert 'status="we\\"ird\\\\x"' in text


class _FakeSim:
    pending_events = 9
    live_events = 7
    tombstones = 2
    events_executed = 1234


class _FakeResult:
    end_time = 5000.0
    coverage_lifetimes = {1: 4000.0, 3: 2500.0, 5: None}
    delivery_lifetime = 3000.0
    energy_by_category = {"sleep": 1.5, "probe": 0.0, "tx": 2.5}
    total_wakeups = 77


class TestRunMetrics:
    def test_finish_records_the_run_level_story(self):
        run = RunMetrics(protocol="peas", backend="columnar")
        run.sample_engine(_FakeSim())
        run.record_channel({"frames_sent": 10, "frames_delivered": 8,
                            "collisions": 2, "random_losses": 0})
        run.record_faults(injected=5, events_by_kind={"crash": 5, "region_kill": 0})
        run.finish(_FakeSim(), _FakeResult(), wall_s=1.25, rss_mb=64.0)
        registry = run.registry
        labels = dict(protocol="peas", backend="columnar")
        assert registry.counter("peas_runs_total", status="ok", **labels).value == 1
        assert registry.gauge("peas_sim_heap_size", **labels).value == 9
        assert registry.counter(
            "peas_channel_frames_total", outcome="sent", **labels
        ).value == 10
        assert registry.counter(
            "peas_channel_drops_total", reason="collision", **labels
        ).value == 2
        assert registry.counter(
            "peas_fault_events_total", kind="crash", **labels
        ).value == 5
        assert registry.counter("peas_wakeups_total", **labels).value == 77
        assert registry.counter(
            "peas_energy_joules_total", cat="tx", **labels
        ).value == 2.5
        # k=5 had no lifetime; zero-valued categories are suppressed.
        names = {s["name"]: s for s in registry.snapshot()}
        k_labels = [
            s["labels"]["k"] for s in registry.snapshot()
            if s["name"] == "peas_coverage_lifetime_seconds"
        ]
        assert k_labels == ["1", "3"]
        assert not any(
            s["labels"].get("cat") == "probe"
            for s in registry.snapshot()
            if s["name"] == "peas_energy_joules_total"
        )
        assert "peas_delivery_lifetime_seconds" in names

    def test_every_catalogue_name_is_well_formed(self):
        # The catalogue itself obeys the naming contract the validator and
        # S302 both build on.
        for name, (kind, help_text) in METRIC_NAMES.items():
            assert name.startswith("peas_")
            assert kind in ("counter", "gauge", "histogram")
            assert help_text.strip()
