"""Unit tests for the analytic lifetime model."""

import pytest

from repro.analysis import predict_lifetime, rsa_working_count
from repro.energy import MOTE_PROFILE
from repro.net import Field


class TestRsaWorkingCount:
    def test_paper_field(self):
        """50x50 m, R_p = 3 m: ~190 workers at saturation."""
        count = rsa_working_count(Field(50.0, 50.0), 3.0)
        assert 180 < count < 205

    def test_scales_with_area(self):
        small = rsa_working_count(Field(25.0, 25.0), 3.0)
        large = rsa_working_count(Field(50.0, 50.0), 3.0)
        assert large == pytest.approx(4 * small)

    def test_larger_probe_range_fewer_workers(self):
        field = Field(50.0, 50.0)
        assert rsa_working_count(field, 6.0) < rsa_working_count(field, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            rsa_working_count(Field(10.0, 10.0), 0.0)


class TestPredictLifetime:
    FIELD = Field(50.0, 50.0)

    def test_linear_in_population_when_dense(self):
        p320 = predict_lifetime(self.FIELD, 320)
        p640 = predict_lifetime(self.FIELD, 640)
        assert p640.lifetime_s == pytest.approx(2 * p320.lifetime_s, rel=0.01)

    def test_sparse_regime_one_battery(self):
        """Below the RSA saturation, everyone works: ~one battery life."""
        prediction = predict_lifetime(self.FIELD, 160)
        assert 4300 < prediction.lifetime_s < 5100

    def test_failures_shorten_lifetime(self):
        calm = predict_lifetime(self.FIELD, 480)
        harsh = predict_lifetime(self.FIELD, 480, failure_rate_hz=48 / 5000.0)
        assert harsh.lifetime_s < calm.lifetime_s
        # The paper's robustness band: a modest drop, not a collapse.
        assert harsh.lifetime_s > 0.6 * calm.lifetime_s

    def test_prediction_matches_simulation_within_factor(self):
        """The energy-budget model should land in the same ballpark as the
        measured Figure 9 values (it ignores transition losses, so it is an
        upper-ish bound)."""
        from repro.experiments import Scenario, run_scenario

        measured = run_scenario(
            Scenario(num_nodes=480, seed=2, with_traffic=False)
        ).coverage_lifetimes[3]
        predicted = predict_lifetime(
            self.FIELD, 480, failure_rate_hz=10.66 / 5000.0
        ).lifetime_s
        assert measured is not None
        assert 0.5 < measured / predicted < 2.0

    def test_slope_per_node(self):
        prediction = predict_lifetime(self.FIELD, 640)
        assert prediction.slope_per_node() == pytest.approx(
            prediction.lifetime_s / 640
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_lifetime(self.FIELD, 0)
        with pytest.raises(ValueError):
            predict_lifetime(self.FIELD, 100, overhead_fraction=1.0)
        with pytest.raises(ValueError):
            predict_lifetime(self.FIELD, 100, failure_rate_hz=-1.0)

    def test_burn_rate_composition(self):
        prediction = predict_lifetime(self.FIELD, 800, overhead_fraction=0.0)
        expected_burn = prediction.working_count * MOTE_PROFILE.idle_w
        assert prediction.burn_rate_w == pytest.approx(expected_burn)
