"""Unit tests for repro.net.field."""

import random

import pytest

from repro.net import Field, distance, distance_sq


class TestDistance:
    def test_zero_distance(self):
        assert distance((1.0, 2.0), (1.0, 2.0)) == 0.0

    def test_pythagoras(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_sq_matches(self):
        a, b = (1.0, 1.0), (4.0, 5.0)
        assert distance_sq(a, b) == pytest.approx(distance(a, b) ** 2)

    def test_symmetry(self):
        a, b = (0.5, 2.5), (7.0, 1.0)
        assert distance(a, b) == distance(b, a)


class TestField:
    def test_area(self):
        assert Field(50.0, 40.0).area == 2000.0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Field(0.0, 10.0)
        with pytest.raises(ValueError):
            Field(10.0, -1.0)

    def test_contains_interior_and_boundary(self):
        field = Field(10.0, 10.0)
        assert field.contains((5.0, 5.0))
        assert field.contains((0.0, 0.0))
        assert field.contains((10.0, 10.0))

    def test_contains_rejects_outside(self):
        field = Field(10.0, 10.0)
        assert not field.contains((10.1, 5.0))
        assert not field.contains((5.0, -0.1))

    def test_clamp(self):
        field = Field(10.0, 10.0)
        assert field.clamp((-5.0, 20.0)) == (0.0, 10.0)
        assert field.clamp((3.0, 4.0)) == (3.0, 4.0)

    def test_random_points_inside(self):
        field = Field(30.0, 20.0)
        rng = random.Random(1)
        for _ in range(200):
            assert field.contains(field.random_point(rng))

    def test_corners(self):
        corners = Field(5.0, 7.0).corners()
        assert corners == ((0.0, 0.0), (5.0, 0.0), (5.0, 7.0), (0.0, 7.0))

    def test_grid_points_count(self):
        field = Field(10.0, 10.0)
        points = list(field.grid_points(5.0))
        assert len(points) == 9  # 3 x 3 lattice

    def test_grid_points_invalid_resolution(self):
        with pytest.raises(ValueError):
            list(Field(10.0, 10.0).grid_points(0.0))

    def test_grid_points_inside_field(self):
        field = Field(7.3, 4.1)
        assert all(field.contains(p) for p in field.grid_points(1.0))

    def test_str(self):
        assert "50" in str(Field(50.0, 50.0))

    def test_frozen(self):
        field = Field(10.0, 10.0)
        with pytest.raises(Exception):
            field.width = 20.0
