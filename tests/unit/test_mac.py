"""Unit tests for repro.net.mac timing helpers."""

import random

import pytest

from repro.net import reply_backoff, spread_transmissions


class TestReplyBackoff:
    def test_within_window(self):
        rng = random.Random(1)
        for _ in range(200):
            assert 0.0 <= reply_backoff(rng, 0.04) < 0.04

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            reply_backoff(random.Random(1), 0.0)

    def test_spreads_values(self):
        rng = random.Random(2)
        draws = {round(reply_backoff(rng, 0.04), 6) for _ in range(50)}
        assert len(draws) > 40


class TestSpreadTransmissions:
    def test_single_frame_immediate(self):
        assert spread_transmissions(random.Random(1), 1, 0.04, 0.01) == [0.0]

    def test_first_frame_always_immediate(self):
        for seed in range(10):
            offsets = spread_transmissions(random.Random(seed), 3, 0.04, 0.01)
            assert offsets[0] == 0.0

    def test_count_respected(self):
        offsets = spread_transmissions(random.Random(1), 4, 0.09, 0.01)
        assert len(offsets) == 4

    def test_min_gap_enforced(self):
        for seed in range(20):
            offsets = spread_transmissions(random.Random(seed), 3, 0.04, 0.01)
            for a, b in zip(offsets, offsets[1:]):
                assert b - a >= 0.01 - 1e-12

    def test_within_window(self):
        for seed in range(20):
            offsets = spread_transmissions(random.Random(seed), 3, 0.04, 0.01)
            assert all(0.0 <= o <= 0.04 + 1e-12 for o in offsets)

    def test_monotonic(self):
        offsets = spread_transmissions(random.Random(3), 4, 0.12, 0.01)
        assert offsets == sorted(offsets)

    def test_too_many_frames_rejected(self):
        with pytest.raises(ValueError):
            spread_transmissions(random.Random(1), 6, 0.04, 0.01)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spread_transmissions(random.Random(1), 0, 0.04, 0.01)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            spread_transmissions(random.Random(1), 2, 0.0, 0.01)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            spread_transmissions(random.Random(1), 2, 0.04, -0.01)

    def test_randomized_across_seeds(self):
        offsets = {
            tuple(spread_transmissions(random.Random(seed), 3, 0.04, 0.01))
            for seed in range(10)
        }
        assert len(offsets) > 5


class TestProbeOffsets:
    def test_deterministic_slots(self):
        from repro.net import probe_offsets
        assert probe_offsets(3, 0.010, 0.002) == [0.0, 0.012, 0.024]

    def test_single(self):
        from repro.net import probe_offsets
        assert probe_offsets(1, 0.010, 0.002) == [0.0]

    def test_validation(self):
        from repro.net import probe_offsets
        with pytest.raises(ValueError):
            probe_offsets(0, 0.01, 0.002)
        with pytest.raises(ValueError):
            probe_offsets(3, 0.0, 0.002)


class TestProbeSpan:
    def test_span(self):
        from repro.net import probe_span
        assert probe_span(3, 0.010, 0.002) == pytest.approx(0.034)

    def test_one_frame(self):
        from repro.net import probe_span
        assert probe_span(1, 0.010, 0.002) == pytest.approx(0.010)


class TestReplyDelay:
    AIRTIME, GAP, WINDOW, GUARD = 0.010, 0.002, 0.100, 0.002

    def args(self, index, seed=1):
        return (random.Random(seed), index, 3, self.AIRTIME, self.GAP,
                self.WINDOW, self.GUARD)

    def test_reply_never_overlaps_probe_burst(self):
        """A REPLY's transmission must start after every PROBE is done."""
        from repro.net import probe_span, reply_delay
        span = probe_span(3, self.AIRTIME, self.GAP)
        for seed in range(30):
            for index in range(3):
                delay = reply_delay(*self.args(index, seed))
                arrival = index * (self.AIRTIME + self.GAP) + self.AIRTIME
                tx_start_from_wakeup = arrival + delay
                assert tx_start_from_wakeup >= span + self.GUARD - 1e-12

    def test_reply_fits_in_window(self):
        from repro.net import reply_delay
        for seed in range(30):
            for index in range(3):
                delay = reply_delay(*self.args(index, seed))
                arrival = index * (self.AIRTIME + self.GAP) + self.AIRTIME
                assert arrival + delay + self.AIRTIME <= self.WINDOW + 1e-12

    def test_reply_phase_bounds(self):
        from repro.net import probe_span, reply_phase
        lo, hi = reply_phase(3, self.AIRTIME, self.GAP, self.WINDOW, self.GUARD)
        assert lo == pytest.approx(probe_span(3, self.AIRTIME, self.GAP) + self.GUARD)
        assert hi == pytest.approx(self.WINDOW - self.AIRTIME - self.GUARD)
        assert lo < hi

    def test_probe_arrival_offset(self):
        from repro.net import probe_arrival_offset
        assert probe_arrival_offset(0, 0.010, 0.002) == pytest.approx(0.010)
        assert probe_arrival_offset(2, 0.010, 0.002) == pytest.approx(0.034)

    def test_delays_randomized(self):
        from repro.net import reply_delay
        draws = {round(reply_delay(*self.args(0, seed)), 9) for seed in range(30)}
        assert len(draws) > 25

    def test_invalid_index(self):
        from repro.net import reply_delay
        with pytest.raises(ValueError):
            reply_delay(random.Random(1), 3, 3, self.AIRTIME, self.GAP,
                        self.WINDOW, self.GUARD)

    def test_window_too_small(self):
        from repro.net import reply_delay
        with pytest.raises(ValueError):
            reply_delay(random.Random(1), 0, 3, self.AIRTIME, self.GAP,
                        0.040, self.GUARD)
