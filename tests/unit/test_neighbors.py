"""Unit tests for repro.net.neighbors.NeighborCache."""

import math

import pytest

from repro.net import Field, NeighborCache, SpatialGrid, build_neighbor_lists
from repro.net.neighbors import cache_enabled_default


def make_grid(points, cell_size=3.0, size=50.0):
    grid = SpatialGrid(Field(size, size), cell_size=cell_size)
    for node_id, position in points.items():
        grid.insert(node_id, position)
    return grid


CLUSTER = {
    "a": (10.0, 10.0),
    "b": (12.0, 10.0),  # 2 m from a
    "c": (10.0, 13.0),  # 3 m from a
    "d": (20.0, 20.0),  # far away
}


class TestQueries:
    def test_sorted_by_distance_excluding_self(self):
        cache = NeighborCache(make_grid(CLUSTER), enabled=True)
        got = cache.neighbors_with_distance("a", 5.0)
        assert [node_id for node_id, _ in got] == ["b", "c"]
        assert got[0][1] == pytest.approx(2.0)
        assert got[1][1] == pytest.approx(3.0)

    def test_neighbors_returns_ids_only(self):
        cache = NeighborCache(make_grid(CLUSTER), enabled=True)
        assert cache.neighbors("a", 5.0) == ["b", "c"]

    def test_radius_is_inclusive(self):
        cache = NeighborCache(make_grid(CLUSTER), enabled=True)
        assert cache.neighbors("a", 2.0) == ["b"]

    def test_distance_tie_broken_by_insertion_order(self):
        points = {"late": None, "early": None}
        grid = SpatialGrid(Field(50.0, 50.0), cell_size=3.0)
        grid.insert("center", (10.0, 10.0))
        grid.insert("west", (8.0, 10.0))
        grid.insert("east", (12.0, 10.0))  # same distance, inserted later
        cache = NeighborCache(grid, enabled=True)
        assert cache.neighbors("center", 3.0) == ["west", "east"]

    def test_heterogeneous_ids(self):
        """Int node ids and string anchor ids coexist (no cross-type <)."""
        grid = SpatialGrid(Field(50.0, 50.0), cell_size=3.0)
        grid.insert(1, (10.0, 10.0))
        grid.insert("anchor0", (11.0, 10.0))
        grid.insert(2, (12.0, 10.0))
        cache = NeighborCache(grid, enabled=True)
        assert cache.neighbors(1, 4.0) == ["anchor0", 2]

    def test_neighbors_at_matches_member_query_ordering(self):
        grid = make_grid(CLUSTER)
        cache = NeighborCache(grid, enabled=True)
        member = cache.neighbors_with_distance("a", 5.0)
        at = cache.neighbors_at((10.0, 10.0), 5.0, exclude="a")
        assert member == at


class TestMemoization:
    def test_hit_returns_same_list(self):
        cache = NeighborCache(make_grid(CLUSTER), enabled=True)
        first = cache.neighbors_with_distance("a", 5.0)
        second = cache.neighbors_with_distance("a", 5.0)
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_distinct_radius_is_distinct_entry(self):
        cache = NeighborCache(make_grid(CLUSTER), enabled=True)
        cache.neighbors("a", 5.0)
        cache.neighbors("a", 2.0)
        assert cache.stats()["entries"] == 2

    def test_disabled_cache_recomputes_with_identical_results(self):
        grid = make_grid(CLUSTER)
        on = NeighborCache(grid, enabled=True)
        off = NeighborCache(grid, enabled=False)
        for node_id in CLUSTER:
            assert on.neighbors_with_distance(node_id, 5.0) == (
                off.neighbors_with_distance(node_id, 5.0)
            )
        assert len(off) == 0  # nothing memoized when disabled


class TestInvalidation:
    def test_dead_node_disappears_from_cached_neighborhoods(self):
        grid = make_grid(CLUSTER)
        cache = NeighborCache(grid, enabled=True)
        assert cache.neighbors("a", 5.0) == ["b", "c"]
        grid.remove("b")
        assert cache.neighbors("a", 5.0) == ["c"]

    def test_removed_center_entry_is_dropped(self):
        grid = make_grid(CLUSTER)
        cache = NeighborCache(grid, enabled=True)
        cache.neighbors("b", 5.0)
        grid.remove("b")
        assert ("b", 5.0) not in cache._lists

    def test_unrelated_entries_survive_removal(self):
        grid = make_grid(CLUSTER)
        cache = NeighborCache(grid, enabled=True)
        kept = cache.neighbors_with_distance("d", 1.0)
        cache.neighbors("a", 5.0)
        grid.remove("b")  # not in d's neighborhood
        assert cache.neighbors_with_distance("d", 1.0) is kept

    def test_insert_flushes_everything(self):
        grid = make_grid(CLUSTER)
        cache = NeighborCache(grid, enabled=True)
        cache.neighbors("a", 5.0)
        grid.insert("e", (11.0, 11.0))
        assert cache.stats()["entries"] == 0
        assert "e" in cache.neighbors("a", 5.0)

    def test_removal_then_requery_matches_brute_force(self):
        grid = make_grid(CLUSTER)
        cache = NeighborCache(grid, enabled=True)
        brute = NeighborCache(grid, enabled=False)
        for node_id in CLUSTER:
            cache.neighbors(node_id, 6.0)
        grid.remove("c")
        for node_id in ("a", "b", "d"):
            assert cache.neighbors_with_distance(node_id, 6.0) == (
                brute.neighbors_with_distance(node_id, 6.0)
            )


class TestEnvDefault:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_NEIGHBOR_CACHE", raising=False)
        assert cache_enabled_default() is True

    @pytest.mark.parametrize("value", ["0", "false", "OFF"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NEIGHBOR_CACHE", value)
        assert cache_enabled_default() is False

    def test_constructor_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NEIGHBOR_CACHE", "0")
        cache = NeighborCache(make_grid(CLUSTER))
        assert cache.enabled is False


class TestBuildNeighborLists:
    def test_full_map_sorted_nearest_first(self):
        lists = build_neighbor_lists(Field(50.0, 50.0), CLUSTER, radius=5.0)
        assert lists["a"] == ["b", "c"]
        assert lists["d"] == []

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            build_neighbor_lists(Field(50.0, 50.0), CLUSTER, radius=0.0)

    def test_distances_match_euclidean(self):
        grid = make_grid(CLUSTER)
        cache = NeighborCache(grid, enabled=True)
        for node_id, dist in cache.neighbors_with_distance("a", 30.0):
            px, py = CLUSTER[node_id]
            assert dist == pytest.approx(math.hypot(px - 10.0, py - 10.0))
