"""Unit tests for repro.net.channel.BroadcastChannel."""

import random

import pytest

from repro.net import (
    BroadcastChannel,
    Field,
    NeighborCache,
    Packet,
    RadioModel,
    SpatialGrid,
)
from repro.sim import Simulator


class StubEndpoint:
    """Minimal RadioEndpoint capturing deliveries."""

    def __init__(self, node_id, position, listening=True):
        self._id = node_id
        self._position = position
        self.listening = listening
        self.received = []

    @property
    def node_id(self):
        return self._id

    @property
    def position(self):
        return self._position

    def is_listening(self):
        return self.listening

    def on_packet(self, packet, rssi, dist):
        self.received.append((packet, rssi, dist))


def make_channel(loss_rate=0.0, energy_hook=None, seed=1):
    sim = Simulator()
    grid = SpatialGrid(Field(50.0, 50.0), cell_size=3.0)
    channel = BroadcastChannel(
        sim, grid, RadioModel(), loss_rate=loss_rate,
        rng=random.Random(seed), energy_hook=energy_hook,
    )
    return sim, channel


def attach(channel, node_id, position, listening=True):
    endpoint = StubEndpoint(node_id, position, listening)
    channel.attach(endpoint)
    return endpoint


class TestDelivery:
    def test_in_range_listener_receives(self):
        sim, channel = make_channel()
        sender = attach(channel, "s", (10.0, 10.0))
        receiver = attach(channel, "r", (12.0, 10.0))
        channel.transmit("s", Packet("PROBE", "s"), tx_range=3.0)
        sim.run()
        assert len(receiver.received) == 1
        packet, rssi, dist = receiver.received[0]
        assert packet.kind == "PROBE"
        assert dist == pytest.approx(2.0)
        assert rssi == pytest.approx(0.25)

    def test_out_of_range_not_delivered(self):
        sim, channel = make_channel()
        attach(channel, "s", (10.0, 10.0))
        far = attach(channel, "r", (14.0, 10.0))
        channel.transmit("s", Packet("PROBE", "s"), tx_range=3.0)
        sim.run()
        assert far.received == []

    def test_sender_does_not_hear_itself(self):
        sim, channel = make_channel()
        sender = attach(channel, "s", (10.0, 10.0))
        channel.transmit("s", Packet("PROBE", "s"), tx_range=3.0)
        sim.run()
        assert sender.received == []

    def test_non_listening_receiver_skipped(self):
        sim, channel = make_channel()
        attach(channel, "s", (10.0, 10.0))
        sleeper = attach(channel, "r", (11.0, 10.0), listening=False)
        channel.transmit("s", Packet("PROBE", "s"), tx_range=3.0)
        sim.run()
        assert sleeper.received == []

    def test_delivery_takes_airtime(self):
        sim, channel = make_channel()
        attach(channel, "s", (10.0, 10.0))
        receiver = attach(channel, "r", (11.0, 10.0))
        channel.transmit("s", Packet("PROBE", "s"), tx_range=3.0)
        assert receiver.received == []  # not yet: frame still on the air
        sim.run()
        assert sim.now == pytest.approx(0.010)  # 25 B at 20 kbps
        assert len(receiver.received) == 1

    def test_broadcast_reaches_multiple(self):
        sim, channel = make_channel()
        attach(channel, "s", (10.0, 10.0))
        receivers = [attach(channel, f"r{i}", (10.0 + i * 0.5, 10.0)) for i in (1, 2, 3)]
        channel.transmit("s", Packet("PROBE", "s"), tx_range=3.0)
        sim.run()
        assert all(len(r.received) == 1 for r in receivers)

    def test_receiver_sleeping_at_end_misses_frame(self):
        sim, channel = make_channel()
        attach(channel, "s", (10.0, 10.0))
        receiver = attach(channel, "r", (11.0, 10.0))
        channel.transmit("s", Packet("PROBE", "s"), tx_range=3.0)
        sim.schedule(0.005, lambda: setattr(receiver, "listening", False))
        sim.run()
        assert receiver.received == []
        assert channel.counters.get("aborted_receptions") == 1

    def test_unknown_sender_rejected(self):
        sim, channel = make_channel()
        with pytest.raises(KeyError):
            channel.transmit("ghost", Packet("PROBE", "ghost"), tx_range=3.0)

    def test_tx_range_beyond_radio_max_rejected(self):
        sim, channel = make_channel()
        attach(channel, "s", (10.0, 10.0))
        with pytest.raises(ValueError):
            channel.transmit("s", Packet("PROBE", "s"), tx_range=11.0)


class TestCollisions:
    def test_overlapping_frames_collide_at_receiver(self):
        sim, channel = make_channel()
        attach(channel, "a", (10.0, 10.0))
        attach(channel, "b", (12.0, 10.0))
        victim = attach(channel, "v", (11.0, 10.0))
        channel.transmit("a", Packet("PROBE", "a"), tx_range=3.0)
        sim.schedule(0.004, channel.transmit, "b", Packet("PROBE", "b"), 3.0)
        sim.run()
        assert victim.received == []
        assert channel.counters.get("collisions") >= 2

    def test_non_overlapping_frames_both_delivered(self):
        sim, channel = make_channel()
        attach(channel, "a", (10.0, 10.0))
        attach(channel, "b", (12.0, 10.0))
        victim = attach(channel, "v", (11.0, 10.0))
        channel.transmit("a", Packet("PROBE", "a"), tx_range=3.0)
        sim.schedule(0.02, channel.transmit, "b", Packet("PROBE", "b"), 3.0)
        sim.run()
        assert len(victim.received) == 2

    def test_collision_local_to_receiver(self):
        """A receiver that hears only one of two overlapping frames decodes it."""
        sim, channel = make_channel()
        attach(channel, "a", (10.0, 10.0))
        attach(channel, "b", (20.0, 10.0))  # far from the 'near' receiver
        near_a = attach(channel, "na", (11.0, 10.0))
        channel.transmit("a", Packet("PROBE", "a"), tx_range=3.0)
        channel.transmit("b", Packet("PROBE", "b"), tx_range=3.0)
        sim.run()
        assert len(near_a.received) == 1


class TestHalfDuplex:
    def test_transmitting_node_cannot_receive(self):
        sim, channel = make_channel()
        attach(channel, "a", (10.0, 10.0))
        attach(channel, "b", (12.0, 10.0))
        a_endpoint = channel.endpoint("a")
        channel.transmit("a", Packet("PROBE", "a"), tx_range=3.0)
        channel.transmit("b", Packet("REPLY", "b"), tx_range=3.0)
        sim.run()
        assert a_endpoint.received == []
        assert channel.counters.get("half_duplex_losses") == 1

    def test_transmission_corrupts_own_ongoing_reception(self):
        sim, channel = make_channel()
        attach(channel, "a", (10.0, 10.0))
        b = attach(channel, "b", (12.0, 10.0))
        channel.transmit("a", Packet("PROBE", "a"), tx_range=3.0)
        # b starts transmitting while a's frame is in flight toward it.
        sim.schedule(0.004, channel.transmit, "b", Packet("REPLY", "b"), 3.0)
        sim.run()
        assert b.received == []


class TestRandomLoss:
    def test_zero_loss_always_delivers(self):
        sim, channel = make_channel(loss_rate=0.0)
        attach(channel, "s", (10.0, 10.0))
        receiver = attach(channel, "r", (11.0, 10.0))
        for i in range(20):
            sim.schedule(i * 0.02, channel.transmit, "s", Packet("PROBE", "s"), 3.0)
        sim.run()
        assert len(receiver.received) == 20

    def test_loss_rate_drops_fraction(self):
        sim, channel = make_channel(loss_rate=0.3, seed=3)
        attach(channel, "s", (10.0, 10.0))
        receiver = attach(channel, "r", (11.0, 10.0))
        n = 400
        for i in range(n):
            sim.schedule(i * 0.02, channel.transmit, "s", Packet("PROBE", "s"), 3.0)
        sim.run()
        delivered = len(receiver.received)
        assert 0.6 * n < delivered < 0.8 * n
        assert channel.counters.get("random_losses") == n - delivered

    def test_invalid_loss_rate(self):
        sim = Simulator()
        grid = SpatialGrid(Field(10.0, 10.0), cell_size=3.0)
        with pytest.raises(ValueError):
            BroadcastChannel(sim, grid, RadioModel(), loss_rate=1.0)


class TestEnergyHook:
    def test_tx_and_rx_charged(self):
        charges = []
        sim, channel = make_channel(
            energy_hook=lambda nid, kind, airtime, pkt: charges.append((nid, kind))
        )
        attach(channel, "s", (10.0, 10.0))
        attach(channel, "r", (11.0, 10.0))
        channel.transmit("s", Packet("PROBE", "s"), tx_range=3.0)
        sim.run()
        assert ("s", "tx") in charges
        assert ("r", "rx") in charges

    def test_rx_charged_even_for_corrupted_frames(self):
        charges = []
        sim, channel = make_channel(
            energy_hook=lambda nid, kind, airtime, pkt: charges.append((nid, kind))
        )
        attach(channel, "a", (10.0, 10.0))
        attach(channel, "b", (12.0, 10.0))
        attach(channel, "v", (11.0, 10.0))
        channel.transmit("a", Packet("PROBE", "a"), tx_range=3.0)
        channel.transmit("b", Packet("PROBE", "b"), tx_range=3.0)
        sim.run()
        assert charges.count(("v", "rx")) == 2  # listened to both, decoded none


class TestAttachment:
    def test_attach_duplicate_rejected(self):
        sim, channel = make_channel()
        attach(channel, "a", (1.0, 1.0))
        with pytest.raises(KeyError):
            attach(channel, "a", (2.0, 2.0))

    def test_detach_removes_from_medium(self):
        sim, channel = make_channel()
        attach(channel, "s", (10.0, 10.0))
        receiver = attach(channel, "r", (11.0, 10.0))
        channel.detach("r")
        channel.transmit("s", Packet("PROBE", "s"), tx_range=3.0)
        sim.run()
        assert receiver.received == []

    def test_detach_is_idempotent(self):
        sim, channel = make_channel()
        attach(channel, "a", (1.0, 1.0))
        channel.detach("a")
        channel.detach("a")


class TestNeighborCacheIntegration:
    def _run_traffic(self, cache_enabled, seed=7):
        """Randomized probe traffic; returns (counters, delivery transcript)."""
        sim = Simulator()
        grid = SpatialGrid(Field(50.0, 50.0), cell_size=3.0)
        cache = NeighborCache(grid, enabled=cache_enabled)
        channel = BroadcastChannel(
            sim, grid, RadioModel(), loss_rate=0.2,
            rng=random.Random(seed), neighbor_cache=cache,
        )
        layout = random.Random(99)
        endpoints = [
            attach(channel, i, (layout.uniform(0, 20), layout.uniform(0, 20)))
            for i in range(30)
        ]
        for round_start in (0.0, 50.0, 100.0):
            for endpoint in endpoints:
                sim.schedule_at(
                    round_start + endpoint.node_id * 0.5,
                    channel.transmit,
                    endpoint.node_id,
                    Packet("PROBE", endpoint.node_id),
                    3.0,
                )
        sim.run()
        transcript = [
            (e.node_id, [(p.kind, p.sender, round(d, 9)) for p, _r, d in e.received])
            for e in endpoints
        ]
        return channel.counters.as_dict(), transcript

    def test_cache_on_off_bit_identical(self):
        """Determinism invariant: cache is an optimization, never a behavior."""
        on_counters, on_transcript = self._run_traffic(cache_enabled=True)
        off_counters, off_transcript = self._run_traffic(cache_enabled=False)
        assert on_counters == off_counters
        assert on_transcript == off_transcript

    def test_traffic_actually_delivered(self):
        counters, transcript = self._run_traffic(cache_enabled=True)
        assert counters.get("frames_sent", 0) > 0
        assert counters.get("frames_delivered", 0) > 0
        assert any(received for _, received in transcript)

    def test_dead_sender_still_transmits(self):
        """A node removed from the grid (dead) may have in-flight transmits."""
        sim, channel = make_channel()
        attach(channel, "s", (10.0, 10.0))
        receiver = attach(channel, "r", (12.0, 10.0))
        channel.grid.remove("s")  # node died; endpoint not yet detached
        channel.transmit("s", Packet("REPLY", "s"), tx_range=3.0)
        sim.run()
        assert len(receiver.received) == 1
        packet, _rssi, dist = receiver.received[0]
        assert packet.kind == "REPLY"
        assert dist == pytest.approx(2.0)
