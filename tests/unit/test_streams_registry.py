"""The STREAM_NAMES catalogue must cover — and be covered by — the tree.

Like the hot-path registry self-check, this pins the catalogue to reality:
a stream name used at a call site but missing from the catalogue would fork
RNG state silently on the next rename (caught here and by lint rule W402),
and a catalogue entry no call site uses is dead weight that hides drift.
"""

from pathlib import Path

import pytest

from repro.lint.graph import build_program
from repro.lint.rules_flow import (
    STREAMS_MODULE,
    load_stream_catalogue,
    stream_name_declared,
)
from repro.sim.streams import STREAM_NAMES, stream_declared

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def graph():
    return build_program([SRC / "repro"], root=SRC.parent)


def _call_site_refs(graph):
    """All name-carrying registry call sites outside the registry itself."""
    refs = []
    for module in sorted(graph.by_module):
        summary = graph.by_module[module]
        if summary.rel_path.endswith("repro/sim/rng.py"):
            continue
        refs.extend(summary.streams)
    return refs


def test_catalogue_is_alphabetical():
    assert list(STREAM_NAMES) == sorted(STREAM_NAMES)


def test_every_entry_has_a_description():
    for name, description in STREAM_NAMES.items():
        assert description.strip(), f"catalogue entry {name!r} has no description"


def test_every_call_site_is_declared(graph):
    refs = _call_site_refs(graph)
    assert refs, "no stream call sites found — extraction is broken"
    for ref in refs:
        if ref.name is not None:
            assert stream_declared(ref.name), (
                f"stream {ref.name!r} used at a call site but not declared "
                "in STREAM_NAMES"
            )
        else:
            assert ref.prefix is not None, (
                "dynamic stream name in the tree; W402 should have failed CI"
            )
            assert stream_declared(ref.prefix + "suffix"), (
                f"f-string stream prefix {ref.prefix!r} matches no declared "
                "family in STREAM_NAMES"
            )


def test_every_declared_name_is_used(graph):
    refs = _call_site_refs(graph)
    literal_names = {ref.name for ref in refs if ref.name is not None}
    prefixes = {ref.prefix for ref in refs if ref.prefix is not None}
    for name in STREAM_NAMES:
        if name.endswith(".*"):
            base = name[:-1]
            assert any(p.startswith(base) for p in prefixes), (
                f"declared family {name!r} has no f-string call site"
            )
        else:
            assert name in literal_names, (
                f"declared stream {name!r} has no call site; remove it or "
                "use it"
            )


def test_stream_declared_covers_families():
    assert stream_declared("node.0")
    assert stream_declared("faults.3.region")
    assert not stream_declared("nodeX")
    assert not stream_declared("unheard-of")


def test_ast_catalogue_matches_imported_catalogue(graph):
    """W402 parses the catalogue as AST; it must see the same dict."""
    catalogue = load_stream_catalogue(graph)
    assert catalogue is not None, f"{STREAMS_MODULE} not found in lint scope"
    assert catalogue == STREAM_NAMES
    for name in STREAM_NAMES:
        assert stream_name_declared(name, catalogue) == stream_declared(name)
