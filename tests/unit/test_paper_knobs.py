"""Unit tests for the benchmark-scale environment knobs in
repro.experiments.paper."""

import pytest

from repro.experiments import bench_processes, bench_seeds


class TestBenchSeeds:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_seeds() == [0, 1]

    def test_smoke(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert bench_seeds() == [0]

    def test_full_matches_paper(self, monkeypatch):
        """§5.2: 'the results are averaged over 5 simulation runs'."""
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_seeds() == [0, 1, 2, 3, 4]

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "FULL")
        assert len(bench_seeds()) == 5

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "enormous")
        with pytest.raises(ValueError):
            bench_seeds()


class TestBenchProcesses:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "3")
        assert bench_processes() == 3

    def test_env_floor_of_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "0")
        assert bench_processes() == 1

    def test_default_bounded(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        assert 1 <= bench_processes() <= 8
