"""Unit tests for repro.core.states and repro.core.messages."""

import pytest

from repro.core import (
    LEGAL_TRANSITIONS,
    DeathCause,
    NodeMode,
    ProbeMessage,
    ReplyMessage,
    check_transition,
)


class TestStates:
    def test_figure1_edges_present(self):
        assert NodeMode.PROBING in LEGAL_TRANSITIONS[NodeMode.SLEEPING]
        assert NodeMode.SLEEPING in LEGAL_TRANSITIONS[NodeMode.PROBING]
        assert NodeMode.WORKING in LEGAL_TRANSITIONS[NodeMode.PROBING]

    def test_overlap_resolution_edge(self):
        """§4 adds Working -> Sleeping."""
        assert NodeMode.SLEEPING in LEGAL_TRANSITIONS[NodeMode.WORKING]

    def test_death_reachable_from_all_live_modes(self):
        for mode in (NodeMode.SLEEPING, NodeMode.PROBING, NodeMode.WORKING):
            assert NodeMode.DEAD in LEGAL_TRANSITIONS[mode]

    def test_dead_is_terminal(self):
        assert LEGAL_TRANSITIONS[NodeMode.DEAD] == frozenset()

    def test_no_sleeping_to_working_shortcut(self):
        """Figure 1: a node must probe before working."""
        assert NodeMode.WORKING not in LEGAL_TRANSITIONS[NodeMode.SLEEPING]

    def test_check_transition_accepts_legal(self):
        check_transition(NodeMode.SLEEPING, NodeMode.PROBING)

    def test_check_transition_rejects_illegal(self):
        with pytest.raises(ValueError):
            check_transition(NodeMode.SLEEPING, NodeMode.WORKING)
        with pytest.raises(ValueError):
            check_transition(NodeMode.DEAD, NodeMode.SLEEPING)

    def test_death_causes(self):
        assert DeathCause.ENERGY.value == "energy"
        assert DeathCause.FAILURE.value == "failure"


class TestProbeMessage:
    def test_wakeup_key(self):
        message = ProbeMessage(prober_id=7, wakeup_seq=3, probe_index=1)
        assert message.wakeup_key == (7, 3)

    def test_probe_index_excluded_from_key(self):
        """All frames of one wakeup share the key (measurement dedup)."""
        first = ProbeMessage(7, 3, 0)
        second = ProbeMessage(7, 3, 2)
        assert first.wakeup_key == second.wakeup_key

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeMessage(1, -1)
        with pytest.raises(ValueError):
            ProbeMessage(1, 0, probe_index=-2)

    def test_frozen(self):
        with pytest.raises(Exception):
            ProbeMessage(1, 0).wakeup_seq = 5


class TestReplyMessage:
    def test_carries_adaptive_sleeping_feedback(self):
        reply = ReplyMessage(
            worker_id=2, measured_rate=0.05, desired_rate=0.02, working_duration=120.0
        )
        assert reply.measured_rate == 0.05
        assert reply.desired_rate == 0.02
        assert reply.working_duration == 120.0

    def test_none_measurement_allowed(self):
        reply = ReplyMessage(2, None, 0.02, 0.0)
        assert reply.measured_rate is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplyMessage(2, 0.0, 0.02, 0.0)
        with pytest.raises(ValueError):
            ReplyMessage(2, 0.05, 0.0, 0.0)
        with pytest.raises(ValueError):
            ReplyMessage(2, 0.05, 0.02, -1.0)
