"""Unit tests for repro.core.adaptive_sleep (the §2.2 machinery)."""

import random

import pytest

from repro.core import RateEstimator, select_feedback, sleep_duration, updated_rate


class TestRateEstimatorWindowed:
    """The paper's literal k-interval estimator."""

    def make(self, k=4):
        return RateEstimator(k, mode="windowed")

    def test_no_measurement_before_window_completes(self):
        estimator = self.make(k=4)
        for i in range(4):  # first probe initializes, 3 more counted
            estimator.on_probe(float(i), ("n", i))
        assert estimator.measured_rate is None

    def test_window_completion_yields_rate(self):
        estimator = self.make(k=4)
        # First probe at t=0 initializes; probes at 10, 20, 30, 40 count.
        result = None
        for i, t in enumerate((0.0, 10.0, 20.0, 30.0, 40.0)):
            result = estimator.on_probe(t, ("n", i))
        assert result == pytest.approx(4 / 40.0)
        assert estimator.measured_rate == pytest.approx(0.1)
        assert estimator.windows_completed == 1

    def test_window_restarts_after_measurement(self):
        estimator = self.make(k=2)
        for i, t in enumerate((0.0, 5.0, 10.0)):
            estimator.on_probe(t, ("n", i))
        assert estimator.measured_rate == pytest.approx(2 / 10.0)
        # Next window: probes at 20, 30 -> rate 2/(30-10)
        estimator.on_probe(20.0, ("n", 10))
        estimator.on_probe(30.0, ("n", 11))
        assert estimator.measured_rate == pytest.approx(0.1)
        assert estimator.windows_completed == 2

    def test_estimate_returns_last_window_only(self):
        estimator = self.make(k=2)
        assert estimator.estimate(100.0) is None
        for i, t in enumerate((0.0, 5.0, 10.0)):
            estimator.on_probe(t, ("n", i))
        assert estimator.estimate(1e6) == pytest.approx(0.2)  # stale forever

    def test_simultaneous_arrivals_restart_window(self):
        estimator = self.make(k=2)
        for i in range(3):
            estimator.on_probe(0.0, ("n", i))
        assert estimator.measured_rate is None


class TestRateEstimatorRunning:
    def test_silence_decays_estimate(self):
        estimator = RateEstimator(32, mode="running", min_horizon_s=50.0, start_time=0.0)
        assert estimator.estimate(40.0) is None  # below horizon, no window yet
        assert estimator.estimate(100.0) == pytest.approx(0.5 / 100.0)
        assert estimator.estimate(1000.0) == pytest.approx(0.5 / 1000.0)

    def test_running_estimate_tracks_arrivals(self):
        estimator = RateEstimator(32, mode="running", min_horizon_s=50.0, start_time=0.0)
        for i in range(10):
            estimator.on_probe(10.0 * (i + 1), ("n", i))
        assert estimator.estimate(100.0) == pytest.approx(10.5 / 100.0)

    def test_below_horizon_falls_back_to_window(self):
        estimator = RateEstimator(2, mode="running", min_horizon_s=50.0, start_time=0.0)
        estimator.on_probe(10.0, ("a", 0))
        estimator.on_probe(20.0, ("b", 0))  # window completes: rate 2/20
        # Window restarted at t=20; at t=30 the new window is younger than
        # the horizon, so the completed-window value is reported.
        assert estimator.estimate(30.0) == pytest.approx(0.1)

    def test_window_restart_at_k(self):
        estimator = RateEstimator(3, mode="running", min_horizon_s=1.0, start_time=0.0)
        for i, t in enumerate((10.0, 20.0, 30.0)):
            estimator.on_probe(t, ("n", i))
        assert estimator.windows_completed == 1
        assert estimator.measured_rate == pytest.approx(3 / 30.0)
        assert estimator.pending_count == 0

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            RateEstimator(4, mode="running", min_horizon_s=0.0)


class TestDedup:
    def test_same_wakeup_counted_once(self):
        estimator = RateEstimator(32, mode="running", min_horizon_s=1.0, start_time=0.0)
        for index in range(3):  # three frames, one wakeup
            estimator.on_probe(10.0 + 0.01 * index, ("node7", 0))
        assert estimator.pending_count == 1

    def test_distinct_wakeups_counted(self):
        estimator = RateEstimator(32, mode="running", min_horizon_s=1.0, start_time=0.0)
        estimator.on_probe(10.0, ("node7", 0))
        estimator.on_probe(20.0, ("node7", 1))
        estimator.on_probe(30.0, ("node8", 0))
        assert estimator.pending_count == 3

    def test_dedupe_window_bounded(self):
        estimator = RateEstimator(64, dedupe_window=2, mode="running",
                                  min_horizon_s=1.0, start_time=0.0)
        estimator.on_probe(1.0, ("a", 0))
        estimator.on_probe(2.0, ("b", 0))
        estimator.on_probe(3.0, ("c", 0))  # evicts ("a", 0) from memory
        estimator.on_probe(4.0, ("a", 0))  # counted again: memory bounded
        assert estimator.pending_count == 4

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            RateEstimator(4, mode="sideways")

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            RateEstimator(0)


class TestUpdatedRate:
    def test_equation_two(self):
        """lambda_new = lambda * lambda_d / lambda_hat."""
        assert updated_rate(0.1, 0.05, 0.02, 1e-6, 10.0) == pytest.approx(0.04)

    def test_fixed_point(self):
        """When lambda_hat == lambda_d the rate is unchanged."""
        assert updated_rate(0.07, 0.02, 0.02, 1e-6, 10.0) == pytest.approx(0.07)

    def test_increases_when_measured_low(self):
        assert updated_rate(0.01, 0.005, 0.02, 1e-6, 10.0) == pytest.approx(0.04)

    def test_min_clamp(self):
        assert updated_rate(0.001, 10.0, 0.02, 1e-3, 10.0) == 1e-3

    def test_max_clamp(self):
        assert updated_rate(1.0, 0.001, 0.02, 1e-6, 2.0) == 2.0

    def test_adjust_factor_caps_decrease(self):
        result = updated_rate(0.1, 1.0, 0.02, 1e-6, 10.0, max_adjust_factor=4.0)
        assert result == pytest.approx(0.1 / 4.0)

    def test_adjust_factor_caps_increase(self):
        result = updated_rate(0.001, 0.0001, 0.02, 1e-6, 10.0, max_adjust_factor=4.0)
        assert result == pytest.approx(0.004)

    def test_uncapped_when_none(self):
        result = updated_rate(0.1, 1.0, 0.02, 1e-6, 10.0, max_adjust_factor=None)
        assert result == pytest.approx(0.002)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            updated_rate(0.0, 0.02, 0.02, 1e-6, 10.0)
        with pytest.raises(ValueError):
            updated_rate(0.1, 0.0, 0.02, 1e-6, 10.0)
        with pytest.raises(ValueError):
            updated_rate(0.1, 0.02, 0.02, 1e-6, 10.0, max_adjust_factor=0.5)

    def test_aggregate_convergence_one_step(self):
        """§2.2.1: if all sleepers adapt against an accurate measurement,
        the new aggregate equals lambda_d."""
        rates = [0.11, 0.07, 0.02, 0.30]
        aggregate = sum(rates)
        desired = 0.02
        new_rates = [
            updated_rate(r, aggregate, desired, 1e-9, 100.0) for r in rates
        ]
        assert sum(new_rates) == pytest.approx(desired)


class TestSelectFeedback:
    def test_largest_rule(self):
        assert select_feedback([0.01, 0.05, 0.02]) == 0.05

    def test_first_rule(self):
        assert select_feedback([0.01, 0.05], largest=False) == 0.01

    def test_ignores_none(self):
        assert select_feedback([None, 0.03, None]) == 0.03

    def test_all_none(self):
        assert select_feedback([None, None]) is None

    def test_empty(self):
        assert select_feedback([]) is None


class TestSleepDuration:
    def test_positive(self):
        rng = random.Random(1)
        for _ in range(100):
            assert sleep_duration(rng, 0.1) > 0

    def test_mean_is_inverse_rate(self):
        rng = random.Random(2)
        draws = [sleep_duration(rng, 0.1) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(10.0, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            sleep_duration(random.Random(1), 0.0)
