"""Unit tests for repro.sim.trace collectors."""

import pytest

from repro.sim import CounterSet, SeriesRecorder, TimeWeightedValue, TraceLog


class TestCounterSet:
    def test_starts_at_zero(self):
        assert CounterSet().get("anything") == 0

    def test_incr_default_one(self):
        counters = CounterSet()
        counters.incr("a")
        counters.incr("a")
        assert counters.get("a") == 2

    def test_incr_amount(self):
        counters = CounterSet()
        counters.incr("a", 5)
        assert counters.get("a") == 5

    def test_as_dict_snapshot(self):
        counters = CounterSet()
        counters.incr("x")
        snapshot = counters.as_dict()
        counters.incr("x")
        assert snapshot == {"x": 1}


class TestTimeWeightedValue:
    def test_constant_signal_mean(self):
        twv = TimeWeightedValue(initial=3.0)
        assert twv.mean(10.0) == pytest.approx(3.0)

    def test_step_change_mean(self):
        twv = TimeWeightedValue(initial=0.0)
        twv.update(10.0, 5.0)
        assert twv.mean(20.0) == pytest.approx(2.5)

    def test_integral(self):
        twv = TimeWeightedValue(initial=2.0)
        twv.update(5.0, 4.0)
        assert twv.integral(10.0) == pytest.approx(2.0 * 5 + 4.0 * 5)

    def test_add_delta(self):
        twv = TimeWeightedValue(initial=1.0)
        twv.add(5.0, 2.0)
        assert twv.value == 3.0

    def test_time_backwards_rejected(self):
        twv = TimeWeightedValue()
        twv.update(5.0, 1.0)
        with pytest.raises(ValueError):
            twv.update(4.0, 2.0)

    def test_nonzero_start_time(self):
        twv = TimeWeightedValue(initial=2.0, start_time=10.0)
        assert twv.mean(20.0) == pytest.approx(2.0)

    def test_zero_span_mean_is_current_value(self):
        # At now == start_time nothing has been integrated; the mean is
        # defined as the only value the signal has ever held, not 0/0.
        twv = TimeWeightedValue(initial=7.5, start_time=10.0)
        assert twv.mean(10.0) == 7.5

    def test_zero_span_mean_after_zero_dt_update(self):
        twv = TimeWeightedValue(initial=1.0, start_time=3.0)
        twv.update(3.0, 9.0)  # zero-duration step at the start instant
        assert twv.mean(3.0) == 9.0

    def test_backwards_mean_window_rejected(self):
        twv = TimeWeightedValue(initial=1.0, start_time=10.0)
        with pytest.raises(ValueError, match="before it starts"):
            twv.mean(9.0)


class TestSeriesRecorder:
    def test_record_and_read(self):
        series = SeriesRecorder()
        series.record("s", 1.0, 0.5)
        series.record("s", 2.0, 0.7)
        assert series.samples("s") == [(1.0, 0.5), (2.0, 0.7)]

    def test_missing_series_empty(self):
        assert SeriesRecorder().samples("nope") == []

    def test_last(self):
        series = SeriesRecorder()
        assert series.last("s") is None
        series.record("s", 1.0, 9.0)
        assert series.last("s") == (1.0, 9.0)

    def test_names_sorted(self):
        series = SeriesRecorder()
        series.record("b", 0.0, 0.0)
        series.record("a", 0.0, 0.0)
        assert series.names() == ["a", "b"]

    def test_first_time_below(self):
        series = SeriesRecorder()
        for t, v in [(0, 1.0), (10, 0.95), (20, 0.85), (30, 0.5)]:
            series.record("cov", t, v)
        assert series.first_time_below("cov", 0.9) == 20

    def test_first_time_below_never(self):
        series = SeriesRecorder()
        series.record("cov", 0, 1.0)
        assert series.first_time_below("cov", 0.9) is None


class TestTraceLog:
    def test_disabled_by_default(self):
        log = TraceLog()
        log.log(0.0, "evt", "detail")
        assert len(log) == 0

    def test_enabled_records(self):
        log = TraceLog(enabled=True)
        log.log(1.0, "probe", 42)
        assert log.entries() == [(1.0, "probe", (42,))]

    def test_kind_filter(self):
        log = TraceLog(enabled=True)
        log.log(1.0, "a")
        log.log(2.0, "b")
        assert [e[1] for e in log.entries("a")] == ["a"]

    def test_capacity_cap(self):
        log = TraceLog(enabled=True, capacity=2)
        for i in range(5):
            log.log(float(i), "x")
        assert len(log) == 2

    def test_capacity_refusals_are_counted(self):
        log = TraceLog(enabled=True, capacity=2)
        for i in range(5):
            log.log(float(i), "x")
        assert log.dropped == 3

    def test_disabled_log_drops_nothing(self):
        log = TraceLog(enabled=False, capacity=1)
        for i in range(5):
            log.log(float(i), "x")
        assert log.dropped == 0  # not recording is not dropping

    def test_unbounded_log_never_drops(self):
        log = TraceLog(enabled=True)
        for i in range(100):
            log.log(float(i), "x")
        assert log.dropped == 0 and len(log) == 100
