"""The strict-typing gate: ``repro.sim`` and ``repro.lint`` must pass mypy
--strict (configured in pyproject.toml; the remaining packages are on the
ignore burn-down list).

Skipped when mypy is not installed (the minimal runtime container); CI
installs the dev extras and runs both this test and the standalone gate.
"""

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_mypy_config_gate_passes():
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "pyproject.toml"), "--no-incremental"]
    )
    assert status == 0, f"mypy gate failed:\n{stdout}\n{stderr}"
