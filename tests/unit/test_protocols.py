"""Unit tests for the protocol registry (``repro.protocols``)."""

import pytest

from repro.experiments import Scenario
from repro.protocols import (
    PEAS_SPEC,
    PROTOCOLS,
    ProtocolSpec,
    get_protocol,
    protocol_names,
    register_protocol,
)

EXPECTED = ["afeca", "always_on", "duty_cycle", "gaf", "peas", "span", "synchronized"]


class TestRegistry:
    def test_all_protocols_registered(self):
        assert protocol_names() == EXPECTED

    def test_peas_is_the_peas_kind(self):
        spec = get_protocol("peas")
        assert spec is PEAS_SPEC
        assert spec.kind == "peas"

    def test_baselines_are_baseline_kind(self):
        for name in EXPECTED:
            if name == "peas":
                continue
            assert get_protocol(name).kind == "baseline", name

    def test_every_spec_has_a_description(self):
        for name in EXPECTED:
            assert get_protocol(name).description

    def test_unknown_protocol_raises_with_choices(self):
        with pytest.raises(KeyError) as exc:
            get_protocol("csma")
        message = str(exc.value)
        assert "csma" in message
        assert "peas" in message  # lists the valid choices

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_protocol(PEAS_SPEC)

    def test_replace_allows_reregistration(self):
        spec = PROTOCOLS["peas"]
        register_protocol(spec, replace=True)
        assert PROTOCOLS["peas"] is spec

    def test_import_is_idempotent(self):
        import importlib

        import repro.protocols

        importlib.reload(repro.protocols)
        assert repro.protocols.protocol_names() == EXPECTED


class TestScenarioProtocolField:
    def test_default_is_peas(self):
        assert Scenario().protocol == "peas"

    def test_baseline_protocols_accepted(self):
        assert Scenario(protocol="gaf").protocol == "gaf"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError) as exc:
            Scenario(protocol="unknown")
        assert "unknown" in str(exc.value)

    def test_with_switches_protocol(self):
        base = Scenario()
        assert base.with_(protocol="span").protocol == "span"
        assert base.protocol == "peas"


class TestProtocolRunDefaults:
    def test_optional_hooks_default_sensibly(self):
        from repro.protocols.base import ProtocolRun

        class Minimal(ProtocolRun):
            def start(self):
                pass

            def topology(self, scenario):
                raise NotImplementedError

        run = Minimal()
        assert run.total_wakeups() == 0
        assert run.channel_counters() == {}
        assert run.report_path_hook(Scenario()) is None
        assert run.mac_layout(Scenario()) is None

    def test_spec_is_immutable(self):
        with pytest.raises(Exception):
            PEAS_SPEC.name = "other"  # type: ignore[misc]

    def test_spec_fields(self):
        spec = ProtocolSpec(
            name="x", kind="baseline", description="d", build=lambda *a: None
        )
        assert spec.name == "x"
