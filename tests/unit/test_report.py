"""Unit tests for the textual run-report renderer."""

import pytest

from repro.experiments import RunResult, render_report, sparkline, timeline_chart


def make_result(with_series=True):
    result = RunResult(
        num_nodes=320,
        seed=7,
        failure_rate_per_5000s=10.66,
        end_time=15000.0,
        coverage_lifetimes={3: 12000.0, 4: 11000.0, 5: None},
        delivery_lifetime=13000.0,
        total_wakeups=14000,
        energy_total_j=17000.0,
        energy_overhead_j=80.0,
        failures_injected=40,
    )
    if with_series:
        result.series["working_count"] = [
            (float(t), 100.0 + (t % 500) / 10.0) for t in range(0, 15000, 100)
        ]
        result.series["coverage_3"] = [
            (float(t), min(1.0, t / 300.0)) for t in range(0, 15000, 100)
        ]
    result.extras["gap_mean_s"] = 120.0
    result.extras["gap_p95_s"] = 600.0
    return result


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_full_blocks(self):
        line = sparkline([5.0] * 10, width=10)
        assert len(line) == 10
        assert set(line) == {"@"}

    def test_monotone_series_monotone_ramp(self):
        line = sparkline(list(range(100)), width=10)
        levels = " .:-=+*#%@"
        indices = [levels.index(ch) for ch in line]
        assert indices == sorted(indices)

    def test_width_respected(self):
        assert len(sparkline(list(range(1000)), width=25)) == 25

    def test_short_series(self):
        assert len(sparkline([1.0, 2.0], width=60)) == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestTimelineChart:
    def test_contains_label_and_stats(self):
        chart = timeline_chart([(0.0, 1.0), (10.0, 3.0)], "demo")
        assert "demo" in chart
        assert "min 1.00" in chart
        assert "max 3.00" in chart
        assert "0s .. 10s" in chart

    def test_empty_samples(self):
        assert "(no samples)" in timeline_chart([], "demo")


class TestRenderReport:
    def test_summary_fields_present(self):
        text = render_report(make_result())
        assert "320 nodes" in text
        assert "3-coverage lifetime: 12000" in text
        assert "5-coverage lifetime: -" in text
        assert "delivery lifetime: 13000" in text
        assert "overhead 80.00 J" in text
        assert "replacement gaps" in text

    def test_charts_rendered_for_series(self):
        text = render_report(make_result())
        assert "working nodes over time" in text
        assert "3-coverage fraction" in text

    def test_hint_without_series(self):
        text = render_report(make_result(with_series=False))
        assert "keep_series=True" in text
