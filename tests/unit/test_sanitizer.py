"""SimSanitizer: every invariant trips on deliberately corrupted state, the
wiring costs nothing when off, and check accounting is truthful.
"""

import pytest

from repro.core.states import NodeMode
from repro.net import Packet
from repro.sim import InvariantViolation, SimSanitizer, Simulator
from repro.sim.sanitizer import DEFAULT_SWEEP_PERIOD

from tests.helpers import make_network


def sanitized_network(**kwargs):
    """A started network with the sanitizer fully wired, run for a while."""
    sim, network = make_network(**kwargs)
    sanitizer = SimSanitizer()
    sanitizer.install(sim)
    sanitizer.attach_network(network)
    network.start()
    sim.run(until=200.0)
    return sim, network, sanitizer


# ----------------------------------------------------------------- clean runs
def test_clean_run_passes_and_counts_checks():
    sim, network, sanitizer = sanitized_network(num_nodes=25)
    sanitizer.sweep(sim.now)
    report = sanitizer.report()
    assert report["events_checked"] > 0
    assert report["transmissions_checked"] > 0
    assert report["sweeps"] > 0
    assert report["node_checks"] >= len(network.nodes)
    assert sanitizer.total_checks == (
        report["events_checked"]
        + report["transmissions_checked"]
        + report["node_checks"]
    )


def test_off_means_nothing_installed():
    sim, network = make_network(num_nodes=10)
    assert sim.pre_event_hooks == []
    assert network.channel.sanitizer is None
    network.start()
    sim.run(until=50.0)  # no checks, no errors


def test_install_is_exclusive_and_uninstall_detaches():
    sim = Simulator()
    sanitizer = SimSanitizer()
    sanitizer.install(sim)
    with pytest.raises(RuntimeError):
        sanitizer.install(sim)
    assert sim.pre_event_hooks == [sanitizer._on_event]
    sanitizer.uninstall()
    assert sim.pre_event_hooks == []


def test_sweep_period_validation():
    with pytest.raises(ValueError):
        SimSanitizer(sweep_period=0)
    assert SimSanitizer().sweep_period == DEFAULT_SWEEP_PERIOD


# ------------------------------------------------------------------ invariants
def test_monotonic_time_violation_trips():
    sim = Simulator()
    sanitizer = SimSanitizer()
    sanitizer.install(sim)
    sim.schedule(1.0, lambda: None)
    sanitizer._last_time = 10.0  # simulate an earlier event far in the future
    with pytest.raises(InvariantViolation, match="backwards"):
        sim.run()


def test_negative_battery_trips():
    sim, network, sanitizer = sanitized_network(num_nodes=10)
    node = next(iter(network.nodes.values()))
    node.battery._remaining = -1.0
    with pytest.raises(InvariantViolation, match="negative"):
        sanitizer.sweep(sim.now)


def test_battery_clock_ahead_of_sim_trips():
    sim, network, sanitizer = sanitized_network(num_nodes=10)
    node = next(iter(network.nodes.values()))
    node.battery._last_update = sim.now + 1e6
    with pytest.raises(InvariantViolation, match="ran ahead"):
        sanitizer.sweep(sim.now)


def test_dead_without_cause_trips():
    sim, network, sanitizer = sanitized_network(num_nodes=10)
    node_id = next(iter(network.nodes))
    network.kill(node_id)
    node = network.nodes[node_id]
    assert node.mode is NodeMode.DEAD
    node.death_cause = None
    with pytest.raises(InvariantViolation, match="without a death cause"):
        sanitizer.sweep(sim.now)


def test_corrupt_estimator_window_trips():
    sim, network, sanitizer = sanitized_network(num_nodes=25)
    workers = [n for n in network.nodes.values()
               if n.mode is NodeMode.WORKING and n.estimator is not None]
    assert workers, "a 25-node network must have working nodes by t=200"
    workers[0].estimator._count = workers[0].estimator.k + 1
    with pytest.raises(InvariantViolation, match="window count"):
        sanitizer.sweep(sim.now)


def test_transmit_while_not_listening_trips():
    sim, network, sanitizer = sanitized_network(num_nodes=25)
    sleeper = next(
        (n for n in network.nodes.values()
         if n.alive and not n.is_listening()),
        None,
    )
    assert sleeper is not None, "a 25-node network must have sleepers by t=200"
    packet = Packet(kind="PROBE", sender=sleeper.node_id)
    with pytest.raises(InvariantViolation, match="not radio-active"):
        network.channel.transmit(
            sleeper.node_id, packet, network.config.probe_range_m
        )


def test_periodic_sweep_catches_corruption_mid_run():
    # Corrupt a battery from inside the simulation: the next periodic sweep
    # (every DEFAULT_SWEEP_PERIOD events) must trip without an explicit call.
    sim, network = make_network(num_nodes=25)
    sanitizer = SimSanitizer(sweep_period=16)
    sanitizer.install(sim)
    sanitizer.attach_network(network)
    network.start()

    def corrupt():
        node = next(iter(network.nodes.values()))
        node.battery._remaining = -5.0

    sim.schedule(100.0, corrupt)
    with pytest.raises(InvariantViolation, match="negative"):
        sim.run(until=400.0)
