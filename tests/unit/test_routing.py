"""Unit tests for the GRAB-like routing substrate."""

import random

import pytest

from repro.net import Field, SpatialGrid
from repro.routing import (
    CostField,
    GrabRouter,
    ReportTraffic,
    WorkingTopology,
)
from repro.sim import Simulator


def make_topology(comm_range=10.0, field=50.0):
    grid = SpatialGrid(Field(field, field), cell_size=3.0)
    return WorkingTopology(grid, comm_range=comm_range), grid


class TestWorkingTopology:
    def test_add_creates_edges_within_range(self):
        topo, grid = make_topology()
        grid.insert(0, (10.0, 10.0))
        grid.insert(1, (15.0, 10.0))
        grid.insert(2, (30.0, 30.0))
        topo.add_working(0, (10.0, 10.0))
        topo.add_working(1, (15.0, 10.0))
        topo.add_working(2, (30.0, 30.0))
        assert topo.neighbors(0) == {1}
        assert topo.neighbors(2) == set()

    def test_remove_cleans_edges(self):
        topo, grid = make_topology()
        for i, p in enumerate([(10.0, 10.0), (15.0, 10.0)]):
            grid.insert(i, p)
            topo.add_working(i, p)
        topo.remove_working(1)
        assert topo.neighbors(0) == set()
        assert 1 not in topo

    def test_duplicate_add_rejected(self):
        topo, grid = make_topology()
        grid.insert(0, (10.0, 10.0))
        topo.add_working(0, (10.0, 10.0))
        with pytest.raises(KeyError):
            topo.add_working(0, (10.0, 10.0))

    def test_version_bumps_on_change(self):
        topo, grid = make_topology()
        grid.insert(0, (10.0, 10.0))
        v0 = topo.version
        topo.add_working(0, (10.0, 10.0))
        assert topo.version > v0

    def test_only_working_nodes_are_neighbors(self):
        """Sleeping nodes in the spatial grid must not appear as edges."""
        topo, grid = make_topology()
        grid.insert(0, (10.0, 10.0))
        grid.insert(1, (12.0, 10.0))  # in grid but not working
        topo.add_working(0, (10.0, 10.0))
        assert topo.neighbors(0) == set()

    def test_working_within(self):
        topo, grid = make_topology()
        grid.insert(0, (2.0, 2.0))
        grid.insert(1, (40.0, 40.0))
        topo.add_working(0, (2.0, 2.0))
        topo.add_working(1, (40.0, 40.0))
        assert topo.working_within((0.0, 0.0), 5.0) == [0]

    def test_connected_components(self):
        topo, grid = make_topology()
        positions = {0: (0.0, 0.0), 1: (5.0, 0.0), 2: (40.0, 40.0)}
        for i, p in positions.items():
            grid.insert(i, p)
            topo.add_working(i, p)
        components = sorted(topo.connected_components(), key=len, reverse=True)
        assert {0, 1} in components
        assert {2} in components

    def test_invalid_range(self):
        grid = SpatialGrid(Field(10.0, 10.0), cell_size=3.0)
        with pytest.raises(ValueError):
            WorkingTopology(grid, comm_range=0.0)


class TestCostField:
    def test_hop_costs_from_sink(self):
        topo, grid = make_topology()
        chain = {0: (45.0, 45.0), 1: (36.0, 45.0), 2: (27.0, 45.0)}
        for i, p in chain.items():
            grid.insert(i, p)
            topo.add_working(i, p)
        field = CostField(topo, sink=(50.0, 50.0), attach_radius=10.0)
        assert field.cost(0) == 0
        assert field.cost(1) == 1
        assert field.cost(2) == 2

    def test_unreachable_node_has_no_cost(self):
        topo, grid = make_topology()
        grid.insert(0, (45.0, 45.0))
        grid.insert(1, (5.0, 5.0))
        topo.add_working(0, (45.0, 45.0))
        topo.add_working(1, (5.0, 5.0))
        field = CostField(topo, sink=(50.0, 50.0), attach_radius=10.0)
        assert field.cost(1) is None

    def test_lazy_rebuild(self):
        topo, grid = make_topology()
        grid.insert(0, (45.0, 45.0))
        topo.add_working(0, (45.0, 45.0))
        field = CostField(topo, sink=(50.0, 50.0), attach_radius=10.0)
        field.costs()
        field.costs()
        assert field.rebuild_count == 1
        grid.insert(1, (36.0, 45.0))
        topo.add_working(1, (36.0, 45.0))
        field.costs()
        assert field.rebuild_count == 2

    def test_invalid_radius(self):
        topo, _ = make_topology()
        with pytest.raises(ValueError):
            CostField(topo, (0.0, 0.0), attach_radius=0.0)


def build_corridor():
    """A working chain from near (0,0) to near (50,50)."""
    topo, grid = make_topology()
    positions = [(5.0 * i, 5.0 * i) for i in range(11)]  # diagonal, 7.07m apart
    for i, p in enumerate(positions):
        grid.insert(i, p)
        topo.add_working(i, p)
    return topo, grid


class TestGrabRouter:
    def test_delivers_over_connected_chain(self):
        topo, _ = build_corridor()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        outcome = router.deliver()
        assert outcome.delivered
        assert outcome.hops >= 1

    def test_no_source_attachment(self):
        topo, grid = make_topology()
        grid.insert(0, (45.0, 45.0))
        topo.add_working(0, (45.0, 45.0))
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        outcome = router.deliver()
        assert not outcome.delivered
        assert "source" in outcome.reason

    def test_disconnected_reports_failure(self):
        topo, grid = make_topology()
        for i, p in [(0, (3.0, 3.0)), (1, (47.0, 47.0))]:
            grid.insert(i, p)
            topo.add_working(i, p)
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        outcome = router.deliver()
        assert not outcome.delivered
        assert "disconnected" in outcome.reason

    def test_delivery_reacts_to_topology_change(self):
        topo, _ = build_corridor()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        assert router.deliver().delivered
        topo.remove_working(5)  # cut the chain
        assert not router.deliver().delivered

    def test_lossy_links_drop_some_reports(self):
        topo, _ = build_corridor()
        router = GrabRouter(
            topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0,
            link_loss=0.4, mesh_width=1, rng=random.Random(5),
        )
        outcomes = [router.deliver().delivered for _ in range(300)]
        ratio = sum(outcomes) / len(outcomes)
        assert 0.0 < ratio < 0.5

    def test_mesh_width_improves_delivery(self):
        topo, _ = build_corridor()
        def ratio(width, seed):
            router = GrabRouter(
                topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0,
                link_loss=0.4, mesh_width=width, rng=random.Random(seed),
            )
            return sum(router.deliver().delivered for _ in range(300)) / 300
        assert ratio(3, 1) > ratio(1, 1)

    def test_validation(self):
        topo, _ = make_topology()
        with pytest.raises(ValueError):
            GrabRouter(topo, (0, 0), (1, 1), 10.0, link_loss=1.0)
        with pytest.raises(ValueError):
            GrabRouter(topo, (0, 0), (1, 1), 10.0, mesh_width=0)


class TestReportTraffic:
    def test_counts_generated_and_delivered(self):
        topo, _ = build_corridor()
        sim = Simulator()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        traffic = ReportTraffic(sim, router, interval_s=10.0)
        traffic.start()
        sim.run(until=100.0)
        assert traffic.generated == 10
        assert traffic.delivered == 10
        assert traffic.success_ratio() == 1.0

    def test_ratio_declines_after_cut(self):
        topo, _ = build_corridor()
        sim = Simulator()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        traffic = ReportTraffic(sim, router, interval_s=10.0)
        traffic.start()
        sim.run(until=100.0)
        topo.remove_working(5)
        sim.run(until=200.0)
        assert traffic.delivered == 10
        assert traffic.success_ratio() == pytest.approx(0.5)

    def test_delivery_lifetime_crossing(self):
        topo, _ = build_corridor()
        sim = Simulator()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        traffic = ReportTraffic(sim, router, interval_s=10.0, threshold=0.9)
        traffic.start()
        sim.schedule(105.0, topo.remove_working, 5)
        sim.run(until=300.0)
        lifetime = traffic.delivery_lifetime()
        # 10 delivered of 12 generated crosses 90% at t=120.
        assert lifetime == pytest.approx(120.0)

    def test_delivery_lifetime_extrapolated_when_censored(self):
        topo, _ = build_corridor()
        sim = Simulator()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        traffic = ReportTraffic(sim, router, interval_s=10.0, threshold=0.9)
        traffic.start()
        sim.run(until=100.0)
        traffic.stop()
        # 10/10 delivered; ratio would cross 0.9 at 10 * 10 / 0.9.
        assert traffic.delivery_lifetime() == pytest.approx(10 * 10.0 / 0.9)

    def test_never_achieved_returns_none(self):
        topo, grid = make_topology()  # empty: nothing ever delivers
        sim = Simulator()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        traffic = ReportTraffic(sim, router, interval_s=10.0)
        traffic.start()
        sim.run(until=100.0)
        assert traffic.delivery_lifetime() is None

    def test_validation(self):
        topo, _ = make_topology()
        sim = Simulator()
        router = GrabRouter(topo, (0, 0), (1, 1), 10.0)
        with pytest.raises(ValueError):
            ReportTraffic(sim, router, interval_s=0.0)
        with pytest.raises(ValueError):
            ReportTraffic(sim, router, threshold=1.5)


class TestGradientPath:
    def test_path_descends_cost_field(self):
        topo, _ = build_corridor()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        path = router.gradient_path()
        assert path is not None
        costs = router.cost_field.costs()
        values = [costs[node] for node in path]
        assert values == sorted(values, reverse=True)
        assert values[-1] == 0  # ends on the sink attachment ring

    def test_path_edges_within_comm_range(self):
        from repro.net import distance
        topo, _ = build_corridor()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        path = router.gradient_path()
        for a, b in zip(path, path[1:]):
            assert distance(topo.position(a), topo.position(b)) <= 10.0

    def test_no_path_returns_none(self):
        topo, grid = make_topology()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        assert router.gradient_path() is None

    def test_outcome_carries_path(self):
        topo, _ = build_corridor()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        outcome = router.deliver()
        assert outcome.path is not None
        assert len(outcome.path) == outcome.hops


class TestPathHook:
    def test_hook_called_with_path(self):
        topo, _ = build_corridor()
        sim = Simulator()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        seen = []
        traffic = ReportTraffic(sim, router, interval_s=10.0,
                                path_hook=seen.append)
        traffic.start()
        sim.run(until=30.0)
        assert len(seen) == 3
        assert all(isinstance(path, list) and path for path in seen)

    def test_hook_not_called_without_path(self):
        topo, grid = make_topology()
        sim = Simulator()
        router = GrabRouter(topo, (0.0, 0.0), (50.0, 50.0), attach_radius=10.0)
        seen = []
        traffic = ReportTraffic(sim, router, interval_s=10.0,
                                path_hook=seen.append)
        traffic.start()
        sim.run(until=30.0)
        assert seen == []
