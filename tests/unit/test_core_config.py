"""Unit tests for repro.core.config.PEASConfig."""

import pytest

from repro.core import PEASConfig


class TestDefaults:
    def test_paper_values(self):
        config = PEASConfig()
        assert config.probe_range_m == 3.0
        assert config.initial_rate_hz == 0.1
        assert config.desired_rate_hz == 0.02
        assert config.measurement_window_k == 32
        assert config.num_probes == 3
        assert config.probe_window_s == pytest.approx(0.100)

    def test_desired_gap(self):
        assert PEASConfig().desired_gap_s() == pytest.approx(50.0)

    def test_mean_initial_sleep(self):
        assert PEASConfig().mean_initial_sleep_s() == pytest.approx(10.0)

    def test_effective_horizon_default_two_gaps(self):
        assert PEASConfig().effective_horizon_s() == pytest.approx(100.0)

    def test_effective_horizon_override(self):
        config = PEASConfig(measurement_horizon_s=42.0)
        assert config.effective_horizon_s() == 42.0


class TestWith:
    def test_with_replaces_field(self):
        config = PEASConfig().with_(probe_range_m=5.0)
        assert config.probe_range_m == 5.0
        assert config.desired_rate_hz == 0.02

    def test_original_unchanged(self):
        base = PEASConfig()
        base.with_(num_probes=1)
        assert base.num_probes == 3

    def test_with_validates(self):
        with pytest.raises(ValueError):
            PEASConfig().with_(probe_range_m=-1.0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probe_range_m": 0.0},
            {"initial_rate_hz": 0.0},
            {"desired_rate_hz": -0.5},
            {"num_probes": 0},
            {"probe_window_s": 0.0},
            {"probe_gap_s": -0.01},
            {"reply_guard_s": -0.01},
            {"measurement_window_k": 0},
            {"measurement_mode": "psychic"},
            {"measurement_horizon_s": 0.0},
            {"min_rate_hz": 0.0},
            {"min_rate_hz": 3.0},  # > max_rate_hz
            {"max_adjust_factor": 0.5},
            {"probe_dedupe_window": 0},
            {"initial_rate_hz": 5.0},  # above max_rate_hz
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            PEASConfig(**kwargs)

    def test_none_adjust_factor_allowed(self):
        assert PEASConfig(max_adjust_factor=None).max_adjust_factor is None

    def test_windowed_mode_allowed(self):
        assert PEASConfig(measurement_mode="windowed").measurement_mode == "windowed"

    def test_frozen(self):
        with pytest.raises(Exception):
            PEASConfig().num_probes = 5
