"""Unit tests for repro.sim.events."""

import pytest

from repro.sim import PRIORITY_DEFAULT, PRIORITY_HIGH, PRIORITY_LOW
from repro.sim.events import Event


def noop():
    pass


class TestEventConstruction:
    def test_stores_time_and_label(self):
        event = Event(3.5, noop, label="tick")
        assert event.time == 3.5
        assert event.label == "tick"

    def test_default_priority(self):
        assert Event(0.0, noop).priority == PRIORITY_DEFAULT

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            Event(float("nan"), noop)

    def test_time_coerced_to_float(self):
        assert isinstance(Event(1, noop).time, float)

    def test_sequence_numbers_increase(self):
        first = Event(0.0, noop)
        second = Event(0.0, noop)
        assert second.seq > first.seq


class TestEventOrdering:
    def test_earlier_time_sorts_first(self):
        assert Event(1.0, noop) < Event(2.0, noop)

    def test_priority_breaks_time_ties(self):
        low = Event(1.0, noop, priority=PRIORITY_LOW)
        high = Event(1.0, noop, priority=PRIORITY_HIGH)
        assert high < low

    def test_sequence_breaks_full_ties(self):
        first = Event(1.0, noop)
        second = Event(1.0, noop)
        assert first < second

    def test_priority_constants_ordered(self):
        assert PRIORITY_HIGH < PRIORITY_DEFAULT < PRIORITY_LOW


class TestEventLifecycle:
    def test_fire_invokes_callback_with_args(self):
        calls = []
        event = Event(0.0, calls.append, args=("x",))
        event.fire()
        assert calls == ["x"]

    def test_cancel_marks_cancelled(self):
        event = Event(0.0, noop)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled

    def test_cancel_is_idempotent(self):
        event = Event(0.0, noop)
        event.cancel()
        event.cancel()
        assert event.cancelled
