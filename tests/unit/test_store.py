"""Unit tests for ``repro.store`` and the executor's retry policy.

The store's whole value is its honesty contract: a record is either a
verified ``peas-result/1`` document or it is quarantined and recomputed.
These tests pin the key derivation (what may and may not share a cache
slot), the read-side verification (bit rot, truncation, schema drift,
wrong-slot records), the journal audit trail that ``peas-repro store
stats`` and CI rely on, and the GC's reachability rule.  The
:class:`~repro.experiments.RetryPolicy` tests pin the backoff schedule's
shape and validation.
"""

import json
import random

import pytest

from repro.experiments import RetryPolicy, RunError, Scenario, result_to_dict
from repro.harness import RunOptions
from repro.store import (
    RESULT_SCHEMA,
    ResultStore,
    StoreError,
    options_signature,
    store_eligible,
)
from tests.unit.test_serialize import make_result

SCENARIO = Scenario(num_nodes=40, seed=3, with_traffic=False)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestLayoutAndAttach:
    def test_create_writes_marker_and_dirs(self, store):
        marker = json.loads(store.marker_path.read_text(encoding="utf-8"))
        assert marker["schema"] == "peas-store/1"
        assert store.results_dir.is_dir()
        assert store.snapshots_dir.is_dir()
        assert store.quarantine_dir.is_dir()

    def test_attach_requires_existing_store(self, tmp_path):
        with pytest.raises(StoreError, match="no peas-store/1 store"):
            ResultStore(tmp_path / "absent", create=False)

    def test_attach_rejects_foreign_marker(self, tmp_path):
        root = tmp_path / "other"
        root.mkdir()
        (root / "store.json").write_text('{"schema": "something-else/9"}\n')
        with pytest.raises(StoreError, match="not a peas-store/1 store"):
            ResultStore(root)

    def test_reattach_existing_store(self, store):
        again = ResultStore(store.root, create=False)
        assert again.root == store.root


class TestKeyDerivation:
    def test_key_is_stable_across_instances(self, store, tmp_path):
        other = ResultStore(tmp_path / "elsewhere")
        assert store.key_for(SCENARIO) == other.key_for(SCENARIO)

    def test_key_varies_with_seed_and_scenario(self, store):
        base = store.key_for(SCENARIO)
        assert store.key_for(SCENARIO.with_(seed=4)) != base
        assert store.key_for(SCENARIO.with_(num_nodes=41)) != base

    def test_key_varies_with_payload_affecting_options(self, store):
        base = store.key_for(SCENARIO, RunOptions())
        assert store.key_for(SCENARIO, RunOptions(profile=True)) != base
        assert store.key_for(SCENARIO, RunOptions(metrics=True)) != base
        assert store.key_for(SCENARIO, RunOptions(sanitize=True)) != base

    def test_none_options_match_defaults(self, store):
        assert store.key_for(SCENARIO, None) == store.key_for(SCENARIO, RunOptions())

    def test_warm_start_marker_separates_slots(self, store):
        cold = store.key_for(SCENARIO)
        warm = store.key_for(SCENARIO, warm_burn_in_s=500.0)
        assert cold != warm


class TestEligibility:
    def test_plain_and_none_options_eligible(self):
        assert store_eligible(None)
        assert store_eligible(RunOptions())
        assert store_eligible(RunOptions(metrics=True, profile=True))

    @pytest.mark.parametrize("kwargs", [
        {"trace_path": "t.ndjson"},
        {"snapshot_path": "s.json"},
        {"snapshot_path": "s.json", "checkpoint_every_s": 100.0},
        {"stop_after_s": 100.0},
    ])
    def test_artifact_producing_runs_ineligible(self, kwargs):
        assert not store_eligible(RunOptions(**kwargs))

    def test_signature_covers_exactly_the_payload_knobs(self):
        assert options_signature(None) == {
            "profile": False, "sanitize": False, "metrics": False,
        }
        assert options_signature(RunOptions(profile=True))["profile"] is True


class TestRoundTrip:
    def test_put_then_get_round_trips(self, store):
        result = make_result()
        key = store.key_for(SCENARIO)
        store.put(key, result, SCENARIO)
        restored = store.get(key)
        assert restored is not None
        assert result_to_dict(restored) == result_to_dict(result)

    def test_absent_key_is_silent_none(self, store):
        assert store.get("0" * 32) is None
        assert store.session == {
            "hits": 0, "misses": 0, "puts": 0, "evictions": 0, "quarantined": 0,
        }

    def test_hit_and_miss_accounting(self, store):
        key = store.key_for(SCENARIO)
        store.note_miss(key)
        store.put(key, make_result(), SCENARIO)
        store.get(key)
        assert store.session["misses"] == 1
        assert store.session["puts"] == 1
        assert store.session["hits"] == 1
        tallies = store.stats()["journal"]
        assert (tallies["miss"], tallies["put"], tallies["hit"]) == (1, 1, 1)


def _corrupt(path, mutate):
    record = json.loads(path.read_text(encoding="utf-8"))
    mutate(record)
    path.write_text(json.dumps(record) + "\n", encoding="utf-8")


class TestCorruption:
    def _stored(self, store):
        key = store.key_for(SCENARIO)
        store.put(key, make_result(), SCENARIO)
        return key, store.record_path(key)

    def _assert_quarantined(self, store, key, reason):
        assert store.get(key) is None
        assert not store.record_path(key).exists()
        assert store.session["quarantined"] == 1
        quarantined = list(store.quarantine_dir.iterdir())
        assert len(quarantined) == 1
        lines = [json.loads(line) for line in
                 store.journal_path.read_text().splitlines()]
        entry = [e for e in lines if e["op"] == "quarantine"]
        assert entry and entry[0]["reason"] == reason

    def test_flipped_payload_bit_is_quarantined(self, store):
        key, path = self._stored(store)
        _corrupt(path, lambda r: r["result"].update(total_wakeups=999999))
        self._assert_quarantined(store, key, "digest-mismatch")

    def test_truncated_record_is_quarantined(self, store):
        key, path = self._stored(store)
        path.write_text(path.read_text()[: 50], encoding="utf-8")
        self._assert_quarantined(store, key, "undecodable")

    def test_foreign_schema_is_quarantined(self, store):
        key, path = self._stored(store)
        _corrupt(path, lambda r: r.update(schema="peas-result/999"))
        self._assert_quarantined(store, key, "schema-mismatch")

    def test_record_in_wrong_slot_is_quarantined(self, store):
        key, path = self._stored(store)
        wrong = "f" * 32
        path.rename(store.record_path(wrong))
        self._assert_quarantined(store, wrong, "schema-mismatch")

    def test_doctored_digest_over_bad_payload_is_caught(self, store):
        # An attacker/bitrot fixing up the digest still fails: the payload
        # must deserialize into a RunResult.
        key, path = self._stored(store)

        def mutate(record):
            record["result"] = {"schema": RESULT_SCHEMA, "garbage": True}
            from repro.store import _payload_digest

            record["digest"] = _payload_digest(record["result"])

        _corrupt(path, mutate)
        self._assert_quarantined(store, key, "payload-invalid")

    def test_quarantine_never_deletes_evidence(self, store):
        key, path = self._stored(store)
        original = path.read_text(encoding="utf-8")
        _corrupt(path, lambda r: r.update(digest="0" * 64))
        corrupted = path.read_text(encoding="utf-8")
        store.get(key)
        (survivor,) = store.quarantine_dir.iterdir()
        assert survivor.read_text(encoding="utf-8") == corrupted
        assert original != corrupted


class TestVerify:
    def test_clean_store_verifies_ok(self, store):
        key = store.key_for(SCENARIO)
        store.put(key, make_result(), SCENARIO)
        report = store.verify()
        assert report["checked"] == 1
        assert report["ok"] == 1
        assert report["quarantined"] == []

    def test_verify_quarantines_and_names_corrupt_records(self, store):
        good = store.key_for(SCENARIO)
        bad = store.key_for(SCENARIO.with_(seed=9))
        store.put(good, make_result(), SCENARIO)
        store.put(bad, make_result(), SCENARIO.with_(seed=9))
        _corrupt(store.record_path(bad), lambda r: r.update(digest="0" * 64))
        report = store.verify()
        assert report["quarantined"] == [f"{bad}.json"]
        assert report["ok"] == 1
        # verify() is an audit, not a lookup: no hit accounting.
        assert store.session["hits"] == 0

    def test_verified_good_record_still_readable(self, store):
        key = store.key_for(SCENARIO)
        store.put(key, make_result(), SCENARIO)
        store.verify()
        assert store.get(key) is not None


class TestGc:
    def test_current_fingerprint_records_survive(self, store):
        key = store.key_for(SCENARIO)
        store.put(key, make_result(), SCENARIO)
        report = store.gc()
        assert report["evicted"] == 0
        assert store.get(key) is not None

    def test_foreign_fingerprint_records_evicted(self, store):
        key = store.key_for(SCENARIO)
        store.put(key, make_result(), SCENARIO)
        _corrupt(
            store.record_path(key),
            lambda r: r.update(code_fingerprint="deadbeef"),
        )
        report = store.gc()
        assert report["evicted"] == 1
        assert report["files"] == [f"{key}.json"]
        assert not store.record_path(key).exists()
        assert store.stats()["journal"]["evict"] == 1

    def test_drop_all_clears_records_and_snapshots(self, store):
        store.put(store.key_for(SCENARIO), make_result(), SCENARIO)
        (store.snapshots_dir / "burn-in-x-abc.json").write_text("{}\n")
        report = store.gc(drop_all=True)
        assert report["evicted"] == 2
        assert not list(store.results_dir.iterdir())
        assert not list(store.snapshots_dir.iterdir())

    def test_gc_never_touches_quarantine(self, store):
        key = store.key_for(SCENARIO)
        store.put(key, make_result(), SCENARIO)
        _corrupt(store.record_path(key), lambda r: r.update(digest="0" * 64))
        store.get(key)
        (evidence,) = store.quarantine_dir.iterdir()
        store.gc(drop_all=True)
        assert evidence.exists()

    def test_stale_snapshot_filenames_evicted(self, store):
        foreign = store.snapshots_dir / "burn-in-abc-000000000000.json"
        foreign.write_text("{}\n")
        current = store.snapshot_target("abc")
        current.write_text("{}\n")
        report = store.gc()
        assert report["files"] == [foreign.name]
        assert current.exists()


class TestStats:
    def test_stats_shape(self, store):
        store.put(store.key_for(SCENARIO), make_result(), SCENARIO)
        stats = store.stats()
        assert stats["records"] == 1
        assert stats["record_bytes"] > 0
        assert stats["stale_records"] == 0
        assert stats["quarantined_files"] == 0
        assert stats["journal"]["put"] == 1
        assert stats["session"]["puts"] == 1


class TestRetryPolicy:
    def test_defaults_are_two_attempts(self):
        assert RetryPolicy().max_attempts == 2

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base_s": -1.0},
        {"backoff_factor": 0.5},
        {"backoff_max_s": -0.1},
        {"jitter": -0.2},
        {"run_timeout_s": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base_s=1.0, backoff_factor=2.0,
            backoff_max_s=5.0, jitter=0.0,
        )
        rng = random.Random(0)
        delays = [policy.backoff_s(k, rng) for k in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_stretches_but_never_shrinks(self):
        policy = RetryPolicy(backoff_base_s=1.0, jitter=0.5)
        rng = random.Random(7)
        for _ in range(100):
            delay = policy.backoff_s(1, rng)
            assert 1.0 <= delay <= 1.5


class TestRunErrorSummary:
    def _error(self, **kwargs):
        return RunError(
            scenario=SCENARIO,
            error_type="RuntimeError",
            error_message="boom",
            traceback_text="Traceback\n  line1\n  line2\nRuntimeError: boom\n",
            **kwargs,
        )

    def test_single_attempt_has_no_retry_line(self):
        assert "attempts" not in self._error().summary()

    def test_retried_error_reports_attempts_and_wall_clock(self):
        text = self._error(attempts=3, retry_wall_s=1.25).summary()
        assert "[3 attempts over 1.2s of retries]" in text
