"""Unit tests for the coverage grid and tracker."""

import math
import random

import numpy as np
import pytest

from repro.coverage import CoverageGrid, CoverageTracker, lifetime_from_series
from repro.net import Field, distance
from repro.sim import Simulator


class TestCoverageGrid:
    def test_empty_grid_uncovered(self):
        grid = CoverageGrid(Field(50.0, 50.0))
        assert grid.fraction(1) == 0.0

    def test_k_zero_always_full(self):
        grid = CoverageGrid(Field(50.0, 50.0))
        assert grid.fraction(0) == 1.0

    def test_single_central_node_covers_disk(self):
        field = Field(50.0, 50.0)
        grid = CoverageGrid(field, sensing_range=10.0, resolution=1.0)
        grid.add_node((25.0, 25.0))
        expected = math.pi * 100.0 / field.area
        assert grid.fraction(1) == pytest.approx(expected, rel=0.05)

    def test_count_at_points(self):
        grid = CoverageGrid(Field(50.0, 50.0), sensing_range=10.0)
        grid.add_node((25.0, 25.0))
        assert grid.count_at((25.0, 25.0)) == 1
        assert grid.count_at((30.0, 25.0)) == 1
        assert grid.count_at((45.0, 45.0)) == 0

    def test_add_remove_roundtrip(self):
        grid = CoverageGrid(Field(50.0, 50.0))
        grid.add_node((10.0, 10.0))
        grid.add_node((30.0, 30.0))
        grid.remove_node((10.0, 10.0))
        grid.remove_node((30.0, 30.0))
        assert grid.fraction(1) == 0.0
        assert grid._counts.sum() == 0

    def test_k_coverage_monotone_in_k(self):
        grid = CoverageGrid(Field(30.0, 30.0), sensing_range=10.0)
        rng = random.Random(3)
        for _ in range(12):
            grid.add_node((rng.uniform(0, 30), rng.uniform(0, 30)))
        fractions = [grid.fraction(k) for k in range(1, 7)]
        assert fractions == sorted(fractions, reverse=True)

    def test_matches_brute_force(self):
        field = Field(25.0, 25.0)
        grid = CoverageGrid(field, sensing_range=6.0, resolution=1.0)
        rng = random.Random(9)
        nodes = [(rng.uniform(0, 25), rng.uniform(0, 25)) for _ in range(15)]
        for node in nodes:
            grid.add_node(node)
        for k in (1, 2, 3, 4):
            covered = 0
            total = 0
            for ix in range(26):
                for iy in range(26):
                    point = (float(ix), float(iy))
                    total += 1
                    count = sum(1 for n in nodes if distance(n, point) <= 6.0)
                    if count >= k:
                        covered += 1
            assert grid.fraction(k) == pytest.approx(covered / total)

    def test_fraction_beyond_max_k_computed_directly(self):
        grid = CoverageGrid(Field(20.0, 20.0), sensing_range=10.0, max_k=2)
        for _ in range(4):
            grid.add_node((10.0, 10.0))
        assert grid.fraction(4) > 0.0

    def test_remove_unknown_node_rejected(self):
        grid = CoverageGrid(Field(20.0, 20.0))
        with pytest.raises(ValueError):
            grid.remove_node((10.0, 10.0))

    def test_node_outside_lattice_bounds_is_noop(self):
        grid = CoverageGrid(Field(20.0, 20.0), sensing_range=1.0)
        # Disk fully outside the lattice cannot happen for in-field nodes;
        # the clipped window still behaves.
        grid.add_node((0.0, 0.0))
        assert grid.fraction(1) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CoverageGrid(Field(10.0, 10.0), sensing_range=0.0)
        with pytest.raises(ValueError):
            CoverageGrid(Field(10.0, 10.0), resolution=0.0)
        with pytest.raises(ValueError):
            CoverageGrid(Field(10.0, 10.0), max_k=0)

    def test_fractions_dict(self):
        grid = CoverageGrid(Field(20.0, 20.0))
        grid.add_node((10.0, 10.0))
        result = grid.fractions((1, 2))
        assert set(result) == {1, 2}


class TestLifetimeFromSeries:
    def test_basic_crossing_after_boot(self):
        samples = [(0, 0.0), (10, 0.5), (20, 0.95), (30, 0.97), (40, 0.85)]
        assert lifetime_from_series(samples, 0.9) == 40

    def test_boot_ramp_not_counted(self):
        """Low coverage during boot must not terminate the lifetime at t=0."""
        samples = [(0, 0.0), (10, 0.3), (20, 0.95), (30, 0.96)]
        assert lifetime_from_series(samples, 0.9) == 30  # censored at end

    def test_never_achieved_returns_none(self):
        samples = [(0, 0.1), (10, 0.5)]
        assert lifetime_from_series(samples, 0.9) is None

    def test_empty_series(self):
        assert lifetime_from_series([], 0.9) is None

    def test_first_crossing_wins(self):
        samples = [(0, 0.95), (10, 0.85), (20, 0.95), (30, 0.5)]
        assert lifetime_from_series(samples, 0.9) == 10


class TestCoverageTracker:
    class FakeNode:
        def __init__(self, position):
            self.position = position

    def test_tracks_working_changes(self):
        sim = Simulator()
        grid = CoverageGrid(Field(30.0, 30.0), sensing_range=10.0)
        tracker = CoverageTracker(sim, grid, ks=(1,), sample_interval_s=5.0)
        tracker.start()
        node = self.FakeNode((15.0, 15.0))
        tracker.on_working_change(0.0, node, True)
        sim.run(until=10.0)
        tracker.on_working_change(10.0, node, False)
        sim.run(until=20.0)
        samples = tracker.series.samples("coverage_1")
        assert samples[0] == (0.0, 0.0)
        assert samples[1][1] > 0.0  # covered while working
        assert samples[-1][1] == 0.0  # uncovered after stop

    def test_working_count_series(self):
        sim = Simulator()
        grid = CoverageGrid(Field(30.0, 30.0))
        tracker = CoverageTracker(sim, grid, ks=(1,), sample_interval_s=5.0)
        tracker.start()
        tracker.on_working_change(0.0, self.FakeNode((5.0, 5.0)), True)
        tracker.on_working_change(0.0, self.FakeNode((25.0, 25.0)), True)
        sim.run(until=5.0)
        assert tracker.series.last("working_count")[1] == 2.0

    def test_validation(self):
        sim = Simulator()
        grid = CoverageGrid(Field(30.0, 30.0))
        with pytest.raises(ValueError):
            CoverageTracker(sim, grid, ks=())
        with pytest.raises(ValueError):
            CoverageTracker(sim, grid, threshold=0.0)

    def test_stop_ends_sampling(self):
        sim = Simulator()
        grid = CoverageGrid(Field(30.0, 30.0))
        tracker = CoverageTracker(sim, grid, ks=(1,), sample_interval_s=5.0)
        tracker.start()
        sim.run(until=10.0)
        tracker.stop()
        count = len(tracker.series.samples("coverage_1"))
        sim.run(until=50.0)
        assert len(tracker.series.samples("coverage_1")) == count
