"""Unit tests for repro.faults: plans, serialization, models, the engine."""

import json
import random

import pytest

from repro.faults import (
    FAULT_KINDS,
    BurstyLossFault,
    ClockDriftFault,
    CrashFault,
    FaultEngine,
    FaultPlan,
    RegionKillFault,
    TransientOutageFault,
    fault_plan_from_dict,
    fault_plan_to_dict,
    load_fault_plan,
    save_fault_plan,
)
from repro.net.loss import GilbertElliottLoss
from repro.sim import RngRegistry, Simulator

from ..helpers import make_network


def full_plan():
    return FaultPlan((
        CrashFault(rate_per_5000s=8.0),
        RegionKillFault(at_s=100.0, radius_m=5.0, center=(10.0, 10.0)),
        TransientOutageFault(rate_per_5000s=20.0, mean_outage_s=60.0),
        BurstyLossFault(good_mean_s=40.0, bad_mean_s=8.0, bad_loss=0.7),
        ClockDriftFault(max_skew=0.04),
    ))


class TestPlanValidation:
    def test_empty_plan_default(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.kinds() == ()

    def test_with_entry_appends(self):
        plan = FaultPlan().with_entry(CrashFault(rate_per_5000s=1.0))
        assert not plan.is_empty
        assert plan.kinds() == ("crash",)

    def test_kinds_in_declaration_order(self):
        assert FAULT_KINDS == (
            "crash", "region_kill", "transient_outage", "bursty_loss",
            "clock_drift",
        )
        assert full_plan().kinds() == FAULT_KINDS

    def test_entries_must_be_models(self):
        with pytest.raises(TypeError):
            FaultPlan(("crash",))

    def test_at_most_one_bursty_entry(self):
        bursty = BurstyLossFault(good_mean_s=10.0, bad_mean_s=5.0)
        with pytest.raises(ValueError, match="bursty_loss"):
            FaultPlan((bursty, bursty))

    def test_crash_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            CrashFault(rate_per_5000s=-1.0)

    def test_region_kill_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            RegionKillFault(at_s=-1.0, radius_m=5.0)
        with pytest.raises(ValueError):
            RegionKillFault(at_s=0.0, radius_m=0.0)
        with pytest.raises(ValueError):
            RegionKillFault(at_s=0.0, radius_m=5.0, center=(1.0, 2.0, 3.0))

    def test_outage_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            TransientOutageFault(rate_per_5000s=1.0, mean_outage_s=0.0)

    def test_bursty_rejects_certain_loss(self):
        with pytest.raises(ValueError):
            BurstyLossFault(good_mean_s=10.0, bad_mean_s=5.0, bad_loss=1.0)
        with pytest.raises(ValueError):
            BurstyLossFault(good_mean_s=10.0, bad_mean_s=5.0,
                            start_s=50.0, end_s=20.0)

    def test_drift_bounds(self):
        with pytest.raises(ValueError):
            ClockDriftFault(max_skew=0.0)
        with pytest.raises(ValueError):
            ClockDriftFault(max_skew=1.0)

    def test_bursty_average_loss_is_stationary_mix(self):
        entry = BurstyLossFault(
            good_mean_s=30.0, bad_mean_s=10.0, good_loss=0.1, bad_loss=0.7
        )
        assert entry.average_loss() == pytest.approx(
            (30.0 * 0.1 + 10.0 * 0.7) / 40.0
        )


class TestPlanSerialization:
    def test_round_trip_preserves_every_entry(self):
        plan = full_plan()
        payload = json.loads(json.dumps(fault_plan_to_dict(plan)))
        assert fault_plan_from_dict(payload) == plan

    def test_empty_plan_round_trips(self):
        assert fault_plan_from_dict(fault_plan_to_dict(FaultPlan())) == FaultPlan()

    def test_schema_marker_enforced(self):
        with pytest.raises(ValueError, match="schema"):
            fault_plan_from_dict({"entries": []})

    def test_unknown_kind_rejected(self):
        payload = {"schema": "peas-faultplan/1",
                   "entries": [{"kind": "meteor"}]}
        with pytest.raises(ValueError, match="meteor"):
            fault_plan_from_dict(payload)

    def test_file_round_trip(self, tmp_path):
        plan = full_plan()
        path = tmp_path / "plan.json"
        save_fault_plan(plan, path)
        assert load_fault_plan(path) == plan


class TestGilbertElliott:
    def make(self, **overrides):
        kwargs = dict(good_mean_s=50.0, bad_mean_s=10.0, good_loss=0.0,
                      bad_loss=0.9, rng=random.Random(11))
        kwargs.update(overrides)
        return GilbertElliottLoss(**kwargs)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(good_mean_s=0.0)
        with pytest.raises(ValueError):
            self.make(bad_loss=1.0)
        with pytest.raises(ValueError):
            self.make(start_s=10.0, end_s=5.0)

    def test_inactive_outside_window(self):
        loss = self.make(bad_loss=0.9, good_loss=0.9,
                         start_s=100.0, end_s=200.0)
        assert not any(loss.drop(t) for t in (0.0, 50.0, 99.9))
        assert not any(loss.drop(t) for t in (200.0, 500.0))
        assert loss.drops == 0

    def test_all_loss_states_drop_everything(self):
        # With both states at p≈1 every in-window frame drops regardless
        # of where the chain happens to be.
        loss = self.make(good_loss=0.999, bad_loss=0.999)
        outcomes = [loss.drop(float(t)) for t in range(1, 2000)]
        assert sum(outcomes) >= 1990
        assert loss.drops == sum(outcomes)

    def test_empirical_loss_matches_stationary_average(self):
        loss = self.make()
        samples = 60_000
        dropped = sum(loss.drop(t * 1.0) for t in range(samples))
        assert dropped / samples == pytest.approx(
            loss.average_loss(), abs=0.02
        )

    def test_bursts_are_correlated(self):
        # Consecutive-sample agreement must exceed what an i.i.d. process
        # with the same average loss rate would produce.
        loss = self.make(good_loss=0.0, bad_loss=0.95)
        outcomes = [loss.drop(t * 1.0) for t in range(40_000)]
        p = sum(outcomes) / len(outcomes)
        pairs = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
        iid_pairs = p * p * (len(outcomes) - 1)
        assert pairs > 2.0 * iid_pairs

    def test_deterministic_given_rng(self):
        a = self.make(rng=random.Random(5))
        b = self.make(rng=random.Random(5))
        times = [t * 0.7 for t in range(5000)]
        assert [a.drop(t) for t in times] == [b.drop(t) for t in times]


class TestFaultEngine:
    def build(self, plan, seed=7, **engine_kwargs):
        sim, network = make_network(num_nodes=30, seed=seed)
        rngs = RngRegistry(seed=seed)
        engine = FaultEngine(
            sim, network, plan, rngs,
            field_size=(20.0, 20.0), **engine_kwargs,
        )
        return sim, network, engine

    def test_capability_rejection_at_construction(self):
        plan = FaultPlan((TransientOutageFault(10.0, 50.0),))
        with pytest.raises(ValueError, match="transient_outage"):
            self.build(plan, capabilities=frozenset({"crash", "region_kill"}))

    def test_empty_plan_schedules_nothing(self):
        sim, network, engine = self.build(FaultPlan())
        engine.prepare()
        engine.start()
        assert sim.pending_events == 0  # ambient rate 0: nothing armed
        assert engine.failures_injected == 0
        assert engine.fire_times == []

    def test_region_kill_removes_disk_population(self):
        plan = FaultPlan((
            RegionKillFault(at_s=50.0, radius_m=8.0, center=(10.0, 10.0)),
        ))
        sim, network, engine = self.build(plan)
        network.start()
        engine.prepare()
        engine.start()
        before = len(network.alive_ids())
        sim.run(until=60.0)
        after = len(network.alive_ids())
        assert engine.region_kills > 0
        assert before - after == engine.region_kills
        assert engine.fire_times == [50.0]
        # Every node left alive is outside the disk.
        for node_id in network.alive_ids():
            x, y = network.nodes[node_id].position
            assert (x - 10.0) ** 2 + (y - 10.0) ** 2 > 8.0 ** 2

    def test_region_kill_random_center_is_seed_deterministic(self):
        plan = FaultPlan((RegionKillFault(at_s=50.0, radius_m=8.0),))
        survivors = []
        for _ in range(2):
            sim, network, engine = self.build(plan, seed=13)
            network.start()
            engine.prepare()
            engine.start()
            sim.run(until=60.0)
            survivors.append(sorted(network.alive_ids()))
        assert survivors[0] == survivors[1]

    def test_transient_outage_stuns_and_restores(self):
        plan = FaultPlan((
            TransientOutageFault(rate_per_5000s=500.0, mean_outage_s=20.0),
        ))
        sim, network, engine = self.build(plan)
        network.start()
        engine.prepare()
        engine.start()
        sim.run(until=2000.0)
        assert engine.outages > 0
        assert engine.restores > 0
        assert network.counters.get("outages") == engine.outages
        assert network.counters.get("restores") == engine.restores
        # Outages are not deaths.
        assert engine.failures_injected == 0

    def test_clock_drift_skews_all_sensors(self):
        plan = FaultPlan((ClockDriftFault(max_skew=0.1),))
        sim, network, engine = self.build(plan)
        engine.prepare()
        skews = [node.clock_skew for node in network.nodes.values()]
        assert engine.nodes_skewed == len(skews)
        assert all(0.9 <= s <= 1.1 for s in skews)
        assert any(s != 1.0 for s in skews)

    def test_bursty_overlay_attaches_to_channel(self):
        plan = FaultPlan((
            BurstyLossFault(good_mean_s=40.0, bad_mean_s=10.0, bad_loss=0.6),
        ))
        sim, network, engine = self.build(plan)
        engine.prepare()
        assert network.channel.loss_process is engine.loss_process
        assert engine.loss_process.average_loss() == pytest.approx(
            (40.0 * 0.0 + 10.0 * 0.6) / 50.0
        )

    def test_explicit_crash_entries_layer_on_ambient(self):
        plan = FaultPlan((CrashFault(rate_per_5000s=5000.0),))
        sim, network, engine = self.build(plan)
        network.start()
        engine.prepare()
        engine.start()
        sim.run(until=50.0)
        assert engine.failures_injected > 0
        assert engine.fire_times  # explicit crash deaths anchor recovery

    def test_per_entry_streams_are_isolated(self):
        # Adding a second entry must not change the first entry's draws:
        # the region-kill victims are identical with and without the
        # crash entry riding along (crash rate 0 so no extra deaths).
        region = RegionKillFault(at_s=50.0, radius_m=8.0, center=(10.0, 10.0))
        survivors = []
        for plan in (
            FaultPlan((region,)),
            FaultPlan((region, CrashFault(rate_per_5000s=0.0))),
        ):
            sim, network, engine = self.build(plan, seed=21)
            network.start()
            engine.prepare()
            engine.start()
            sim.run(until=60.0)
            survivors.append(sorted(network.alive_ids()))
        assert survivors[0] == survivors[1]


class TestStunRestore:
    def test_stun_then_restore_cycles_through_sleeping(self):
        sim, network = make_network(num_nodes=12, seed=5)
        network.start()
        sim.run(until=30.0)
        node = next(
            network.nodes[i] for i in sorted(network.alive_ids())
        )
        assert node.stun()
        assert node.mode.value == "stunned"
        assert not node.stun()  # idempotent: already stunned
        assert node.restore()
        assert node.mode.value == "sleeping"
        assert not node.restore()  # only stunned nodes restore
        sim.run(until=200.0)  # the restored sleeper keeps participating
        assert network.counters.get("outages") == 1
        assert network.counters.get("restores") == 1

    def test_stunned_node_ignores_probes(self):
        sim, network = make_network(num_nodes=12, seed=5)
        network.start()
        sim.run(until=30.0)
        node = network.nodes[sorted(network.alive_ids())[0]]
        node.stun()
        sim.run(until=500.0)
        # It neither transmitted nor died while stunned.
        assert node.mode.value == "stunned"
        assert node.alive
