"""Unit tests for repro.core.extensions (§4 features)."""

import pytest

from repro.core import PEASConfig, ReceptionFilter, overlap_should_sleep
from repro.net import RadioModel


class TestReceptionFilterVariablePower:
    def test_accepts_everything(self):
        filt = ReceptionFilter(PEASConfig(fixed_power=False), RadioModel())
        assert filt.accepts(1e-9)
        assert filt.accepts(100.0)

    def test_tx_range_is_probe_range(self):
        filt = ReceptionFilter(PEASConfig(fixed_power=False), RadioModel())
        assert filt.tx_range == 3.0


class TestReceptionFilterFixedPower:
    def test_tx_range_is_max_range(self):
        filt = ReceptionFilter(PEASConfig(fixed_power=True), RadioModel())
        assert filt.tx_range == 10.0

    def test_threshold_equivalent_to_probe_range(self):
        radio = RadioModel()
        filt = ReceptionFilter(PEASConfig(fixed_power=True), radio)
        assert filt.accepts(radio.rssi(2.9))
        assert not filt.accepts(radio.rssi(3.1))

    def test_threshold_boundary(self):
        radio = RadioModel()
        filt = ReceptionFilter(PEASConfig(fixed_power=True), radio)
        assert filt.accepts(radio.threshold_for_range(3.0))


class TestOverlapRule:
    def test_younger_yields(self):
        assert overlap_should_sleep(10.0, 100.0) is True

    def test_older_stays(self):
        assert overlap_should_sleep(100.0, 10.0) is False

    def test_tie_stays(self):
        """Strict comparison: equal ages never turn each other off."""
        assert overlap_should_sleep(50.0, 50.0) is False

    def test_asymmetric(self):
        """Exactly one of a pair can ever be told to sleep."""
        for a, b in [(1.0, 2.0), (7.0, 3.0), (0.0, 0.0)]:
            assert not (overlap_should_sleep(a, b) and overlap_should_sleep(b, a))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            overlap_should_sleep(-1.0, 5.0)
