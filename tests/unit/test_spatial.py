"""Unit tests for repro.net.spatial.SpatialGrid."""

import random

import pytest

from repro.net import Field, SpatialGrid, distance


@pytest.fixture
def grid():
    return SpatialGrid(Field(50.0, 50.0), cell_size=3.0)


class TestBasics:
    def test_insert_and_contains(self, grid):
        grid.insert("a", (1.0, 1.0))
        assert "a" in grid
        assert len(grid) == 1

    def test_duplicate_insert_rejected(self, grid):
        grid.insert("a", (1.0, 1.0))
        with pytest.raises(KeyError):
            grid.insert("a", (2.0, 2.0))

    def test_remove(self, grid):
        grid.insert("a", (1.0, 1.0))
        grid.remove("a")
        assert "a" not in grid
        assert len(grid) == 0

    def test_remove_missing_raises(self, grid):
        with pytest.raises(KeyError):
            grid.remove("ghost")

    def test_position_lookup(self, grid):
        grid.insert("a", (4.0, 5.0))
        assert grid.position("a") == (4.0, 5.0)

    def test_bulk_insert(self, grid):
        grid.bulk_insert([("a", (0.0, 0.0)), ("b", (1.0, 1.0))])
        assert len(grid) == 2

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            SpatialGrid(Field(10.0, 10.0), cell_size=0.0)


class TestWithin:
    def test_finds_points_in_radius(self, grid):
        grid.insert("near", (10.0, 10.0))
        grid.insert("far", (30.0, 30.0))
        assert grid.within((11.0, 10.0), 2.0) == ["near"]

    def test_radius_boundary_inclusive(self, grid):
        grid.insert("edge", (13.0, 10.0))
        assert grid.within((10.0, 10.0), 3.0) == ["edge"]

    def test_empty_result(self, grid):
        grid.insert("a", (0.0, 0.0))
        assert grid.within((49.0, 49.0), 5.0) == []

    def test_negative_radius_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.within((0.0, 0.0), -1.0)

    def test_radius_spanning_many_cells(self, grid):
        for i in range(10):
            grid.insert(i, (i * 5.0, 25.0))
        found = grid.within((25.0, 25.0), 12.0)
        expected = [i for i in range(10) if abs(i * 5.0 - 25.0) <= 12.0]
        assert sorted(found) == expected

    def test_matches_brute_force_on_random_points(self):
        rng = random.Random(7)
        field = Field(40.0, 40.0)
        grid = SpatialGrid(field, cell_size=4.0)
        points = {i: field.random_point(rng) for i in range(120)}
        for i, p in points.items():
            grid.insert(i, p)
        for _ in range(30):
            center = field.random_point(rng)
            radius = rng.uniform(0.5, 15.0)
            expected = sorted(
                i for i, p in points.items() if distance(p, center) <= radius
            )
            assert sorted(grid.within(center, radius)) == expected


class TestNearest:
    def test_single_point(self, grid):
        grid.insert("only", (20.0, 20.0))
        assert grid.nearest((0.0, 0.0)) == "only"

    def test_picks_closest(self, grid):
        grid.insert("a", (10.0, 10.0))
        grid.insert("b", (12.0, 10.0))
        assert grid.nearest((12.5, 10.0)) == "b"

    def test_empty_raises(self, grid):
        with pytest.raises(ValueError):
            grid.nearest((0.0, 0.0))

    def test_items_iteration(self, grid):
        grid.insert("a", (1.0, 2.0))
        assert dict(grid.items()) == {"a": (1.0, 2.0)}
