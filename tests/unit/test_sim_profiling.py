"""Unit tests for engine profiling (``repro.sim.profiling`` + the
``Simulator.profiled`` hook)."""

import pytest

from repro.sim import EngineProfiler, SimulationError, Simulator
from repro.sim.profiling import (
    _GAUGE_PERIOD,
    _GAUGE_SERIES_CAP,
    _HIST_BUCKETS,
    LabelStats,
)


class TestLabelStats:
    def test_accumulates(self):
        stats = LabelStats()
        stats.record(1e-6)
        stats.record(3e-6)
        assert stats.count == 2
        assert stats.total_s == pytest.approx(4e-6)
        assert stats.min_s == pytest.approx(1e-6)
        assert stats.max_s == pytest.approx(3e-6)

    def test_histogram_buckets_log2(self):
        stats = LabelStats()
        stats.record(0.5e-6)  # <1us -> bucket 0
        stats.record(1e-6)  # 1us -> bucket 1
        stats.record(3e-6)  # 2-3us -> bucket 2
        assert stats.hist[0] == 1
        assert stats.hist[1] == 1
        assert stats.hist[2] == 1

    def test_histogram_overflow_clamps(self):
        stats = LabelStats()
        stats.record(10_000.0)  # absurd dt -> last bucket
        assert stats.hist[_HIST_BUCKETS - 1] == 1

    def test_as_dict_elides_trailing_zeros(self):
        stats = LabelStats()
        stats.record(1e-6)
        payload = stats.as_dict()
        assert payload["count"] == 1
        assert payload["hist_log2_us"] == [0, 1]


class TestEngineProfiler:
    def test_record_and_as_dict(self):
        profiler = EngineProfiler()
        profiler.record("a", 2e-6)
        profiler.record("a", 2e-6)
        profiler.record("b", 10e-6)
        profiler.sample_gauges(heap_size=8, live=5)
        payload = profiler.as_dict()
        assert payload["events"] == 3
        # Sorted by total self-time: b (10us) before a (4us).
        assert list(payload["by_label"]) == ["b", "a"]
        assert payload["gauges"] == {
            "max_heap": 8,
            "max_live": 5,
            "max_tombstones": 3,
            "series": [],
        }

    def test_report_renders(self):
        profiler = EngineProfiler()
        profiler.record("tick", 5e-6)
        text = profiler.report()
        assert "engine profile" in text
        assert "tick" in text

    def test_render_from_dict_matches_report(self):
        profiler = EngineProfiler()
        profiler.record("tick", 5e-6)
        assert EngineProfiler.render(profiler.as_dict()) == profiler.report()

    def test_render_limit(self):
        profiler = EngineProfiler()
        for i in range(5):
            profiler.record(f"label{i}", 1e-6)
        text = EngineProfiler.render(profiler.as_dict(), limit=2)
        assert sum(1 for line in text.splitlines() if "label" in line and "label0" != line) >= 1
        assert len(text.splitlines()) == 5  # 3 header lines + 2 label rows


class TestGaugeSeries:
    def test_timed_samples_extend_the_series(self):
        profiler = EngineProfiler()
        profiler.sample_gauges(heap_size=4, live=3, now=10.0)
        profiler.sample_gauges(heap_size=8, live=5, now=20.0)
        profiler.sample_gauges(heap_size=2, live=1)  # untimed: high-water only
        assert profiler.gauge_series == [(10.0, 4, 3), (20.0, 8, 5)]
        assert profiler.as_dict()["gauges"]["series"] == [[10.0, 4, 3], [20.0, 8, 5]]

    def test_decimation_bounds_memory_and_spans_the_run(self):
        profiler = EngineProfiler()
        n = _GAUGE_SERIES_CAP * 4
        for i in range(n):
            profiler.sample_gauges(heap_size=i, live=i, now=float(i))
        series = profiler.gauge_series
        assert len(series) <= _GAUGE_SERIES_CAP
        # Still covers the whole run: first sample kept, last near the end.
        assert series[0][0] == 0.0
        assert series[-1][0] >= n - profiler._gauge_stride
        times = [t for t, _h, _l in series]
        assert times == sorted(times)

    def test_render_gauges_sparklines(self):
        profiler = EngineProfiler()
        for i in range(100):
            profiler.sample_gauges(heap_size=100 + i, live=60 + i, now=float(i) * 10)
        text = EngineProfiler.render_gauges(profiler.as_dict())
        assert "max heap 199" in text
        assert "heap size" in text and "live evts" in text and "tombstone%" in text
        assert "t=[0s..990s]" in text

    def test_render_gauges_degrades_without_series(self):
        # Profiles recorded before the series existed still render.
        text = EngineProfiler.render_gauges(
            {"gauges": {"max_heap": 5, "max_live": 4, "max_tombstones": 1}}
        )
        assert text == "gauges: max heap 5, max live 4, max tombstones 1"

    def test_engine_run_populates_series(self):
        sim = Simulator()

        def noop():
            pass

        for i in range(2 * _GAUGE_PERIOD):
            sim.schedule(float(i), noop, label="tick")
        with sim.profiled() as prof:
            sim.run()
        assert prof.gauge_series
        assert all(t >= 0.0 for t, _h, _l in prof.gauge_series)
        rendered = EngineProfiler.render(prof.as_dict())
        assert "heap size" in rendered


class TestProfiledRuns:
    def test_profiled_context_counts_dispatches(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), fired.append, i, label="tick")
        sim.schedule(0.5, fired.append, -1)  # unlabeled -> callback qualname
        with sim.profiled() as prof:
            sim.run()
        assert len(fired) == 11
        assert prof.events == 11
        assert prof.labels["tick"].count == 10
        assert sim.profiler is None  # detached on exit

    def test_profiled_results_match_unprofiled(self):
        def collect(sim):
            order = []
            for i in range(50):
                sim.schedule(float(50 - i), order.append, i, label="tick")
            return order

        plain_sim = Simulator()
        plain = collect(plain_sim)
        plain_sim.run()

        prof_sim = Simulator()
        profiled = collect(prof_sim)
        with prof_sim.profiled():
            prof_sim.run()
        assert profiled == plain
        assert prof_sim.now == plain_sim.now
        assert prof_sim.events_executed == plain_sim.events_executed

    def test_double_attach_rejected(self):
        sim = Simulator()
        with sim.profiled():
            with pytest.raises(SimulationError):
                with sim.profiled():
                    pass

    def test_gauges_sampled_during_run(self):
        sim = Simulator()

        def noop():
            pass

        for i in range(2 * _GAUGE_PERIOD):
            sim.schedule(float(i), noop, label="tick")
        with sim.profiled() as prof:
            sim.run()
        assert prof.max_heap >= 1
        assert prof.max_live >= 1

    def test_tombstones_property(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        victim = sim.schedule(2.0, lambda: None)
        assert sim.tombstones == 0
        victim.cancel()
        assert sim.tombstones == 1
        keep.cancel()  # silence unused warning; both cancelled now
        assert sim.tombstones == 2
