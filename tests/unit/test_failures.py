"""Unit tests for repro.failures.FailureInjector."""

import random

import pytest

from repro.failures import FailureInjector, per_5000s
from repro.sim import Simulator


class TestPer5000s:
    def test_paper_unit_conversion(self):
        assert per_5000s(10.66) == pytest.approx(10.66 / 5000.0)

    def test_zero(self):
        assert per_5000s(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            per_5000s(-1.0)


def make_injector(rate_hz, population=20, seed=1):
    sim = Simulator()
    alive = set(range(population))
    killed = []

    def kill(node_id):
        alive.discard(node_id)
        killed.append(node_id)

    injector = FailureInjector(sim, rate_hz, lambda: alive, kill, random.Random(seed))
    return sim, injector, alive, killed


class TestInjection:
    def test_zero_rate_never_fires(self):
        sim, injector, alive, killed = make_injector(0.0)
        injector.start()
        sim.run(until=100000.0)
        assert killed == []

    def test_kills_accumulate_at_rate(self):
        sim, injector, alive, killed = make_injector(0.01, population=2000, seed=3)
        injector.start()
        sim.run(until=50000.0)
        # Expect ~500 failures (Poisson, sd ~22).
        assert 400 < len(killed) < 600
        assert injector.failures_injected == len(killed)

    def test_victims_are_alive_nodes(self):
        sim, injector, alive, killed = make_injector(0.05, population=30)
        injector.start()
        sim.run(until=2000.0)
        assert len(killed) == len(set(killed))  # never kills twice

    def test_rearms_when_population_empty(self):
        sim, injector, alive, killed = make_injector(1.0, population=5)
        injector.start()
        sim.run(until=100.0)
        assert len(killed) == 5
        # An empty arrival is a no-op, not a terminator: the process stays
        # armed because transient outages can repopulate the alive set.
        assert sim.pending_events == 1

    def test_kills_resume_after_repopulation(self):
        sim, injector, alive, killed = make_injector(1.0, population=5)
        injector.start()
        sim.run(until=100.0)
        assert len(killed) == 5
        alive.add(99)  # a restored node rejoins the population
        sim.run(until=200.0)
        assert 99 in killed
        assert injector.failures_injected == 6

    def test_failure_times_recorded(self):
        sim, injector, alive, killed = make_injector(0.1, population=50)
        injector.start()
        sim.run(until=200.0)
        assert len(injector.failure_times) == len(killed)
        assert injector.failure_times == sorted(injector.failure_times)

    def test_start_idempotent(self):
        sim, injector, alive, killed = make_injector(0.5, population=1000, seed=5)
        injector.start()
        injector.start()
        sim.run(until=100.0)
        # One process, not two: ~50 failures, not ~100.
        assert len(killed) < 80

    def test_failure_fraction(self):
        sim, injector, alive, killed = make_injector(0.1, population=50)
        injector.start()
        sim.run(until=100.0)
        assert injector.failure_fraction(50) == pytest.approx(len(killed) / 50)

    def test_failure_fraction_invalid_population(self):
        sim, injector, _, _ = make_injector(0.1)
        with pytest.raises(ValueError):
            injector.failure_fraction(0)

    def test_negative_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FailureInjector(sim, -0.1, lambda: [], lambda x: None, random.Random(1))

    def test_exponential_interarrivals(self):
        """Mean inter-failure time should approximate 1/rate."""
        sim, injector, alive, killed = make_injector(0.02, population=10000, seed=9)
        injector.start()
        sim.run(until=100000.0)
        times = injector.failure_times
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(50.0, rel=0.15)
