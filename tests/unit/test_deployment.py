"""Unit tests for repro.net.deployment generators."""

import random

import pytest

from repro.net import (
    DEPLOYMENTS,
    Field,
    clustered_deployment,
    corner_heavy_deployment,
    grid_deployment,
    uniform_deployment,
)


@pytest.fixture
def field():
    return Field(50.0, 50.0)


class TestUniform:
    def test_count(self, field):
        assert len(uniform_deployment(field, 100, random.Random(1))) == 100

    def test_zero_nodes(self, field):
        assert uniform_deployment(field, 0, random.Random(1)) == []

    def test_negative_rejected(self, field):
        with pytest.raises(ValueError):
            uniform_deployment(field, -1, random.Random(1))

    def test_all_inside(self, field):
        points = uniform_deployment(field, 500, random.Random(2))
        assert all(field.contains(p) for p in points)

    def test_deterministic_per_seed(self, field):
        a = uniform_deployment(field, 50, random.Random(3))
        b = uniform_deployment(field, 50, random.Random(3))
        assert a == b

    def test_roughly_uniform_quadrants(self, field):
        points = uniform_deployment(field, 4000, random.Random(4))
        q1 = sum(1 for x, y in points if x < 25 and y < 25)
        assert 0.2 < q1 / len(points) < 0.3


class TestGrid:
    def test_count(self, field):
        assert len(grid_deployment(field, 100, random.Random(1))) == 100

    def test_all_inside(self, field):
        points = grid_deployment(field, 163, random.Random(1))
        assert all(field.contains(p) for p in points)

    def test_zero(self, field):
        assert grid_deployment(field, 0, random.Random(1)) == []

    def test_no_jitter_is_regular(self, field):
        points = grid_deployment(field, 25, random.Random(1), jitter=0.0)
        xs = sorted({round(p[0], 6) for p in points})
        assert len(xs) == 5  # 5x5 lattice


class TestClustered:
    def test_count_and_containment(self, field):
        points = clustered_deployment(field, 200, random.Random(1))
        assert len(points) == 200
        assert all(field.contains(p) for p in points)

    def test_invalid_clusters(self, field):
        with pytest.raises(ValueError):
            clustered_deployment(field, 10, random.Random(1), clusters=0)

    def test_is_less_uniform_than_uniform(self, field):
        """Clustered deployments concentrate mass: the busiest 10x10 block
        holds a larger share of the nodes than under uniform placement."""
        rng = random.Random(5)

        def busiest_share(points):
            counts = {}
            for x, y in points:
                key = (int(x // 10), int(y // 10))
                counts[key] = counts.get(key, 0) + 1
            return max(counts.values()) / len(points)

        clustered = clustered_deployment(field, 600, rng, clusters=2,
                                         spread_fraction=0.05)
        uniform = uniform_deployment(field, 600, rng)
        assert busiest_share(clustered) > busiest_share(uniform)


class TestCornerHeavy:
    def test_count_and_containment(self, field):
        points = corner_heavy_deployment(field, 150, random.Random(1))
        assert len(points) == 150
        assert all(field.contains(p) for p in points)

    def test_bias_validation(self, field):
        with pytest.raises(ValueError):
            corner_heavy_deployment(field, 10, random.Random(1), bias=1.5)

    def test_origin_quadrant_overweighted(self, field):
        points = corner_heavy_deployment(field, 2000, random.Random(2), bias=0.8)
        origin_quadrant = sum(1 for x, y in points if x <= 25 and y <= 25)
        assert origin_quadrant / len(points) > 0.6


class TestRegistry:
    def test_all_names_present(self):
        assert set(DEPLOYMENTS) == {"uniform", "grid", "clustered", "corner_heavy"}

    def test_registry_callables_work(self, field):
        for name, generator in DEPLOYMENTS.items():
            points = generator(field, 10, random.Random(0))
            assert len(points) == 10, name
