"""Integration tests: full scenarios exercising every subsystem together.

These use reduced populations/fields so the whole file stays fast, but each
run goes through deployment, the packet-level control plane, adaptive
sleeping, energy depletion, failure injection, coverage tracking and GRAB
delivery end to end.
"""

import pytest

from repro.core import NodeMode
from repro.experiments import Scenario, run_scenario

# A small but complete scenario: 25x25 m field, everything enabled.
SMALL = Scenario(
    num_nodes=80,
    field_size=(25.0, 25.0),
    seed=11,
    failure_per_5000s=5.0,
    measure_gaps=True,
    keep_series=True,
)


@pytest.fixture(scope="module")
def small_result():
    return run_scenario(SMALL)


class TestEndToEnd:
    def test_network_lives_beyond_one_battery(self, small_result):
        """The core claim: turning off redundant nodes extends lifetime
        beyond the ~5000 s a single battery allows."""
        assert small_result.coverage_lifetimes[3] > 5200.0

    def test_lifetime_ordering_by_k(self, small_result):
        """K-coverage lifetimes must be nonincreasing in K (§5.2)."""
        lifetimes = small_result.coverage_lifetimes
        assert lifetimes[3] >= lifetimes[4] >= lifetimes[5]

    def test_delivery_lifetime_reported(self, small_result):
        assert small_result.delivery_lifetime is not None
        assert small_result.delivery_lifetime > 5000.0

    def test_energy_conservation(self, small_result):
        """Consumed energy never exceeds deployed energy (80 x 60 J max)."""
        assert small_result.energy_total_j <= 80 * 60.0

    def test_energy_overhead_under_one_percent(self, small_result):
        """§1 headline: PEAS overhead < 1% of total consumption."""
        assert small_result.energy_overhead_ratio < 0.01

    def test_failures_were_injected(self, small_result):
        assert small_result.failures_injected > 0

    def test_wakeups_recorded(self, small_result):
        assert small_result.total_wakeups > 0

    def test_series_kept(self, small_result):
        assert "coverage_3" in small_result.series
        assert "success_ratio" in small_result.series

    def test_gap_stats_present(self, small_result):
        assert small_result.extras["gap_count"] >= 0

    def test_coverage_reaches_threshold_during_boot(self, small_result):
        """Boot-up (§2.1) must reach full coverage within a few mean sleeps."""
        samples = small_result.series["coverage_3"]
        achieved = [t for t, v in samples if v >= 0.9]
        assert achieved and achieved[0] < 300.0


class TestDeterminism:
    def test_same_seed_same_result(self):
        scenario = Scenario(num_nodes=40, field_size=(20.0, 20.0), seed=5,
                            max_time_s=3000.0)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.coverage_lifetimes == second.coverage_lifetimes
        assert first.total_wakeups == second.total_wakeups
        assert first.energy_total_j == pytest.approx(second.energy_total_j)
        assert first.failures_injected == second.failures_injected

    def test_different_seeds_differ(self):
        base = Scenario(num_nodes=40, field_size=(20.0, 20.0), max_time_s=3000.0)
        first = run_scenario(base.with_(seed=1))
        second = run_scenario(base.with_(seed=2))
        assert first.total_wakeups != second.total_wakeups


class TestWorkingSetInvariants:
    def test_working_separation_mostly_respected(self):
        """Concurrent working nodes should mostly be >= R_p apart; brief
        violations can exist between a redundant start and its §4 overlap
        turnoff, but the steady state keeps them rare."""
        from repro.experiments.runner import build_network
        from repro.net import distance
        from repro.sim import RngRegistry, Simulator

        scenario = Scenario(num_nodes=120, field_size=(30.0, 30.0), seed=2,
                            with_traffic=False)
        sim = Simulator()
        network = build_network(scenario, sim, RngRegistry(seed=2))
        network.start()
        violations = 0
        checks = 0
        for t in range(500, 4001, 500):
            sim.run(until=float(t))
            working = [network.node(i).position for i in network.working_ids()]
            for i in range(len(working)):
                for j in range(i + 1, len(working)):
                    checks += 1
                    if distance(working[i], working[j]) < 3.0:
                        violations += 1
        assert checks > 0
        assert violations / checks < 0.02

    def test_sleepers_exist_in_dense_network(self):
        """PEAS's whole point: dense deployments leave most nodes asleep."""
        from repro.experiments.runner import build_network
        from repro.sim import RngRegistry, Simulator

        scenario = Scenario(num_nodes=300, field_size=(25.0, 25.0), seed=4,
                            with_traffic=False)
        sim = Simulator()
        network = build_network(scenario, sim, RngRegistry(seed=4))
        network.start()
        sim.run(until=1000.0)
        sleeping = [
            n for n in network.sensor_nodes() if n.mode is NodeMode.SLEEPING
        ]
        assert len(sleeping) > 150  # the majority sleeps

    def test_failure_robustness_replacement(self):
        """Killing a large batch of workers must not permanently destroy
        coverage: sleepers wake and take over (§5.3)."""
        from repro.coverage import CoverageGrid, CoverageTracker
        from repro.experiments.runner import build_network
        from repro.net import Field
        from repro.sim import RngRegistry, Simulator

        scenario = Scenario(num_nodes=300, field_size=(25.0, 25.0), seed=6,
                            with_traffic=False)
        sim = Simulator()
        network = build_network(scenario, sim, RngRegistry(seed=6))
        grid = CoverageGrid(Field(25.0, 25.0), sensing_range=10.0)
        tracker = CoverageTracker(sim, grid, ks=(1,))
        network.working_observers.append(tracker.on_working_change)
        network.start()
        tracker.start()
        sim.run(until=1000.0)
        # Kill one third of the current workers at once.
        workers = list(network.working_ids())
        for node_id in workers[: len(workers) // 3]:
            network.kill(node_id)
        sim.run(until=3000.0)
        assert grid.fraction(1) > 0.95
