"""Integration tests for the observability pipeline.

Two guarantees hold the tentpole together:

* **Golden traces** — the NDJSON stream of a tiny run is byte-stable: two
  runs of the same scenario produce identical files, with the neighbor
  cache on or off (tracing must not observe optimization-dependent state).
* **Null-sink neutrality** — running with a disabled tracer produces
  bit-identical results to running with no tracer at all, so the PR-1
  fast-path numbers survive the instrumentation unconditionally.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.obs import (
    NdjsonSink,
    RingBufferSink,
    Tracer,
    null_tracer,
    validate_trace_file,
)
from repro.obs.inspect import summarize_trace_file

TINY = Scenario(
    num_nodes=10,
    field_size=(12.0, 12.0),
    seed=3,
    failure_per_5000s=2.0,
    with_traffic=False,
    max_time_s=4_000.0,
)


def _trace_to(path):
    tracer = Tracer(NdjsonSink(path))
    try:
        result = run_scenario(TINY, tracer=tracer)
    finally:
        tracer.close()
    return result


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def golden(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("golden") / "trace.ndjson"
        result = _trace_to(path)
        return path.read_bytes(), result

    def test_trace_has_content_and_validates(self, golden, tmp_path):
        raw, result = golden
        assert raw.count(b"\n") > 50
        path = tmp_path / "replay.ndjson"
        path.write_bytes(raw)
        assert validate_trace_file(path) == []
        assert result.manifest["trace"]["emitted"] == raw.count(b"\n")

    def test_rerun_is_byte_identical(self, golden, tmp_path):
        again = tmp_path / "again.ndjson"
        _trace_to(again)
        assert again.read_bytes() == golden[0]

    def test_cache_off_is_byte_identical(self, golden, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NEIGHBOR_CACHE", "0")
        brute = tmp_path / "brute.ndjson"
        _trace_to(brute)
        assert brute.read_bytes() == golden[0]

    def test_summary_matches_result(self, golden, tmp_path):
        raw, result = golden
        path = tmp_path / "sum.ndjson"
        path.write_bytes(raw)
        summary = summarize_trace_file(path)
        assert len(summary.failures) == result.failures_injected
        assert sum(summary.probes.values()) == result.counters.get("probes_sent", 0)

    def test_harness_entrypoint_is_byte_identical(self, golden, tmp_path):
        # The refactored composition layer must reproduce the legacy
        # run_scenario trace byte-for-byte, manifest sidecar included.
        from repro.harness import RunOptions, run

        trace = tmp_path / "harness.ndjson"
        run(TINY, RunOptions(trace_path=str(trace)))
        assert trace.read_bytes() == golden[0]
        assert (tmp_path / "harness.manifest.json").exists()

    def test_empty_fault_plan_is_byte_identical(self, golden, tmp_path):
        # The fault subsystem's no-op guarantee: a scenario carrying an
        # explicitly-empty FaultPlan emits no fault events and perturbs
        # no RNG stream, so its trace matches the golden byte-for-byte.
        from repro.faults import FaultPlan

        trace = tmp_path / "emptyplan.ndjson"
        tracer = Tracer(NdjsonSink(trace))
        try:
            run_scenario(TINY.with_(fault_plan=FaultPlan()), tracer=tracer)
        finally:
            tracer.close()
        assert trace.read_bytes() == golden[0]

    def test_sweep_path_is_byte_identical(self, golden, tmp_path):
        # Serial run_sweep with a templated trace path runs the same
        # harness code pooled workers do; its trace must match too.
        from repro.experiments import run_sweep
        from repro.harness import RunOptions

        template = tmp_path / "s{seed}-n{nodes}-{protocol}.ndjson"
        (result,) = run_sweep([TINY], options=RunOptions(trace_path=str(template)))
        trace = tmp_path / f"s{TINY.seed}-n{TINY.num_nodes}-peas.ndjson"
        assert trace.read_bytes() == golden[0]
        assert result.manifest["protocol"] == "peas"


def _fingerprint(result):
    payload = dataclasses.asdict(result)
    payload.pop("manifest")  # wall-clock provenance is volatile by design
    payload.pop("profile")
    return payload


class TestNullSinkNeutrality:
    def test_null_tracer_is_bit_identical_to_untraced(self):
        untraced = run_scenario(TINY)
        nulled = run_scenario(TINY, tracer=null_tracer())
        assert _fingerprint(nulled) == _fingerprint(untraced)

    def test_live_tracer_does_not_change_results(self):
        untraced = run_scenario(TINY)
        tracer = Tracer(RingBufferSink())
        traced = run_scenario(TINY, tracer=tracer)
        assert _fingerprint(traced) == _fingerprint(untraced)
        assert tracer.stats()["emitted"] > 0

    def test_profiled_run_does_not_change_results(self):
        plain = run_scenario(TINY)
        profiled = run_scenario(TINY, profile=True)
        assert _fingerprint(profiled) == _fingerprint(plain)
        assert profiled.profile is not None
        assert profiled.profile["events"] > 0
        assert plain.profile is None


class TestManifestProvenance:
    def test_manifest_block(self):
        result = run_scenario(TINY)
        manifest = result.manifest
        assert manifest["seed"] == TINY.seed
        assert manifest["protocol"] == "peas"
        assert manifest["config_hash"] == run_scenario(TINY).manifest["config_hash"]
        assert "channel" in manifest["rng_streams"]
        assert manifest["events_executed"] > 0
        assert manifest["sim_end_time_s"] == result.end_time
        assert manifest["mac"]["num_probes"] == TINY.config.num_probes
        assert manifest["timing"]["wall_time_s"] > 0
