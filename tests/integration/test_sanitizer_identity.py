"""``--sanitize`` must be observation-only: a seeded run with the sanitizer
on is bit-identical to the same run with it off — same metrics, same
counters, same trace event stream.  Only ``extras["sanitizer_checks"]``
(the sanitizer's own accounting) may differ.
"""

import dataclasses

from repro.experiments import Scenario, run_scenario
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer

SCENARIO = Scenario(
    num_nodes=24,
    seed=7,
    field_size=(30.0, 30.0),
    failure_per_5000s=5.0,
    with_traffic=False,
    measure_gaps=True,
    max_time_s=3_000.0,
)


def run(sanitize):
    sink = RingBufferSink()
    result = run_scenario(SCENARIO, tracer=Tracer(sink), sanitize=sanitize)
    return result, sink.events()


def comparable(result):
    payload = dataclasses.asdict(result)
    payload.pop("manifest", None)  # carries wall time, differs by design
    payload["extras"] = {
        k: v for k, v in payload["extras"].items() if k != "sanitizer_checks"
    }
    return payload


def test_sanitized_run_is_bit_identical():
    plain_result, plain_trace = run(sanitize=False)
    checked_result, checked_trace = run(sanitize=True)

    assert comparable(plain_result) == comparable(checked_result)
    assert plain_trace == checked_trace

    # The sanitizer really ran and its accounting landed in extras.
    assert "sanitizer_checks" not in plain_result.extras
    assert checked_result.extras["sanitizer_checks"] > 0
