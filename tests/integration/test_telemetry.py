"""Sweep telemetry end to end: byte-neutrality, the pooled bus, exports.

The contract has two halves.  Metrics collection must be *free* when off
and *invisible* when on — identical results and traces, because every
instrument is read outside the event loop.  And the sweep bus must be
best-effort: heartbeats may drop, but ``finish()`` reconciles against the
returned results and always writes schema-valid exports.
"""

import io
import json

from repro.experiments import (
    RunError,
    Scenario,
    SweepTelemetry,
    expand_seeds,
    result_to_dict,
    run_sweep,
)
from repro.harness import RunOptions
from repro.harness.runner import run as run_scenario
from repro.obs import diff_runs, load_run, render_diff, validate_metrics_file
from repro.obs.metrics import METRIC_NAMES, MetricsRegistry

BASE = Scenario(
    num_nodes=12,
    field_size=(12.0, 12.0),
    failure_per_5000s=4.0,
    with_traffic=False,
    max_time_s=1_500.0,
)


def _comparable(result):
    """The result, minus wall-clock provenance and the metrics block."""
    payload = result_to_dict(result)
    payload["manifest"] = dict(payload["manifest"])
    payload["manifest"].pop("timing", None)
    payload.pop("metrics", None)
    return payload


class TestByteNeutrality:
    def test_results_identical_with_metrics_on(self):
        plain = run_scenario(BASE)
        metered = run_scenario(BASE, RunOptions(metrics=True))
        assert _comparable(metered) == _comparable(plain)
        assert plain.metrics is None
        assert metered.metrics

    def test_collected_samples_tell_the_runs_story(self):
        result = run_scenario(BASE, RunOptions(metrics=True))
        by_name = {}
        for sample in result.metrics:
            by_name.setdefault(sample["name"], []).append(sample)
        assert by_name["peas_runs_total"][0]["value"] == 1
        assert by_name["peas_sim_events_total"][0]["value"] > 0
        assert by_name["peas_sim_heap_size"][0]["value"] > 0
        labels = by_name["peas_runs_total"][0]["labels"]
        assert labels["protocol"] == "peas"
        assert labels["status"] == "ok"
        # Samples merge cleanly into a registry (the sweep-level path).
        registry = MetricsRegistry()
        registry.merge(result.metrics)
        registry.merge(result.metrics)
        assert registry.counter(
            "peas_runs_total", **labels
        ).value == 2


class TestSerialTelemetry:
    def test_progress_and_exports(self, tmp_path):
        stream = io.StringIO()
        telemetry = SweepTelemetry(
            tmp_path / "out", label="unit", stream=stream, live=False,
            interval_s=0.0,
        )
        scenarios = expand_seeds([BASE], [0, 1])
        results = run_sweep(
            scenarios, options=RunOptions(metrics=True), telemetry=telemetry
        )
        assert len(results) == 2
        out = stream.getvalue()
        assert "[unit] 2/2 runs (100%)" in out
        assert telemetry.done == 2 and telemetry.errors == 0

        assert validate_metrics_file(tmp_path / "out" / "metrics.ndjson") == []
        manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
        assert manifest["schema"] == "peas-sweep-manifest/1"
        assert manifest["runs"] == 2 and manifest["ok"] == 2
        assert manifest["protocols"] == ["peas"]
        assert manifest["seed_range"] == [0, 1]
        assert len(manifest["config_hashes"]) == 2
        prom = (tmp_path / "out" / "metrics.prom").read_text()
        assert "# TYPE peas_sweep_runs_total counter" in prom
        assert 'peas_sweep_runs_total{status="ok"} 2' in prom

    def test_exports_survive_failed_runs(self, tmp_path):
        telemetry = SweepTelemetry(
            tmp_path / "out", stream=io.StringIO(), live=False
        )
        # Constructs fine but fails inside the worker: GAF rejects a
        # clock-drift plan (same trick as the fault-injection tests).
        from repro.faults import ClockDriftFault, FaultPlan

        bad = BASE.with_(
            protocol="gaf",
            fault_plan=FaultPlan((ClockDriftFault(max_skew=0.05),)),
        )
        results = run_sweep(
            [BASE.with_(seed=0), bad],
            errors="collect",
            options=RunOptions(metrics=True),
            telemetry=telemetry,
        )
        assert isinstance(results[1], RunError)
        assert telemetry.errors == 1
        manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
        assert manifest["ok"] == 1 and manifest["errors"] == 1
        assert validate_metrics_file(tmp_path / "out" / "metrics.ndjson") == []


class TestPooledTelemetry:
    def test_bus_carries_heartbeats_and_reconciles(self, tmp_path):
        telemetry = SweepTelemetry(
            tmp_path / "out", label="pooled", stream=io.StringIO(), live=False,
            interval_s=0.0,
        )
        scenarios = expand_seeds([BASE], [0, 1, 2, 3])
        results = run_sweep(
            scenarios,
            processes=2,
            options=RunOptions(metrics=True),
            telemetry=telemetry,
        )
        assert len(results) == 4
        # The bus saw real workers; finish() reconciled done/errors from
        # the results even if individual messages were dropped.
        assert telemetry.workers_seen
        assert telemetry.heartbeats >= 1
        assert telemetry.done == 4 and telemetry.errors == 0
        assert validate_metrics_file(tmp_path / "out" / "metrics.ndjson") == []
        manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
        assert manifest["runs"] == 4 and manifest["ok"] == 4
        assert manifest["workers"] >= 1
        # Per-run samples merged: 4 runs' counters folded into one export.
        record = load_run(tmp_path / "out")
        key = next(
            k for k in record.samples
            if k[0] == "peas_runs_total" and ("status", "ok") in k[1]
        )
        assert record.samples[key]["value"] == 4


class TestDiffWorkflow:
    def run_sweep_with_export(self, tmp_path, name, seeds):
        telemetry = SweepTelemetry(
            tmp_path / name, label=name, stream=io.StringIO(), live=False
        )
        run_sweep(
            expand_seeds([BASE], seeds),
            options=RunOptions(metrics=True),
            telemetry=telemetry,
        )
        return tmp_path / name

    def test_identical_sweeps_diff_clean(self, tmp_path):
        a = self.run_sweep_with_export(tmp_path, "a", [0, 1])
        b = self.run_sweep_with_export(tmp_path, "b", [0, 1])
        diff = diff_runs(load_run(a), load_run(b))
        # Same config digest and git SHA; only the label + wall-clock
        # instruments move.
        drift_fields = [f for f, _va, _vb in diff.drift]
        assert "git_sha" not in drift_fields
        assert "config_digest" not in drift_fields
        moved = {d.name for d in diff.changed}
        assert moved <= {"peas_sweep_wall_seconds", "peas_run_wall_seconds",
                         "peas_run_rss_mb", "peas_sweep_heartbeats_total"}
        assert diff.unchanged > 5

    def test_diff_reports_real_movement(self, tmp_path):
        a = self.run_sweep_with_export(tmp_path, "a", [0])
        b = self.run_sweep_with_export(tmp_path, "b", [0, 1, 2])
        diff = diff_runs(load_run(a), load_run(b))
        assert ("runs", 1, 3) in diff.drift
        report = render_diff(diff)
        assert "provenance drift" in report
        assert "peas_runs_total" in report
        assert "metrics moved" in report


class TestRunErrorSummary:
    def test_summary_carries_coordinates_and_traceback_tail(self):
        error = RunError(
            scenario=Scenario(num_nodes=10, seed=7),
            error_type="ValueError",
            error_message="boom",
            traceback_text=(
                "Traceback (most recent call last):\n"
                '  File "pool.py", line 1, in plumbing\n'
                '  File "runner.py", line 2, in _run\n'
                '  File "node.py", line 3, in _wake\n'
                "ValueError: boom\n"
            ),
        )
        text = error.summary()
        head, *tail = text.splitlines()
        assert head == "peas/n=10/seed=7: ValueError: boom"
        # Last three non-empty traceback lines, indented; pool plumbing
        # (the head of the trace) is elided.
        assert len(tail) == 3
        assert tail[0] == '      File "runner.py", line 2, in _run'
        assert tail[-1] == "    ValueError: boom"
        assert "pool.py" not in text

    def test_summary_without_traceback_is_one_line(self):
        error = RunError(
            scenario=Scenario(num_nodes=5, seed=1),
            error_type="RuntimeError",
            error_message="x",
            traceback_text="",
        )
        assert error.summary() == "peas/n=5/seed=1: RuntimeError: x"


def test_metric_catalogue_matches_prometheus_conventions():
    # Counters end in _total (or a unit), gauges/histograms carry units.
    for name, (kind, _help) in METRIC_NAMES.items():
        if kind == "counter":
            assert name.endswith(("_total", "_seconds")), name
