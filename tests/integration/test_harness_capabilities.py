"""Baselines run under the full capability stack via the shared harness.

Before the harness refactor only PEAS runs could be traced, profiled,
sanitized or manifest-stamped; baseline comparisons ran on a parallel
code path with none of that.  These tests pin the new guarantee: every
registered protocol accepts the same capability stack and emits the same
provenance artifacts.
"""

import pytest

from repro.baselines import run_baseline
from repro.experiments import Scenario
from repro.obs import RingBufferSink, Tracer, validate_trace_file

SMALL = Scenario(
    num_nodes=24,
    field_size=(16.0, 16.0),
    seed=2,
    failure_per_5000s=4.0,
    with_traffic=False,
    max_time_s=2_000.0,
)

PROTOCOLS = ["duty_cycle", "gaf"]


class TestBaselineCapabilities:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_manifest_records_protocol_and_rng_streams(self, protocol):
        result = run_baseline(SMALL, protocol=protocol)
        manifest = result.manifest
        assert manifest["protocol"] == protocol
        assert manifest["seed"] == SMALL.seed
        assert manifest["events_executed"] > 0
        assert "deployment" in manifest["rng_streams"]
        assert "failures" in manifest["rng_streams"]

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_live_tracer_emits_and_preserves_metrics(self, protocol):
        plain = run_baseline(SMALL, protocol=protocol)
        tracer = Tracer(RingBufferSink())
        traced = run_baseline(SMALL, protocol=protocol, tracer=tracer)
        assert tracer.stats()["emitted"] > 0
        assert traced.end_time == plain.end_time
        assert traced.coverage_lifetimes == plain.coverage_lifetimes
        assert traced.failures_injected == plain.failures_injected
        assert traced.energy_total_j == plain.energy_total_j

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_trace_file_validates_with_manifest_sidecar(self, protocol, tmp_path):
        from repro.harness import RunOptions, run
        from repro.obs import load_manifest

        trace = tmp_path / f"{protocol}.ndjson"
        result = run(
            SMALL.with_(protocol=protocol), RunOptions(trace_path=str(trace))
        )
        assert trace.stat().st_size > 0
        assert validate_trace_file(trace) == []
        sidecar = tmp_path / f"{protocol}.manifest.json"
        manifest = load_manifest(sidecar)
        assert manifest["protocol"] == protocol
        assert manifest["trace"]["emitted"] == result.manifest["trace"]["emitted"]

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_sanitize_and_profile(self, protocol):
        result = run_baseline(SMALL, protocol=protocol, sanitize=True, profile=True)
        assert result.extras["sanitizer_checks"] > 0
        assert result.profile is not None
        assert result.profile["events"] > 0

    def test_custom_factory_manifest_says_custom(self):
        from repro.baselines import DutyCycleProtocol

        def factory(network, rngs):
            return DutyCycleProtocol(network, rng=rngs.stream("duty"))

        result = run_baseline(SMALL, protocol_factory=factory)
        assert result.manifest["protocol"] == "custom"
