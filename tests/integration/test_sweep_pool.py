"""Pooled and serial sweeps must be interchangeable.

Each run is seeded deterministically from its scenario alone, so a process
pool is a pure execution detail: the pooled sweep must return exactly the
results a serial sweep does, in the input scenario order, for any
chunksize.  A regression here means either the harness picked up hidden
global state or ``pool.map`` ordering broke.
"""

import pytest

from repro.experiments import (
    Scenario,
    expand_protocols,
    expand_seeds,
    result_to_dict,
    run_sweep,
)
from repro.experiments.sweep import _default_chunksize

BASE = Scenario(
    num_nodes=12,
    field_size=(12.0, 12.0),
    failure_per_5000s=4.0,
    with_traffic=False,
    max_time_s=1_500.0,
)

# Two protocols x two seeds: heterogeneous enough that misordering or
# cross-worker state would show, small enough to run in seconds.
SCENARIOS = expand_seeds(expand_protocols([BASE], ["peas", "duty_cycle"]), [0, 1])


def _comparable(result):
    payload = result_to_dict(result)
    # Provenance carries wall-clock timings; everything else must match.
    protocol = payload["manifest"].get("protocol")
    payload["manifest"] = {"protocol": protocol}
    payload.pop("profile")
    return payload


class TestPooledVsSerial:
    @pytest.mark.parametrize("chunksize", [None, 1, 3])
    def test_pooled_matches_serial_in_input_order(self, chunksize):
        serial = run_sweep(SCENARIOS)
        pooled = run_sweep(SCENARIOS, processes=2, chunksize=chunksize)
        assert [_comparable(r) for r in pooled] == [
            _comparable(r) for r in serial
        ]

    def test_results_follow_scenario_order(self):
        results = run_sweep(SCENARIOS, processes=2)
        assert [
            (r.manifest["protocol"], r.seed) for r in results
        ] == [(s.protocol, s.seed) for s in SCENARIOS]


class TestDefaultChunksize:
    def test_floor_is_one(self):
        assert _default_chunksize(1, 8) == 1
        assert _default_chunksize(0, 2) == 1

    def test_targets_four_chunks_per_worker(self):
        assert _default_chunksize(64, 4) == 4
        assert _default_chunksize(100, 2) == 12
