"""Integration comparisons: PEAS vs the baseline protocols.

These encode the qualitative claims the paper's motivation rests on:
lifetime extension over AlwaysOn, and shorter failure gaps than predicted-
lifetime schemes (Figures 4/5).
"""

import pytest

from repro.baselines import run_baseline
from repro.experiments import Scenario, run_scenario

SCENARIO = Scenario(
    num_nodes=150,
    field_size=(25.0, 25.0),
    seed=9,
    with_traffic=False,
    failure_per_5000s=5.0,
    measure_gaps=True,
)


@pytest.fixture(scope="module")
def peas_result():
    return run_scenario(SCENARIO)


@pytest.fixture(scope="module")
def always_on_result():
    return run_baseline(SCENARIO, protocol="always_on", measure_gaps=True)


@pytest.fixture(scope="module")
def gaf_result():
    return run_baseline(SCENARIO, protocol="gaf", measure_gaps=True)


class TestLifetimeExtension:
    def test_peas_outlives_always_on(self, peas_result, always_on_result):
        """The headline claim: lifetime grows with deployment redundancy
        instead of being pinned to one battery."""
        assert (
            peas_result.coverage_lifetimes[3]
            > 1.5 * always_on_result.coverage_lifetimes[3]
        )

    def test_always_on_pinned_to_battery_life(self, always_on_result):
        assert always_on_result.coverage_lifetimes[3] < 5200.0

    def test_peas_total_energy_not_higher(self, peas_result, always_on_result):
        """PEAS spends the same deployed energy or less, spread over more
        time (sleepers idle at 0.03 mW)."""
        assert peas_result.energy_total_j <= always_on_result.energy_total_j * 1.05


class TestFailureGaps:
    def test_peas_gaps_shorter_than_gaf(self, peas_result, gaf_result):
        """Figure 4: predicted-lifetime wakeups leave huge dark intervals
        after unexpected failures; PEAS's randomized probing refills holes
        at rate ~lambda_d."""
        if gaf_result.extras["gap_count"] == 0:
            pytest.skip("no closed GAF gaps in this seed")
        assert (
            peas_result.extras["gap_p95_s"] < gaf_result.extras["gap_p95_s"]
        )


class TestFailureRobustness:
    def test_lifetime_degrades_gracefully_with_failures(self):
        """§5.3: even heavy failure injection costs only a modest share of
        the lifetime (paper: 12-20% at 38% failed nodes)."""
        calm = run_scenario(SCENARIO.with_(failure_per_5000s=0.0, measure_gaps=False))
        harsh = run_scenario(
            SCENARIO.with_(failure_per_5000s=30.0, measure_gaps=False)
        )
        assert harsh.coverage_lifetimes[3] is not None
        ratio = harsh.coverage_lifetimes[3] / calm.coverage_lifetimes[3]
        assert ratio > 0.5

    def test_failure_fraction_scales_with_rate(self):
        low = run_scenario(SCENARIO.with_(failure_per_5000s=5.0, measure_gaps=False))
        high = run_scenario(SCENARIO.with_(failure_per_5000s=25.0, measure_gaps=False))
        assert high.failures_injected > low.failures_injected
