"""End-to-end ``peas-snapshot/1`` contracts through the file surface.

* A checkpointed-then-restored run's NDJSON trace, concatenated after the
  checkpointing run's prefix, is **byte-identical** to the uninterrupted
  run's trace file, and the restored ``RunResult`` metrics match exactly.
* ``run_sweep(warm_start=...)`` simulates one fault-quiescent burn-in per
  distinct base and forks every failure-rate variant from it, with the
  telemetry reporting the reuse.
"""

import dataclasses
import json

import pytest

from repro.experiments import Scenario, run_sweep
from repro.experiments.sweep import WarmStart
from repro.experiments.telemetry import SweepTelemetry
from repro.harness import RunOptions, load_snapshot, resume, run

SCENARIO = Scenario(
    num_nodes=24,
    seed=3,
    field_size=(16.0, 16.0),
    failure_per_5000s=12.0,
    with_traffic=True,
    max_time_s=4_000.0,
)


def comparable(result):
    payload = dataclasses.asdict(result)
    payload.pop("manifest", None)  # wall time differs by design
    return payload


class TestCheckpointRestore:
    def test_stitched_trace_bytes_and_metrics_match_uninterrupted(
        self, tmp_path
    ):
        full = run(
            SCENARIO, RunOptions(trace_path=str(tmp_path / "full.ndjson"))
        )
        run(
            SCENARIO,
            RunOptions(
                trace_path=str(tmp_path / "prefix.ndjson"),
                snapshot_path=str(tmp_path / "ck.json"),
                stop_after_s=1_200.0,
            ),
        )
        restored = resume(
            tmp_path / "ck.json",
            RunOptions(trace_path=str(tmp_path / "suffix.ndjson")),
        )
        stitched = (tmp_path / "prefix.ndjson").read_bytes() + (
            tmp_path / "suffix.ndjson"
        ).read_bytes()
        want = (tmp_path / "full.ndjson").read_bytes()
        assert len(want) > 1_000  # non-vacuous: the run actually traced
        assert stitched == want
        assert comparable(restored) == comparable(full)

    def test_checkpoint_cadence_rewrites_one_file(self, tmp_path):
        target = tmp_path / "ck-{seed}.json"
        full = run(SCENARIO, RunOptions())
        run(
            SCENARIO,
            RunOptions(
                snapshot_path=str(target), checkpoint_every_s=1_500.0
            ),
        )
        resolved = tmp_path / "ck-3.json"  # {seed} templating applies
        document = load_snapshot(resolved)
        provenance = document["provenance"]
        # last checkpoint wrote at a late chunk boundary, not t=0
        assert provenance["created_at_sim_s"] >= 1_500.0
        assert provenance["created_events_executed"] > 0
        assert not resolved.with_name(resolved.name + ".tmp").exists()
        restored = resume(resolved)
        assert comparable(restored) == comparable(full)


RATES = (5.33, 16.0, 32.0)


def failure_variants(seeds=(1,)):
    base = Scenario(
        num_nodes=24,
        seed=1,
        field_size=(16.0, 16.0),
        with_traffic=False,
        max_time_s=4_000.0,
    )
    return [
        base.with_(failure_per_5000s=rate, seed=seed)
        for seed in seeds
        for rate in RATES
    ]


class TestWarmStartSweep:
    def test_variants_share_one_burn_in_and_telemetry_reports_it(
        self, tmp_path
    ):
        telemetry = SweepTelemetry(tmp_path / "out", label="warm")
        results = run_sweep(
            failure_variants(),
            warm_start=WarmStart(
                burn_in_s=1_000.0, snapshot_dir=tmp_path / "snaps"
            ),
            telemetry=telemetry,
        )
        assert telemetry.warm_start == {"burn_ins": 1, "forks": 3}
        snaps = list((tmp_path / "snaps").glob("burn-in-*.json"))
        assert len(snaps) == 1  # one shared prefix for all three variants
        manifest = json.loads(
            (tmp_path / "out" / "manifest.json").read_text()
        )
        assert manifest["warm_start"] == {"burn_ins": 1, "forks": 3}
        by_rate = {r.failure_rate_per_5000s: r for r in results}
        failures = [by_rate[rate].failures_injected for rate in RATES]
        assert failures == sorted(failures) and failures[0] < failures[-1]

    def test_distinct_seeds_get_distinct_burn_ins(self, tmp_path):
        telemetry = SweepTelemetry(tmp_path / "out", label="warm")
        run_sweep(
            failure_variants(seeds=(1, 2)),
            warm_start=WarmStart(
                burn_in_s=1_000.0, snapshot_dir=tmp_path / "snaps"
            ),
            telemetry=telemetry,
        )
        assert telemetry.warm_start == {"burn_ins": 2, "forks": 6}

    def test_burn_in_must_end_before_every_horizon(self, tmp_path):
        with pytest.raises(ValueError, match="burn_in_s"):
            run_sweep(
                failure_variants(),
                warm_start=WarmStart(burn_in_s=9_000.0),
            )
