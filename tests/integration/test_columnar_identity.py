"""``REPRO_BACKEND`` must be a pure performance knob: a seeded run on the
columnar backend is bit-identical to the same run on the scalar backend —
same metrics, same counters, same byte-for-byte trace event stream.  Both
backends share every consumer code path (the channel, the neighbor cache,
routing, the baselines), which is what makes this gate meaningful: any
divergence is a backend bug, never an acceptable "numerical difference".
"""

import dataclasses
import json

from repro.experiments import Scenario, run_scenario
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer

SCENARIO = Scenario(
    num_nodes=48,
    seed=13,
    field_size=(30.0, 30.0),
    failure_per_5000s=5.0,
    with_traffic=True,
    max_time_s=2_500.0,
)


def run(backend, monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", backend)
    sink = RingBufferSink()
    result = run_scenario(SCENARIO, tracer=Tracer(sink), sanitize=True)
    return result, sink.events()


def comparable(result):
    payload = dataclasses.asdict(result)
    payload.pop("manifest", None)  # carries wall time, differs by design
    return payload


def test_untraced_runs_are_bit_identical(monkeypatch):
    """No tracer attached: the channel takes its prefiltered audience
    tiers (list-mirror loop / vectorized mask) instead of the per-candidate
    legacy path the traced test pins.  Metrics must still match exactly —
    this is the only gate that exercises those tiers end to end."""
    results = {}
    for backend in ("scalar", "columnar"):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        results[backend] = run_scenario(SCENARIO, sanitize=True)
    assert comparable(results["scalar"]) == comparable(results["columnar"])


def test_scalar_and_columnar_runs_are_bit_identical(monkeypatch):
    scalar_result, scalar_trace = run("scalar", monkeypatch)
    columnar_result, columnar_trace = run("columnar", monkeypatch)

    assert comparable(scalar_result) == comparable(columnar_result)
    # Byte-for-byte, not merely equal-as-objects: serialize the way the
    # NDJSON sink would and compare the strings.
    assert [json.dumps(event, sort_keys=True) for event in scalar_trace] == [
        json.dumps(event, sort_keys=True) for event in columnar_trace
    ]
    # Trace actually captured protocol activity (guards against a silently
    # empty sink making the assertion vacuous).
    assert len(scalar_trace) > 100
