"""Integration tests for the fault subsystem under the full harness.

The contract under test, end to end:

* every fault model runs a real scenario to completion under the runtime
  sanitizer, with fault lifecycle events landing in a schema-valid trace;
* fault schedules are seed-deterministic — identical seed and plan yield
  byte-identical traces;
* an explicitly-empty plan is byte-identical to the default (no plan);
* plans ride the scenario through ``peas-scenario/1`` JSON and process
  pools, and unsupported models are rejected per protocol capability;
* sweeps survive in-run failures: captured, retried once, surfaced.
"""

import pytest

from repro.experiments import (
    RunError,
    Scenario,
    SweepError,
    run_scenario,
    run_sweep,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.faults import (
    BurstyLossFault,
    ClockDriftFault,
    CrashFault,
    FaultPlan,
    RegionKillFault,
    TransientOutageFault,
)
from repro.harness import RunOptions
from repro.obs import NdjsonSink, Tracer, validate_trace_file
from repro.obs.inspect import summarize_trace_file

BASE = Scenario(
    num_nodes=40,
    field_size=(25.0, 25.0),
    seed=11,
    failure_per_5000s=2.0,
    with_traffic=False,
    max_time_s=3_000.0,
)

FULL_PLAN = FaultPlan((
    RegionKillFault(at_s=400.0, radius_m=8.0),
    TransientOutageFault(rate_per_5000s=40.0, mean_outage_s=100.0),
    BurstyLossFault(good_mean_s=60.0, bad_mean_s=10.0, bad_loss=0.6),
    ClockDriftFault(max_skew=0.05),
    CrashFault(rate_per_5000s=4.0),
))


def _traced_run(scenario, path, sanitize=True):
    tracer = Tracer(NdjsonSink(path))
    try:
        result = run_scenario(scenario, tracer=tracer, sanitize=sanitize)
    finally:
        tracer.close()
    return result


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def faulted(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("faults") / "faulted.ndjson"
        result = _traced_run(BASE.with_(fault_plan=FULL_PLAN), path)
        return path, result

    def test_trace_validates_with_fault_events(self, faulted):
        path, _result = faulted
        assert validate_trace_file(path) == []
        summary = summarize_trace_file(path)
        # One arm per plan entry, ids in plan order.
        assert summary.fault_arms == {
            "fault0": "region_kill",
            "fault1": "transient_outage",
            "fault2": "bursty_loss",
            "fault3": "clock_drift",
            "fault4": "crash",
        }
        fired_kinds = {kind for _t, _fid, kind, _v in summary.fault_fires}
        assert {"region_kill", "bursty_loss", "clock_drift"} <= fired_kinds

    def test_resilience_metrics_in_extras(self, faulted):
        _path, result = faulted
        assert result.extras["faults_fired"] > 0
        assert result.extras["coverage_dip_max"] >= 0.0
        assert "faults_unrecovered" in result.extras

    def test_bursty_losses_counted_on_channel(self, faulted):
        _path, result = faulted
        assert result.channel_counters.get("bursty_losses", 0) > 0

    def test_outages_and_restores_counted(self, faulted):
        _path, result = faulted
        assert result.counters.get("outages", 0) > 0
        assert result.counters.get("restores", 0) > 0

    def test_inspect_reports_fault_section(self, faulted):
        from repro.obs import render_summary

        path, _result = faulted
        report = render_summary(summarize_trace_file(path))
        assert "fault plan:" in report
        assert "fault0: region_kill armed" in report

    def test_fault_schedule_is_byte_deterministic(self, faulted, tmp_path):
        path, _result = faulted
        again = tmp_path / "again.ndjson"
        _traced_run(BASE.with_(fault_plan=FULL_PLAN), again)
        assert again.read_bytes() == path.read_bytes()

    def test_empty_plan_is_byte_identical_to_default(self, tmp_path):
        default = tmp_path / "default.ndjson"
        explicit = tmp_path / "explicit.ndjson"
        r_default = _traced_run(BASE, default, sanitize=False)
        r_explicit = _traced_run(
            BASE.with_(fault_plan=FaultPlan()), explicit, sanitize=False
        )
        assert explicit.read_bytes() == default.read_bytes()
        assert r_explicit.extras == r_default.extras
        assert "faults_fired" not in r_default.extras


class TestSingleModelRuns:
    @pytest.mark.parametrize("entry", [
        CrashFault(rate_per_5000s=12.0),
        RegionKillFault(at_s=300.0, radius_m=10.0, center=(12.0, 12.0)),
        TransientOutageFault(rate_per_5000s=60.0, mean_outage_s=80.0),
        BurstyLossFault(good_mean_s=50.0, bad_mean_s=12.0, bad_loss=0.7),
        ClockDriftFault(max_skew=0.08),
    ], ids=lambda e: e.kind)
    def test_each_model_runs_sanitized(self, entry):
        result = run_scenario(
            BASE.with_(fault_plan=FaultPlan((entry,))), sanitize=True
        )
        assert result.end_time > 0
        assert result.extras["sanitizer_checks"] > 0


class TestScenarioPlumbing:
    def test_plan_rides_scenario_json(self):
        scenario = BASE.with_(fault_plan=FULL_PLAN, loss_rate=0.1)
        restored = scenario_from_dict(scenario_to_dict(scenario))
        assert restored.fault_plan == FULL_PLAN
        assert restored.loss_rate == pytest.approx(0.1)
        assert restored == scenario

    def test_loss_rate_validated(self):
        with pytest.raises(ValueError, match="loss_rate"):
            BASE.with_(loss_rate=1.0)
        with pytest.raises(ValueError, match="loss_rate"):
            BASE.with_(loss_rate=-0.1)

    def test_unsupported_model_rejected_for_baselines(self):
        scenario = BASE.with_(
            protocol="gaf",
            fault_plan=FaultPlan((TransientOutageFault(10.0, 50.0),)),
        )
        with pytest.raises(ValueError, match="not supported"):
            run_scenario(scenario)

    def test_baselines_accept_region_kill(self):
        scenario = BASE.with_(
            protocol="always_on",
            max_time_s=1_000.0,
            fault_plan=FaultPlan((
                RegionKillFault(at_s=200.0, radius_m=8.0, center=(12.0, 12.0)),
            )),
        )
        result = run_scenario(scenario)
        assert result.extras["faults_fired"] == 1.0
        assert result.failures_injected > 0


def _bad_scenario():
    # Constructs fine, but the fault engine rejects the plan inside the
    # worker: a deterministic in-run failure for exercising sweep capture.
    return BASE.with_(
        protocol="gaf",
        fault_plan=FaultPlan((ClockDriftFault(max_skew=0.05),)),
    )


class TestSweepErrorCapture:
    def test_collect_returns_errors_in_position(self):
        quick = BASE.with_(max_time_s=500.0)
        results = run_sweep(
            [quick, _bad_scenario(), quick.with_(seed=12)],
            errors="collect",
        )
        assert len(results) == 3
        assert not isinstance(results[0], RunError)
        assert isinstance(results[1], RunError)
        assert not isinstance(results[2], RunError)
        error = results[1]
        assert error.error_type == "ValueError"
        assert error.attempts == 2  # failed, retried once, failed again
        assert "clock_drift" in error.error_message
        assert "FaultEngine" in error.traceback_text or error.traceback_text

    def test_raise_mode_summarizes_after_completion(self):
        quick = BASE.with_(max_time_s=500.0)
        with pytest.raises(SweepError) as excinfo:
            run_sweep([quick, _bad_scenario()])
        assert len(excinfo.value.failures) == 1
        assert "gaf" in str(excinfo.value)

    def test_invalid_errors_policy_rejected(self):
        with pytest.raises(ValueError, match="errors"):
            run_sweep([], errors="ignore")

    def test_pooled_sweep_collects_errors(self):
        quick = BASE.with_(max_time_s=500.0)
        results = run_sweep(
            [quick, _bad_scenario()], processes=2, errors="collect"
        )
        assert not isinstance(results[0], RunError)
        assert isinstance(results[1], RunError)
