"""Golden-seed determinism: the perf fast paths must not change behavior.

The stationary-topology optimizations (neighbor caching, event-kernel fast
loop, channel memoization) are pure optimizations — for a fixed scenario
seed the :class:`RunResult` must be bit-identical whether the neighbor
cache is enabled (default) or disabled (brute-force ``within()`` on every
transmit, via ``REPRO_NEIGHBOR_CACHE=0``).
"""

import dataclasses

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario

GOLDEN = Scenario(
    num_nodes=80,
    field_size=(25.0, 25.0),
    seed=11,
    failure_per_5000s=5.0,
    measure_gaps=True,
    keep_series=True,
)


def result_fingerprint(result):
    """Every RunResult field, exact — no tolerances anywhere.

    The manifest is dropped: its timing block (wall clock, peak RSS) is
    volatile by design, and everything reproducible in it (seed, config
    hash, rng streams) is covered by its own tests.  ``profile`` is None
    on unprofiled runs but popped too for symmetry.
    """
    fingerprint = dataclasses.asdict(result)
    fingerprint.pop("manifest", None)
    fingerprint.pop("profile", None)
    return fingerprint


@pytest.fixture(scope="module")
def cached_result():
    return run_scenario(GOLDEN)


class TestGoldenSeedDeterminism:
    def test_rerun_is_bit_identical(self, cached_result):
        again = run_scenario(GOLDEN)
        assert result_fingerprint(again) == result_fingerprint(cached_result)

    def test_neighbor_cache_off_is_bit_identical(self, cached_result, monkeypatch):
        monkeypatch.setenv("REPRO_NEIGHBOR_CACHE", "0")
        brute = run_scenario(GOLDEN)
        assert result_fingerprint(brute) == result_fingerprint(cached_result)

    def test_golden_result_is_plausible(self, cached_result):
        # Sanity floor so a silently-empty run can't pass the equality tests.
        assert cached_result.total_wakeups > 0
        assert cached_result.coverage_lifetimes.get(3, 0.0) > 0.0
        assert cached_result.energy_total_j > 0.0
