"""Crash-safe sweeps: the store + resumable executor, end to end.

The headline contract of the result store (``docs/STORE.md``): a sweep
whose process is SIGKILLed mid-flight loses only the runs that were in
flight — re-running the identical sweep against the same store replays
every completed ``(scenario, seed)`` pair from disk (no key is ever
computed twice) and produces aggregates identical to a sweep that was
never interrupted.  Around that headline, the executor's failure ladder:
a worker that dies (``os._exit``) triggers pool resurrection and a free
or charged retry, a worker that hangs is killed by the per-run wall-clock
timeout, and a deterministically failing run is quarantined as a
:class:`RunError` under ``errors="collect"`` with the attempt trail in
telemetry and the sweep manifest.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import (
    RunError,
    RetryPolicy,
    Scenario,
    SweepTelemetry,
    WarmStart,
    expand_seeds,
    result_to_dict,
    run_sweep,
)
from repro.experiments.executor import _guarded_run
from repro.harness import RunOptions
from repro.store import ResultStore

BASE = Scenario(
    num_nodes=12,
    field_size=(12.0, 12.0),
    failure_per_5000s=4.0,
    with_traffic=False,
    max_time_s=1_500.0,
)
SCENARIOS = expand_seeds([BASE], [0, 1, 2, 3])


def _comparable(result):
    payload = result_to_dict(result)
    # Provenance carries wall-clock timings; everything else must match.
    payload["manifest"] = {"protocol": payload["manifest"].get("protocol")}
    payload.pop("profile")
    return payload


def _journal_ops(store_root):
    lines = (Path(store_root) / "journal.ndjson").read_text().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


# ---------------------------------------------------------------------------
# injected-failure run functions (module-level: pool workers must pickle them)
# ---------------------------------------------------------------------------

def _crash_once_run(scenario, warm_snapshot=None, *, options, warm_burn_in_s=None):
    """SIGKILL-equivalent worker death, once, for one seed."""
    sentinel = os.environ["REPRO_TEST_CRASH_SENTINEL"]
    if scenario.seed == 2 and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(42)
    return _guarded_run(
        scenario, warm_snapshot, options=options, warm_burn_in_s=warm_burn_in_s
    )


def _hang_run(scenario, warm_snapshot=None, *, options, warm_burn_in_s=None):
    """One seed never returns; everyone else is normal."""
    if scenario.seed == 1:
        time.sleep(600.0)
    return _guarded_run(
        scenario, warm_snapshot, options=options, warm_burn_in_s=warm_burn_in_s
    )


def _poison_run(scenario, warm_snapshot=None, *, options, warm_burn_in_s=None):
    """One seed fails deterministically on every attempt."""
    if scenario.seed == 1:
        raise RuntimeError(f"poison seed {scenario.seed}")
    return _guarded_run(
        scenario, warm_snapshot, options=options, warm_burn_in_s=warm_burn_in_s
    )


# ---------------------------------------------------------------------------
# kill -9 mid-sweep, then resume
# ---------------------------------------------------------------------------

_KILLED_SWEEP_SCRIPT = """\
import sys
from repro.experiments import Scenario, expand_seeds, run_sweep
from repro.harness import RunOptions

base = Scenario(
    num_nodes=12, field_size=(12.0, 12.0), failure_per_5000s=4.0,
    with_traffic=False, max_time_s=1_500.0,
)
run_sweep(
    expand_seeds([base], [0, 1, 2, 3]),
    processes=2,
    options=RunOptions(store_dir=sys.argv[1]),
)
print("SWEEP-FINISHED")
"""


class TestKillResume:
    def test_sigkilled_sweep_resumes_without_recomputation(self, tmp_path):
        store_root = tmp_path / "store"
        journal = store_root / "journal.ndjson"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        proc = subprocess.Popen(
            [sys.executable, "-c", _KILLED_SWEEP_SCRIPT, str(store_root)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        # Wait for at least one durable record, then SIGKILL the whole
        # process group (parent and pool workers alike) mid-flight.
        deadline = time.monotonic() + 120.0
        try:
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                if journal.exists() and any(
                    e["op"] == "put" for e in _journal_ops(store_root)
                ):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("sweep subprocess made no progress in 120s")
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()

        records_before = {
            e["key"] for e in _journal_ops(store_root) if e["op"] == "put"
        }
        assert records_before, "kill landed before any run completed"

        # Resume: the identical sweep against the surviving store.
        resumed = run_sweep(
            SCENARIOS, processes=2, options=RunOptions(store_dir=str(store_root))
        )
        assert all(not isinstance(r, RunError) for r in resumed)

        # Zero recomputation: no key is ever computed (put) twice, and
        # every record that survived the kill was replayed as a hit.
        ops = _journal_ops(store_root)
        puts = [e["key"] for e in ops if e["op"] == "put"]
        assert len(puts) == len(set(puts)), "a completed run was recomputed"
        hits = {e["key"] for e in ops if e["op"] == "hit"}
        assert records_before <= hits
        assert len(set(puts)) == len(SCENARIOS)

        # Aggregate-identical to a sweep that was never interrupted.
        golden = run_sweep(SCENARIOS)
        assert [_comparable(r) for r in resumed] == [
            _comparable(r) for r in golden
        ]

    def test_second_pass_is_all_hits(self, tmp_path):
        store_root = str(tmp_path / "store")
        options = RunOptions(store_dir=store_root)
        first = run_sweep(SCENARIOS[:2], processes=2, options=options)
        second = run_sweep(SCENARIOS[:2], processes=2, options=options)
        store = ResultStore(store_root, create=False)
        tallies = store.stats()["journal"]
        assert tallies["put"] == 2
        assert tallies["miss"] == 2
        assert tallies["hit"] == 2
        assert [_comparable(r) for r in second] == [
            _comparable(r) for r in first
        ]


# ---------------------------------------------------------------------------
# the executor's failure ladder (pooled)
# ---------------------------------------------------------------------------

class TestWorkerDeath:
    def test_worker_crash_restarts_pool_and_completes(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_TEST_CRASH_SENTINEL", str(tmp_path / "crashed-once")
        )
        telemetry = SweepTelemetry(tmp_path / "telemetry", label="crash")
        results = run_sweep(
            SCENARIOS,
            processes=2,
            errors="collect",
            telemetry=telemetry,
            _run_fn=_crash_once_run,
        )
        assert all(not isinstance(r, RunError) for r in results)
        assert telemetry.pool_restarts >= 1
        manifest = json.loads(
            (tmp_path / "telemetry" / "manifest.json").read_text()
        )
        assert manifest["pool_restarts"] >= 1
        assert manifest["quarantined"] == 0

    def test_hung_run_is_timed_out_and_quarantined(self, tmp_path):
        telemetry = SweepTelemetry(tmp_path / "telemetry", label="hang")
        results = run_sweep(
            SCENARIOS,
            processes=2,
            errors="collect",
            telemetry=telemetry,
            retry=RetryPolicy(max_attempts=1, run_timeout_s=1.0),
            _run_fn=_hang_run,
        )
        failures = [r for r in results if isinstance(r, RunError)]
        assert len(failures) == 1
        assert failures[0].scenario.seed == 1
        assert failures[0].error_type == "TimeoutError"
        assert "wall-clock budget" in failures[0].error_message
        assert failures[0].quarantined
        survivors = [r for r in results if not isinstance(r, RunError)]
        assert len(survivors) == 3
        assert telemetry.pool_restarts >= 1
        manifest = json.loads(
            (tmp_path / "telemetry" / "manifest.json").read_text()
        )
        assert manifest["quarantined"] == 1

    def test_poison_seed_quarantined_and_never_cached(self, tmp_path):
        store_root = str(tmp_path / "store")
        telemetry = SweepTelemetry(tmp_path / "telemetry", label="poison")
        options = RunOptions(store_dir=store_root, metrics=True)
        results = run_sweep(
            SCENARIOS,
            processes=2,
            options=options,
            errors="collect",
            telemetry=telemetry,
            _run_fn=_poison_run,
        )
        (failure,) = [r for r in results if isinstance(r, RunError)]
        assert failure.scenario.seed == 1
        assert failure.attempts == 2
        assert failure.quarantined
        assert len(failure.trail) == 2
        assert "[2 attempts over" in failure.summary()
        manifest = json.loads(
            (tmp_path / "telemetry" / "manifest.json").read_text()
        )
        assert manifest["quarantined"] == 1
        assert manifest["retries"] == 1
        assert manifest["store"]["hits"] == 0

        # Failures are never cached: a second pass replays the three
        # successes from the store and recomputes (and re-fails) the
        # poison seed.
        second = run_sweep(
            SCENARIOS,
            processes=2,
            options=options,
            errors="collect",
            _run_fn=_poison_run,
        )
        (refailure,) = [r for r in second if isinstance(r, RunError)]
        assert refailure.scenario.seed == 1
        store = ResultStore(store_root, create=False)
        assert store.stats()["journal"]["hit"] == 3


# ---------------------------------------------------------------------------
# warm-start burn-ins cached in the store
# ---------------------------------------------------------------------------

class TestWarmStartCaching:
    def test_burn_in_snapshots_cached_across_sweeps(self, tmp_path):
        store_root = str(tmp_path / "store")
        scenarios = [
            BASE.with_(seed=7, failure_per_5000s=rate) for rate in (4.0, 8.0)
        ]
        options = RunOptions(store_dir=store_root)
        warm = WarmStart(burn_in_s=400.0)

        first = run_sweep(scenarios, options=options, warm_start=warm)
        store = ResultStore(store_root, create=False)
        snapshots = list(store.snapshots_dir.iterdir())
        assert len(snapshots) == 1  # one fault-quiescent base, shared
        assert store.code_fingerprint[:12] in snapshots[0].name
        tallies = store.stats()["journal"]
        assert tallies["snapshot_miss"] == 1
        assert tallies["snapshot_put"] == 1

        second = run_sweep(scenarios, options=options, warm_start=warm)
        tallies = ResultStore(store_root, create=False).stats()["journal"]
        assert tallies["snapshot_hit"] >= 1
        assert tallies["snapshot_put"] == 1  # burn-in simulated exactly once
        assert tallies["hit"] == 2  # ... and both variant runs replayed
        assert [_comparable(r) for r in second] == [
            _comparable(r) for r in first
        ]
