"""Integration tests for the §4 practical extensions under realistic runs."""

import pytest

from repro.core import PEASConfig
from repro.experiments import Scenario, run_scenario

BASE = Scenario(
    num_nodes=120,
    field_size=(25.0, 25.0),
    seed=13,
    with_traffic=False,
    failure_per_5000s=0.0,
    max_time_s=4000.0,
)


class TestLossCompensation:
    """§4: three PROBEs work well against loss rates of up to 10%."""

    def test_multi_probe_limits_redundant_workers_under_loss(self):
        single = run_scenario(
            BASE.with_(loss_rate=0.10, config=PEASConfig(num_probes=1))
        )
        triple = run_scenario(
            BASE.with_(loss_rate=0.10, config=PEASConfig(num_probes=3))
        )
        # Redundant workers show up as extra work starts + overlap turnoffs.
        assert (
            triple.counters.get("overlap_turnoffs", 0)
            <= single.counters.get("overlap_turnoffs", 0)
        )

    def test_overhead_still_small_with_loss(self):
        result = run_scenario(BASE.with_(loss_rate=0.10))
        assert result.energy_overhead_ratio < 0.01  # §4: "still smaller than 1%"


class TestFixedPower:
    """§4: fixed transmission power + signal-strength threshold filtering."""

    def test_fixed_power_network_functions(self):
        result = run_scenario(BASE.with_(config=PEASConfig(fixed_power=True)))
        assert result.counters.get("work_starts", 0) > 0
        assert result.counters.get("sleeps_after_reply", 0) > 0

    def test_fixed_power_equivalent_probing_activity(self):
        """Threshold filtering at S_th(R_p) should sustain a comparable
        control plane.  Fixed power tends to *reduce* redundant work starts
        (carrier sense covers the full R_t, suppressing hidden-terminal
        REPLY collisions), so the bound is one-sided on churn and two-sided
        on wakeups."""
        variable = run_scenario(BASE)
        fixed = run_scenario(BASE.with_(config=PEASConfig(fixed_power=True)))
        assert fixed.counters.get("work_starts") <= 1.5 * variable.counters.get(
            "work_starts"
        )
        assert (
            0.5 * variable.total_wakeups
            < fixed.total_wakeups
            < 2.0 * variable.total_wakeups
        )

    def test_irregular_attenuation_tolerated(self):
        """§4: signal irregularities may densify some areas but the network
        keeps functioning."""
        result = run_scenario(
            BASE.with_(
                config=PEASConfig(fixed_power=True), rssi_irregularity=0.2
            )
        )
        assert result.counters.get("work_starts", 0) > 0


class TestAdaptiveSleepingModes:
    def test_windowed_mode_underperforms_running(self):
        """The paper's literal windowed feedback starves/overshoots (see
        RateEstimator docstring); the running mode sustains far more
        probing activity over the same horizon."""
        long_base = BASE.with_(max_time_s=12000.0, num_nodes=160)
        running = run_scenario(
            long_base.with_(config=PEASConfig(measurement_mode="running"))
        )
        windowed = run_scenario(
            long_base.with_(
                config=PEASConfig(
                    measurement_mode="windowed", max_adjust_factor=None
                )
            )
        )
        assert running.total_wakeups > windowed.total_wakeups

    def test_uncapped_updates_crush_rates(self):
        """Without the step cap, boot-storm feedback drives rates to the
        floor (the instability our DESIGN.md documents)."""
        capped = run_scenario(BASE)
        uncapped = run_scenario(
            BASE.with_(config=PEASConfig(max_adjust_factor=None))
        )
        assert uncapped.total_wakeups <= capped.total_wakeups


class TestDeploymentDistributions:
    """§4 'Distribution of deployed nodes': uneven deployments die sooner."""

    def test_clustered_deployment_shorter_coverage_life(self):
        even = run_scenario(
            BASE.with_(num_nodes=200, max_time_s=30000.0, deployment="uniform")
        )
        uneven = run_scenario(
            BASE.with_(num_nodes=200, max_time_s=30000.0, deployment="clustered")
        )
        even_life = even.coverage_lifetimes[3]
        uneven_life = uneven.coverage_lifetimes[3]
        if uneven_life is None:
            return  # clustered deployment never reached 90%: consistent
        assert uneven_life <= even_life
