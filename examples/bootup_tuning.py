"""§2.1 boot-up tuning: picking the initial probing rate lambda_0.

"The initial value of lambda decides how quickly the network acquires
enough working nodes during the boot-up phase. ... an initial lambda of
0.012 ensures that 50% of the nodes wake up at least once within the first
minute after deployment.  Since PEAS adjusts the probing rates, we may
choose a higher lambda to ensure a fast-functioning network."

This script deploys the same network with several lambda_0 values and
measures (a) the fraction of nodes that woke in the first minute (against
the analytic 1 - exp(-60 lambda)) and (b) the time for 1-coverage to reach
90% — the boot latency the application cares about.
"""

import math

from repro.core import PEASConfig
from repro.coverage import CoverageGrid, CoverageTracker
from repro.experiments import Scenario, build_network, format_table
from repro.net import Field
from repro.sim import RngRegistry, Simulator


def boot_run(initial_rate: float, seed: int = 23):
    scenario = Scenario(
        num_nodes=320,
        seed=seed,
        with_traffic=False,
        config=PEASConfig(initial_rate_hz=initial_rate),
    )
    sim = Simulator()
    network = build_network(scenario, sim, RngRegistry(seed=seed))
    grid = CoverageGrid(Field(50.0, 50.0), sensing_range=10.0)
    tracker = CoverageTracker(sim, grid, ks=(1,), sample_interval_s=1.0)
    network.working_observers.append(tracker.on_working_change)
    network.start()
    tracker.start()
    sim.run(until=60.0)
    woke_in_minute = sum(
        1 for node in network.sensor_nodes() if node.wakeup_count >= 1
    ) / network.population
    sim.run(until=600.0)
    boot_latency = None
    for time, value in tracker.series.samples("coverage_1"):
        if value >= 0.9:
            boot_latency = time
            break
    return woke_in_minute, boot_latency


def main() -> None:
    print("Boot-up tuning: 320 nodes, varying the initial probing rate.\n")
    rows = []
    for rate in (0.005, 0.012, 0.05, 0.1):
        woke, latency = boot_run(rate)
        predicted = 1 - math.exp(-60.0 * rate)
        rows.append([
            f"{rate:.3f}",
            f"{predicted * 100:.0f}%",
            f"{woke * 100:.0f}%",
            latency if latency is not None else "not in 600s",
        ])
    print(format_table(
        ["lambda_0 (1/s)", "predicted wake<=60s", "measured wake<=60s",
         "time to 90% 1-coverage (s)"],
        rows,
        title="Initial probing rate vs boot-up speed (§2.1's example: "
              "lambda=0.012 -> 50% in one minute)",
    ))
    print(
        "\nThe evaluation (§5.2) uses lambda_0 = 0.1 'so that the number of"
        "\nworking nodes quickly stabilizes'; Adaptive Sleeping then tunes"
        "\nthe rates down to the desired lambda_d."
    )


if __name__ == "__main__":
    main()
