"""PEAS against the related-work baselines (§2.1.1 and §6, Figures 4/5).

Runs the identical deployment, batteries and failure process under five
coordination policies and prints a side-by-side comparison:

* ``PEAS``         — probing + adaptive sleeping (this paper);
* ``always_on``    — no energy conservation;
* ``duty_cycle``   — randomized independent sleeping, no coordination;
* ``gaf``          — GAF-like grid leaders with predicted-lifetime sleeps;
* ``synchronized`` — round-based synchronized wakeup/election.

Watch two columns: lifetime (PEAS-class protocols extend it far beyond one
battery) and the gap percentiles (predicted-lifetime schemes leave long
dark intervals after unexpected failures — the paper's Figure 4 — while
PEAS's randomized probing refills holes quickly — Figure 5).
"""

from repro.baselines import BASELINE_FACTORIES, run_baseline
from repro.experiments import Scenario, format_table, run_scenario

SCENARIO = Scenario(
    num_nodes=320,
    seed=7,
    with_traffic=False,
    failure_per_5000s=15.0,  # harsh: unexpected failures are the norm (§1)
    measure_gaps=True,
)


def main() -> None:
    print(
        f"Comparing protocols: {SCENARIO.num_nodes} nodes, failure rate "
        f"{SCENARIO.failure_per_5000s}/5000s.\n"
    )
    rows = []
    print("Running PEAS ...")
    peas = run_scenario(SCENARIO)
    rows.append(_row("PEAS", peas))
    for name in sorted(BASELINE_FACTORIES):
        print(f"Running {name} ...")
        result = run_baseline(SCENARIO, protocol=name, measure_gaps=True)
        rows.append(_row(name, result))

    print()
    print(format_table(
        ["protocol", "3-cov lifetime (s)", "mean gap (s)", "p95 gap (s)",
         "energy used (J)"],
        rows,
        title="PEAS vs related-work baselines under unexpected failures",
    ))
    print(
        "\nReading guide: always_on dies with its first battery; gaf's"
        "\npredicted-lifetime sleeps leave enormous gaps when leaders fail"
        "\nunexpectedly (Figure 4); PEAS keeps gaps near 1/lambda_d while"
        "\nmatching the best lifetimes (Figure 5)."
    )


def _row(label, result):
    return [
        label,
        result.coverage_lifetimes.get(3),
        f"{result.extras['gap_mean_s']:.0f}",
        f"{result.extras['gap_p95_s']:.0f}",
        f"{result.energy_total_j:.0f}",
    ]


if __name__ == "__main__":
    main()
