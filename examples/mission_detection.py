"""Mission-level evaluation: does the network actually catch events?

K-coverage (§5.1) is a proxy; this example measures the mission directly.
A Poisson stream of target events (an animal entering the field, an
intrusion, ...) appears at random positions, each dwelling a few minutes.
The PEAS network must have a working node within sensing range before the
event leaves — either immediately (the area was covered) or after a
replacement worker wakes up (bounded by the λ_d gap design, §2.2).

The script sweeps the event dwell time against the configured interruption
tolerance and reports detection ratio and latency, under heavy failure
injection.
"""

import random

from repro.experiments import Scenario, build_network, format_table
from repro.failures import FailureInjector, per_5000s
from repro.net import Field
from repro.sensing import DetectionMonitor, generate_events
from repro.sim import RngRegistry, Simulator


def run_mission(dwell_s: float, min_detectors: int = 4, seed: int = 3):
    scenario = Scenario(
        num_nodes=480,
        seed=seed,
        with_traffic=False,
        failure_per_5000s=26.66,  # harsh environment
    )
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    network = build_network(scenario, sim, rngs)
    events = generate_events(
        Field(50.0, 50.0),
        rate_hz=0.01,          # an event every ~100 s somewhere in the field
        horizon_s=16_000.0,    # reaches into the network's late life
        dwell_s=dwell_s,
        rng=rngs.stream("events"),
    )
    # The §5.2 application requires several simultaneous observers (the K of
    # K-coverage): detection needs a quorum, so local worker losses matter.
    monitor = DetectionMonitor(
        sim, events, sensing_range=10.0, min_detectors=min_detectors
    )
    network.working_observers.append(monitor.on_working_change)
    injector = FailureInjector(
        sim, per_5000s(scenario.failure_per_5000s),
        network.alive_ids, network.kill, rngs.stream("failures"),
    )
    network.start()
    injector.start()
    while not network.all_dead and sim.now < 18_000.0:
        sim.run(until=sim.now + 500.0)
    return monitor, len(events)


def main() -> None:
    print(
        "Mission: detect Poisson target events on a 480-node network under\n"
        "harsh failures (26.66/5000 s).  Sweep the detection quorum K\n"
        "(the application's K-coverage requirement).\n"
    )
    rows = []
    for quorum in (1, 4, 8, 14):
        monitor, total = run_mission(dwell_s=120.0, min_detectors=quorum)
        rows.append([
            quorum,
            total,
            f"{monitor.detection_ratio() * 100:.1f}%",
            monitor.delayed_detections(),
            f"{monitor.mean_latency():.1f}",
        ])
    print(format_table(
        ["quorum K", "events", "detected", "delayed detections",
         "mean latency (s)"],
        rows,
        title="Event detection vs required observer quorum "
              "(120 s events; lambda_d = 0.02 -> ~50 s replacement gaps)",
    ))
    print(
        "\nLow quorums are detected instantly for the whole network life:"
        "\nPEAS's working density gives huge margin over K=1.  Demanding"
        "\nquorums (K at the working-density limit) see delayed detections —"
        "\nthe event waits for a probing replacement to wake up — and misses"
        "\nonce the deployment thins late in life."
    )


if __name__ == "__main__":
    main()
