"""Quickstart: run PEAS on the paper's evaluation setup and print the
headline metrics.

Builds the §5.2 scenario — 320 nodes uniformly deployed on a 50 x 50 m
field, source and sink in opposite corners, failures injected at
10.66/5000 s — runs it until every sensor battery is empty and reports the
coverage lifetimes, data delivery lifetime, wakeup count and PEAS's energy
overhead.

Run:  python examples/quickstart.py [num_nodes] [seed]
"""

import sys

from repro.experiments import Scenario, format_table, run_scenario


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 320
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    scenario = Scenario(num_nodes=num_nodes, seed=seed, measure_gaps=True)
    print(f"Running PEAS: {num_nodes} nodes on a 50x50m field (seed {seed})...")
    result = run_scenario(scenario)

    print(format_table(
        ["metric", "value"],
        [
            ["3-coverage lifetime (s)", result.coverage_lifetimes.get(3)],
            ["4-coverage lifetime (s)", result.coverage_lifetimes.get(4)],
            ["5-coverage lifetime (s)", result.coverage_lifetimes.get(5)],
            ["data delivery lifetime (s)", result.delivery_lifetime],
            ["total wakeups", result.total_wakeups],
            ["energy consumed (J)", f"{result.energy_total_j:.1f}"],
            ["PEAS overhead (J)", f"{result.energy_overhead_j:.2f}"],
            ["overhead ratio", f"{result.energy_overhead_ratio * 100:.3f}%"],
            ["failures injected", result.failures_injected],
            ["replacement gap p95 (s)", f"{result.extras['gap_p95_s']:.0f}"],
            ["all nodes dead at (s)", f"{result.end_time:.0f}"],
        ],
        title=f"PEAS with {num_nodes} deployed nodes",
    ))
    single_battery = 5000.0
    extension = (result.coverage_lifetimes.get(3) or 0.0) / single_battery
    print(f"\nLifetime extension over a single battery: {extension:.1f}x")
    print("(The paper's Figure 9: lifetime grows linearly with deployment size.)")


if __name__ == "__main__":
    main()
