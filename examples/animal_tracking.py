"""Animal-tracking scenario: choosing lambda_d from the application's
interruption tolerance (§2.2).

The paper's running example: "if an animal-tracking sensor network allows
for monitoring interruptions up to 5 minutes, lambda_d can be set at 1 per
300 seconds to ensure that the lengths of gaps in sensing are acceptable."
The probing range is chosen from sensing redundancy needs (§2.1's example
picks 3 m).

This script runs the same deployment with three interruption tolerances
(60 s, 300 s, and the evaluation's 50 s) and reports the realized
replacement-gap distribution against each tolerance, plus the wakeup budget
each choice costs — the tension the application designer trades off.
"""

from repro.core import PEASConfig
from repro.experiments import Scenario, format_table, run_scenario


def run_with_tolerance(tolerance_s: float, seed: int = 5):
    config = PEASConfig(desired_rate_hz=1.0 / tolerance_s)
    scenario = Scenario(
        num_nodes=400,
        seed=seed,
        config=config,
        with_traffic=False,
        failure_per_5000s=15.0,  # animals chew cables; weather is harsh
        measure_gaps=True,
    )
    return run_scenario(scenario)


def main() -> None:
    tolerances = (50.0, 60.0, 300.0)
    print("Animal tracking on 50x50m, 400 nodes, harsh failures (15/5000s).")
    print("Choosing lambda_d = 1/tolerance per §2.2's guidance...\n")

    rows = []
    for tolerance in tolerances:
        result = run_with_tolerance(tolerance)
        gaps_ok = result.extras["gap_p95_s"] <= 2 * tolerance
        rows.append([
            f"{tolerance:.0f}",
            f"{1.0 / tolerance:.4f}",
            f"{result.extras['gap_mean_s']:.0f}",
            f"{result.extras['gap_p95_s']:.0f}",
            result.total_wakeups,
            result.coverage_lifetimes.get(3),
            "yes" if gaps_ok else "NO",
        ])

    print(format_table(
        ["tolerance (s)", "lambda_d (1/s)", "mean gap (s)", "p95 gap (s)",
         "wakeups", "3-cov lifetime (s)", "p95 within 2x tol?"],
        rows,
        title="Interruption tolerance -> desired probing rate trade-off",
    ))
    print(
        "\nLower tolerance (faster lambda_d) buys shorter sensing gaps at the"
        "\ncost of more wakeups; the lifetime barely moves because probing"
        "\nenergy is a sub-1% overhead either way (Table 1)."
    )


if __name__ == "__main__":
    main()
