"""Harsh-environment robustness sweep (the §5.3 experiment, interactively).

Deploys 480 nodes and sweeps the injected failure rate from calm to the
paper's harshest setting (48 failures per 5000 s, which kills ~38% of the
population by unexpected failures).  Shows that coverage and delivery
lifetimes degrade only modestly while the failure percentage climbs —
PEAS's central robustness claim.
"""

from repro.experiments import Scenario, format_table, run_scenario


def main() -> None:
    print("Robustness sweep: 480 nodes, failure rates 0..48 per 5000 s.\n")
    rows = []
    baseline_lifetime = None
    for rate in (0.0, 10.66, 26.66, 48.0):
        result = run_scenario(
            Scenario(num_nodes=480, seed=3, failure_per_5000s=rate)
        )
        lifetime = result.coverage_lifetimes.get(3)
        if rate == 0.0:
            baseline_lifetime = lifetime
        retained = (
            f"{100 * lifetime / baseline_lifetime:.0f}%"
            if baseline_lifetime and lifetime
            else "-"
        )
        rows.append([
            f"{rate:.2f}",
            f"{result.failure_fraction * 100:.0f}%",
            lifetime,
            retained,
            result.delivery_lifetime,
            result.total_wakeups,
            f"{result.energy_overhead_ratio * 100:.3f}%",
        ])

    print(format_table(
        ["failures /5000s", "nodes failed", "3-cov lifetime (s)",
         "lifetime retained", "delivery lifetime (s)", "wakeups", "overhead"],
        rows,
        title="PEAS under increasing unexpected-failure rates (§5.3)",
    ))
    print(
        "\nPaper's claims to compare against: up to ~38% of nodes fail at the"
        "\nhighest rate, coverage lifetime drops only 12-20%, wakeups"
        "\ndecrease with failure rate, and overhead stays roughly constant."
    )


if __name__ == "__main__":
    main()
