"""§4 fixed transmission power with signal-strength threshold filtering.

Cheap sensors often cannot vary their transmission power.  §4's rule:
transmit at full power, and have receivers react only to frames whose
received signal strength exceeds the threshold S_th equivalent to the
probing range R_p.  With irregular attenuation, areas with poor reception
naturally keep more workers — "this is desirable because it is only with
more working nodes in such areas that the same level of robustness is
maintained."

This script compares variable-power probing against fixed-power threshold
filtering, with and without attenuation irregularity.
"""

from repro.core import PEASConfig
from repro.experiments import Scenario, format_table, run_scenario

BASE = Scenario(
    num_nodes=300,
    seed=17,
    with_traffic=False,
    failure_per_5000s=10.66,
    keep_series=True,
)


def mean_working(result):
    values = [v for _, v in result.series.get("working_count", []) if v > 0]
    return sum(values) / len(values) if values else 0.0


def main() -> None:
    variants = [
        ("variable power (§2)", BASE),
        ("fixed power (§4)", BASE.with_(config=PEASConfig(fixed_power=True))),
        (
            "fixed power + 20% irregularity",
            BASE.with_(config=PEASConfig(fixed_power=True), rssi_irregularity=0.2),
        ),
    ]
    rows = []
    for label, scenario in variants:
        print(f"Running: {label} ...")
        result = run_scenario(scenario)
        rows.append([
            label,
            f"{mean_working(result):.0f}",
            result.coverage_lifetimes.get(3),
            result.total_wakeups,
            f"{result.energy_overhead_ratio * 100:.3f}%",
        ])

    print()
    print(format_table(
        ["mode", "mean working nodes", "3-cov lifetime (s)", "wakeups",
         "overhead"],
        rows,
        title="Variable-power probing vs fixed-power threshold filtering",
    ))
    print(
        "\nThe threshold rule reproduces the variable-power working density;"
        "\nattenuation irregularity shifts where workers sit (denser in"
        "\npoor-reception areas) without breaking the protocol."
    )


if __name__ == "__main__":
    main()
