"""Measurement and report plumbing behind ``benchmarks/bench_report.py``.

Three layers:

* :func:`time_workload` — warmup + repeated timing of one kernel workload,
  reporting best/median/mean (best-of-N is the headline number: it is the
  least noise-sensitive statistic on a shared machine, and the kernel
  workloads are deterministic so their true cost is a constant);
* :func:`run_micro` / :func:`run_macro` — execute the kernel workload set
  and the Fig 9 deployment-sweep macro-benchmark in this process;
* :func:`measure_tree` — run the *same* workloads against another source
  tree (e.g. the previous release) in a subprocess, for honest A/B
  speedup numbers in the emitted report.

Reports are plain JSON (``BENCH_<date>.json``) so future PRs can diff a
perf trajectory with :func:`compare_micro`.
"""

from __future__ import annotations

import json
import math
import os
import platform
import resource
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "SCHEMA",
    "SCALING_NODE_COUNTS",
    "micro_rounds",
    "peak_rss_mb",
    "time_workload",
    "run_micro",
    "run_macro",
    "run_scaling",
    "measure_tree",
    "ab_measure",
    "compare_micro",
    "compare_scaling",
    "write_report",
]

SCHEMA = "repro-bench/1"

#: default node counts for the scaling curve (density grows on the paper's
#: fixed 50x50 field, the same axis as the Fig 11 density-adaptivity claim)
SCALING_NODE_COUNTS = (1_000, 10_000, 50_000)

#: timing rounds per kernel workload, by REPRO_BENCH_SCALE
_SCALE_ROUNDS = {"smoke": 10, "quick": 20, "full": 40}


def micro_rounds(scale: str) -> int:
    try:
        return _SCALE_ROUNDS[scale]
    except KeyError:
        raise ValueError(
            f"scale must be one of {sorted(_SCALE_ROUNDS)}, got {scale!r}"
        ) from None


def peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def time_workload(
    fn: Callable[[], object], rounds: int, warmup: int = 2
) -> Dict[str, float]:
    """Time ``fn`` ``rounds`` times after ``warmup`` discarded runs."""
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    best = min(samples)
    return {
        "best_ms": best * 1000.0,
        "median_ms": statistics.median(samples) * 1000.0,
        "mean_ms": statistics.fmean(samples) * 1000.0,
        "rounds": rounds,
        "ops_per_sec": (1.0 / best) if best > 0 else math.inf,
    }


def run_micro(
    workloads: Dict[str, Callable[[], object]], rounds: int
) -> Dict[str, Dict[str, float]]:
    return {name: time_workload(fn, rounds) for name, fn in workloads.items()}


def run_macro(
    num_nodes: int = 480,
    seeds: Sequence[int] = (0,),
    failure_per_5000s: float = 10.66,
) -> Dict[str, object]:
    """The Fig 9 deployment-sweep point: PEAS at ``num_nodes`` nodes.

    Runs serially (one scenario per seed, no process pool) so the wall-clock
    number measures the simulator, not pool scheduling.
    """
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenario import Scenario

    walls: List[float] = []
    cov3: List[Optional[float]] = []
    wakeups: List[int] = []
    for seed in seeds:
        scenario = Scenario(
            num_nodes=num_nodes, failure_per_5000s=failure_per_5000s, seed=seed
        )
        start = time.perf_counter()
        result = run_scenario(scenario)
        walls.append(time.perf_counter() - start)
        cov3.append(result.coverage_lifetimes.get(3))
        wakeups.append(result.total_wakeups)
    return {
        "figure": "fig9",
        "num_nodes": num_nodes,
        "failure_per_5000s": failure_per_5000s,
        "seeds": list(seeds),
        "wall_s_per_seed": walls,
        "wall_s_total": sum(walls),
        "coverage_lifetime_k3": cov3,
        "total_wakeups": wakeups,
    }


def run_scaling(
    node_counts: Sequence[int] = SCALING_NODE_COUNTS,
    protocols: Sequence[str] = ("peas", "duty_cycle"),
    seed: int = 0,
    max_time_s: float = 2000.0,
) -> Dict[str, object]:
    """The scaling curve: PEAS plus one baseline at growing density.

    Every point keeps the paper's 50 x 50 m field and deploys
    ``node_counts`` nodes on it (growing *density*, the axis the paper's
    §5.2 robustness claim and Fig 11 live on), with traffic and failure
    injection off and a bounded horizon, so the wall-clock isolates the
    protocol control plane plus the simulation substrate.  Points run
    serially, cheapest first, and each one records its own wall so a
    partial curve is still meaningful if a large point is interrupted.
    """
    from repro.baselines import run_baseline
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenario import Scenario

    points: List[Dict[str, object]] = []
    for num_nodes in sorted(node_counts):
        for protocol in protocols:
            scenario = Scenario(
                num_nodes=num_nodes,
                seed=seed,
                failure_per_5000s=0.0,
                with_traffic=False,
                max_time_s=max_time_s,
            )
            start = time.perf_counter()
            if protocol == "peas":
                result = run_scenario(scenario)
            else:
                result = run_baseline(scenario, protocol=protocol)
            wall = time.perf_counter() - start
            points.append(
                {
                    "protocol": protocol,
                    "num_nodes": num_nodes,
                    "wall_s": wall,
                    "end_time_s": result.end_time,
                    "total_wakeups": getattr(result, "total_wakeups", None),
                }
            )
    return {
        "seed": seed,
        "max_time_s": max_time_s,
        "node_counts": sorted(node_counts),
        "protocols": list(protocols),
        "points": points,
    }


def compare_scaling(
    current: Dict[str, object], baseline: Dict[str, object]
) -> Dict[str, float]:
    """Per-point wall-clock speedup of ``current`` over ``baseline``.

    Points are matched on ``(protocol, num_nodes)``; keys come back as
    ``"<protocol>@<num_nodes>"``.  Values > 1 mean the current tree is
    faster.
    """
    base_walls = {
        (point["protocol"], point["num_nodes"]): point["wall_s"]
        for point in baseline.get("points", [])
    }
    speedups: Dict[str, float] = {}
    for point in current.get("points", []):
        key = (point["protocol"], point["num_nodes"])
        wall = point["wall_s"]
        if key in base_walls and wall:
            speedups[f"{key[0]}@{key[1]}"] = base_walls[key] / wall
    return speedups


def measure_tree(
    src: Path,
    rounds: int,
    macro_seeds: Sequence[int] = (0,),
    macro_num_nodes: int = 480,
    skip_macro: bool = False,
) -> Dict[str, object]:
    """Measure another source tree on this tree's workload definitions.

    Spawns a subprocess whose ``PYTHONPATH`` is ``src`` alone, loads the
    *current* ``repro/perf/workloads.py`` by file path (its lazy imports
    then resolve against ``src``), and returns the measured micro/macro
    numbers.  This is how a report carries honest speedups vs. a previous
    checkout: both trees execute byte-identical workload code.
    """
    src = Path(src).resolve()
    if not (src / "repro").is_dir():
        raise FileNotFoundError(f"{src} does not contain a 'repro' package")
    runner = Path(__file__).resolve().parent / "_subrunner.py"
    workloads = Path(__file__).resolve().parent / "workloads.py"
    cmd = [
        sys.executable,
        str(runner),
        "--workloads",
        str(workloads),
        "--rounds",
        str(rounds),
        "--macro-num-nodes",
        str(macro_num_nodes),
        "--macro-seeds",
        ",".join(str(s) for s in macro_seeds),
    ]
    if skip_macro:
        cmd.append("--skip-macro")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src)
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"measuring tree {src} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def _merge_min(runs: List[Dict[str, object]]) -> Dict[str, object]:
    """Merge repeated measurements of one tree, keeping per-workload bests.

    ``best_ms``/``median_ms``/``mean_ms`` take the minimum across runs (the
    run least disturbed by machine noise), macro wall-clocks likewise; peak
    RSS takes the max.
    """
    merged = dict(runs[0])
    merged["micro"] = {}
    for name in runs[0]["micro"]:
        stats = dict(runs[0]["micro"][name])
        for key in ("best_ms", "median_ms", "mean_ms"):
            stats[key] = min(run["micro"][name][key] for run in runs)
        stats["ops_per_sec"] = (
            1000.0 / stats["best_ms"] if stats["best_ms"] > 0 else math.inf
        )
        merged["micro"][name] = stats
    if runs[0].get("macro") is not None:
        macro = dict(runs[0]["macro"])
        macro["wall_s_per_seed"] = [
            min(run["macro"]["wall_s_per_seed"][i] for run in runs)
            for i in range(len(macro["wall_s_per_seed"]))
        ]
        macro["wall_s_total"] = sum(macro["wall_s_per_seed"])
        merged["macro"] = macro
    merged["peak_rss_mb"] = max(run["peak_rss_mb"] for run in runs)
    merged["ab_repeats"] = len(runs)
    return merged


def ab_measure(
    current_src: Path,
    other_src: Path,
    rounds: int,
    macro_seeds: Sequence[int] = (0,),
    macro_num_nodes: int = 480,
    skip_macro: bool = False,
    repeats: int = 3,
) -> tuple:
    """Measure both trees with alternating subprocesses, min-merged.

    A single pair of subprocess runs is hostage to whatever else the
    machine was doing during each run; alternating A/B/A/B… and taking
    per-workload minima across repeats gives both trees an equal shot at
    quiet windows.  Both sides run the identical ``_subrunner`` path, so
    there is no in-process-vs-subprocess asymmetry either.
    """
    current_runs: List[Dict[str, object]] = []
    other_runs: List[Dict[str, object]] = []
    for _ in range(repeats):
        current_runs.append(
            measure_tree(
                current_src, rounds, macro_seeds, macro_num_nodes, skip_macro
            )
        )
        other_runs.append(
            measure_tree(
                other_src, rounds, macro_seeds, macro_num_nodes, skip_macro
            )
        )
    return _merge_min(current_runs), _merge_min(other_runs)


def compare_micro(
    current: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
    stat: str = "best_ms",
) -> Dict[str, float]:
    """Per-workload speedup of ``current`` over ``baseline`` (>1 = faster)."""
    speedups: Dict[str, float] = {}
    for name, stats in current.items():
        base = baseline.get(name)
        if base is None or stat not in base or not stats.get(stat):
            continue
        speedups[name] = base[stat] / stats[stat]
    return speedups


def write_report(path: Path, report: Dict[str, object]) -> None:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")


def host_fingerprint() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": str(os.cpu_count() or 0),
    }
