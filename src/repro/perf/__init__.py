"""Performance measurement for the simulation substrate.

``repro.perf`` owns the kernel benchmark workloads (shared with the
pytest-benchmark suite) and the machinery that turns them into committed
``BENCH_<date>.json`` perf-trajectory reports — see
``benchmarks/bench_report.py`` for the CLI.
"""

from .report import (
    SCHEMA,
    ab_measure,
    compare_micro,
    host_fingerprint,
    measure_tree,
    micro_rounds,
    peak_rss_mb,
    run_macro,
    run_micro,
    time_workload,
    write_report,
)
from .workloads import KERNEL_WORKLOADS

__all__ = [
    "SCHEMA",
    "KERNEL_WORKLOADS",
    "ab_measure",
    "compare_micro",
    "host_fingerprint",
    "measure_tree",
    "micro_rounds",
    "peak_rss_mb",
    "run_macro",
    "run_micro",
    "time_workload",
    "write_report",
]
