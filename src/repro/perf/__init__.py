"""Performance measurement for the simulation substrate.

``repro.perf`` owns the kernel benchmark workloads (shared with the
pytest-benchmark suite) and the machinery that turns them into committed
``BENCH_<date>.json`` perf-trajectory reports — see
``benchmarks/bench_report.py`` for the CLI.
"""

from .report import (
    SCALING_NODE_COUNTS,
    SCHEMA,
    ab_measure,
    compare_micro,
    compare_scaling,
    host_fingerprint,
    measure_tree,
    micro_rounds,
    peak_rss_mb,
    run_macro,
    run_micro,
    run_scaling,
    time_workload,
    write_report,
)
from .workloads import KERNEL_WORKLOADS

__all__ = [
    "SCALING_NODE_COUNTS",
    "SCHEMA",
    "KERNEL_WORKLOADS",
    "ab_measure",
    "compare_micro",
    "compare_scaling",
    "host_fingerprint",
    "measure_tree",
    "micro_rounds",
    "peak_rss_mb",
    "run_macro",
    "run_micro",
    "run_scaling",
    "time_workload",
    "write_report",
]
