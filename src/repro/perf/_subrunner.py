"""Subprocess entry point for ``repro.perf.report.measure_tree``.

Executed as a *script* (never imported as part of the package): the parent
sets ``PYTHONPATH`` to the source tree under measurement, and this file
loads the parent tree's ``workloads.py`` by path, so the lazy ``repro``
imports inside each workload resolve against the measured tree.  Must not
import ``repro`` at module level for that reason.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import time
from pathlib import Path


def _load_workloads(path: Path):
    spec = importlib.util.spec_from_file_location("_bench_workloads", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workloads", required=True, type=Path)
    parser.add_argument("--rounds", required=True, type=int)
    parser.add_argument("--macro-num-nodes", type=int, default=480)
    parser.add_argument("--macro-seeds", default="0")
    parser.add_argument("--skip-macro", action="store_true")
    args = parser.parse_args()

    workloads = _load_workloads(args.workloads)

    # Minimal local reimplementation of the timing/report helpers: this
    # script cannot import repro.perf (``repro`` resolves to the tree under
    # measurement, which may predate the perf module).
    import math
    import resource
    import statistics

    micro = {}
    for name, fn in workloads.KERNEL_WORKLOADS.items():
        try:
            for _ in range(2):
                fn()
        except ImportError:
            # The measured tree predates this kernel's subsystem (e.g.
            # snapshot_roundtrip against a pre-snapshot checkout); skip it
            # so the remaining kernels still produce a comparison.
            continue
        samples = []
        for _ in range(args.rounds):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        best = min(samples)
        micro[name] = {
            "best_ms": best * 1000.0,
            "median_ms": statistics.median(samples) * 1000.0,
            "mean_ms": statistics.fmean(samples) * 1000.0,
            "rounds": args.rounds,
            "ops_per_sec": (1.0 / best) if best > 0 else math.inf,
        }

    macro = None
    if not args.skip_macro:
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenario import Scenario

        seeds = [int(s) for s in args.macro_seeds.split(",") if s]
        walls, cov3, wakeups = [], [], []
        for seed in seeds:
            scenario = Scenario(
                num_nodes=args.macro_num_nodes,
                failure_per_5000s=10.66,
                seed=seed,
            )
            start = time.perf_counter()
            result = run_scenario(scenario)
            walls.append(time.perf_counter() - start)
            cov3.append(result.coverage_lifetimes.get(3))
            wakeups.append(result.total_wakeups)
        macro = {
            "figure": "fig9",
            "num_nodes": args.macro_num_nodes,
            "failure_per_5000s": 10.66,
            "seeds": seeds,
            "wall_s_per_seed": walls,
            "wall_s_total": sum(walls),
            "coverage_lifetime_k3": cov3,
            "total_wakeups": wakeups,
        }

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_mb = peak / (1024.0 * 1024.0) if sys.platform == "darwin" else peak / 1024.0
    json.dump({"micro": micro, "macro": macro, "peak_rss_mb": peak_mb}, sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
