"""Kernel benchmark workloads: the single source of truth for perf numbers.

Each workload is a zero-argument callable returning a checksum; both the
pytest-benchmark suite (``benchmarks/bench_kernel.py``) and the standalone
report generator (``benchmarks/bench_report.py``) execute these exact
functions, so a number in a ``BENCH_*.json`` is directly comparable to a
pytest-benchmark row.

All ``repro`` imports happen lazily inside the workload bodies, and this
module itself never imports the rest of the package at module level.  That
is deliberate: ``bench_report.py --against <src>`` loads this file *by
path* into a subprocess whose ``sys.path`` points ``repro`` at a different
source tree (e.g. the previous release), so the same workload definitions
measure both trees — apples to apples.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

__all__ = [
    "KERNEL_WORKLOADS",
    "engine_event_throughput",
    "spatial_grid_query_throughput",
    "coverage_update_throughput",
    "channel_broadcast_throughput",
    "baseline_run_throughput",
    "snapshot_roundtrip",
]


def engine_event_throughput() -> int:
    """A 20 000-event self-rescheduling chain through the event kernel."""
    from repro.sim import Simulator

    sim = Simulator()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < 20000:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run()
    return count


def spatial_grid_query_throughput() -> int:
    """500 radius-10 range queries over an 800-node bucket grid."""
    from repro.net import Field, SpatialGrid

    rng = random.Random(1)
    field = Field(50.0, 50.0)
    grid = SpatialGrid(field, cell_size=3.0)
    for i in range(800):
        grid.insert(i, field.random_point(rng))
    centers = [field.random_point(rng) for _ in range(500)]
    return sum(len(grid.within(center, 10.0)) for center in centers)


def coverage_update_throughput() -> float:
    """200 sensing disks added then removed from the K-coverage lattice."""
    from repro.coverage import CoverageGrid
    from repro.net import Field

    rng = random.Random(2)
    field = Field(50.0, 50.0)
    grid = CoverageGrid(field, sensing_range=10.0, resolution=1.0)
    nodes = [field.random_point(rng) for _ in range(200)]
    for node in nodes:
        grid.add_node(node)
    for node in nodes:
        grid.remove_node(node)
    return grid.fraction(1)


def channel_broadcast_throughput() -> int:
    """Steady-state periodic probing: 300 nodes x 4 PROBE rounds (§2)."""
    from repro.net import BroadcastChannel, Field, Packet, RadioModel, SpatialGrid
    from repro.sim import Simulator

    class Endpoint:
        def __init__(self, node_id: int, position) -> None:
            self.node_id = node_id
            self.position = position
            self.received = 0

        def is_listening(self) -> bool:
            return True

        def on_packet(self, packet, rssi, dist) -> None:
            self.received += 1

    sim = Simulator()
    field = Field(50.0, 50.0)
    grid = SpatialGrid(field, cell_size=3.0)
    channel = BroadcastChannel(sim, grid, RadioModel(), rng=random.Random(3))
    rng = random.Random(4)
    endpoints = [Endpoint(i, field.random_point(rng)) for i in range(300)]
    for endpoint in endpoints:
        channel.attach(endpoint)
    for round_start in (0.0, 60.0, 120.0, 180.0):
        for i, endpoint in enumerate(endpoints):
            sim.schedule(
                round_start + i * 0.02,
                channel.transmit,
                endpoint.node_id,
                Packet("PROBE", endpoint.node_id),
                3.0,
            )
    sim.run()
    return sum(e.received for e in endpoints)


def baseline_run_throughput() -> int:
    """One small end-to-end duty-cycle baseline run through the harness.

    Exercises the full composition path (deployment, channel, coverage,
    failures, metrics) rather than a single kernel; uses only the
    ``run_baseline(scenario, protocol=...)`` signature, which older trees
    also expose, so ``--against`` comparisons still load.
    """
    from repro.baselines import run_baseline
    from repro.experiments import Scenario

    scenario = Scenario(
        num_nodes=40,
        field_size=(20.0, 20.0),
        seed=5,
        failure_per_5000s=4.0,
        with_traffic=False,
        max_time_s=2000.0,
    )
    result = run_baseline(scenario, protocol="duty_cycle")
    return result.failures_injected + int(result.end_time)


def snapshot_roundtrip() -> int:
    """Capture -> serialize -> restore of a mid-size paused PEAS run.

    Measures the full checkpoint cost (snapshot_state + JSON encode) plus
    the restore path (reconstruction + load), so `--against` comparisons
    catch regressions in either direction.  Raises ImportError on trees
    that predate the snapshot layer; the report generator skips kernels
    that fail to import.
    """
    import json

    from repro.experiments import Scenario
    from repro.harness import LiveRun, RunOptions, resume

    scenario = Scenario(
        num_nodes=60,
        field_size=(25.0, 25.0),
        seed=6,
        failure_per_5000s=8.0,
        with_traffic=False,
        max_time_s=3000.0,
    )
    live = LiveRun(scenario, RunOptions())
    live.start()
    live.sim.run_bounded(until=scenario.max_time_s, max_events=2000)
    document = json.loads(json.dumps(live.snapshot_state()))
    result = resume(document)
    return len(document["components"]["engine"]["events"]) + int(
        result.end_time
    )


#: name -> workload, in report order
KERNEL_WORKLOADS: Dict[str, Callable[[], object]] = {
    "engine_event_throughput": engine_event_throughput,
    "spatial_grid_query_throughput": spatial_grid_query_throughput,
    "coverage_update_throughput": coverage_update_throughput,
    "channel_broadcast_throughput": channel_broadcast_throughput,
    "baseline_run_throughput": baseline_run_throughput,
    "snapshot_roundtrip": snapshot_roundtrip,
}
