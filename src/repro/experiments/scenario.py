"""Declarative scenario description for a full simulation run.

A :class:`Scenario` is a plain, picklable value object capturing everything
§5.1-§5.3 parameterize: the field, population, deployment, PEAS config,
hardware models, failure injection, traffic and metric settings.  The
defaults are exactly the paper's evaluation setup (§5.2):

* 50 x 50 m^2 field, nodes uniformly deployed and stationary;
* source and sink in opposite corners, one report every 10 s;
* R_p = 3 m, lambda_0 = 0.1/s, lambda_d = 0.02/s;
* sensing range = max transmission range = 10 m, 20 kbps, 25-byte frames;
* Motes power profile, 54-60 J batteries;
* failure rate 10.66 failures per 5000 s (the Fig 9-11 baseline);
* lifetimes thresholded at 90 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

from ..core import PEASConfig
from ..energy import MOTE_PROFILE, PowerProfile
from ..faults.plan import FaultPlan
from ..net import DEPLOYMENTS

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """One run's full parameterization (immutable and picklable)."""

    num_nodes: int = 160
    seed: int = 0
    field_size: Tuple[float, float] = (50.0, 50.0)
    deployment: str = "uniform"
    #: Which registered protocol runs this scenario (see
    #: :mod:`repro.protocols`): ``"peas"`` or any baseline name, so sweeps
    #: can cross protocols like any other parameter.
    protocol: str = "peas"
    config: PEASConfig = field(default_factory=PEASConfig)
    profile: PowerProfile = MOTE_PROFILE

    # Radio / channel
    sensing_range_m: float = 10.0
    comm_range_m: float = 10.0
    bitrate_bps: float = 20_000.0
    loss_rate: float = 0.0
    rssi_irregularity: float = 0.0

    # Failure injection (§5.3); the paper's unit is failures per 5000 s.
    failure_per_5000s: float = 10.66
    #: Declarative fault plan (:mod:`repro.faults`) layered on top of the
    #: ambient §5.3 process.  The empty default schedules nothing and is
    #: byte-identical to a run without the subsystem.
    fault_plan: FaultPlan = field(default_factory=FaultPlan)

    # Traffic (§5.2): source at origin corner, sink at far corner.
    with_traffic: bool = True
    report_interval_s: float = 10.0
    grab_link_loss: float = 0.0
    grab_mesh_width: int = 2
    #: Charge per-report forwarding energy (tx+rx per hop) to the working
    #: nodes on the gradient path.  Off by default: the paper's §5 metrics
    #: measure PEAS under a forwarding substrate whose energy it does not
    #: control; turning this on exposes the sink-funnel effect (nodes near
    #: the sink drain faster) explored by an ablation bench.
    charge_data_energy: bool = False
    report_size_bytes: int = 25

    # Metrics
    coverage_ks: Tuple[int, ...] = (3, 4, 5)
    lifetime_threshold: float = 0.90
    coverage_resolution_m: float = 1.0
    sample_interval_s: float = 10.0

    # Execution control
    max_time_s: float = 200_000.0
    run_chunk_s: float = 500.0
    keep_series: bool = False
    #: record per-neighborhood replacement-gap statistics (Fig 4/5 metric)
    measure_gaps: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.deployment not in DEPLOYMENTS:
            raise ValueError(
                f"unknown deployment {self.deployment!r}; "
                f"choose from {sorted(DEPLOYMENTS)}"
            )
        # Imported lazily: the registry pulls in the protocol packages,
        # which must not load as a side effect of defining a scenario type.
        from ..protocols import PROTOCOLS

        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {sorted(PROTOCOLS)}"
            )
        if self.field_size[0] <= 0 or self.field_size[1] <= 0:
            raise ValueError("field dimensions must be positive")
        if self.failure_per_5000s < 0:
            raise ValueError("failure_per_5000s must be nonnegative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if not isinstance(self.fault_plan, FaultPlan):
            raise TypeError("fault_plan must be a FaultPlan")
        if self.max_time_s <= 0 or self.run_chunk_s <= 0:
            raise ValueError("time controls must be positive")
        if self.report_size_bytes <= 0:
            raise ValueError("report_size_bytes must be positive")

    def with_(self, **changes: Any) -> "Scenario":
        """A copy with the given fields replaced (sweep convenience)."""
        return replace(self, **changes)

    @property
    def source(self) -> Tuple[float, float]:
        return (0.0, 0.0)

    @property
    def sink(self) -> Tuple[float, float]:
        return (self.field_size[0], self.field_size[1])
