"""The robustness experiment: PEAS under the full fault-model catalogue.

The paper only stresses PEAS with uniformly random crashes (§5.3).  This
sweep runs the same §5.2 setup under one named *regime* per fault model —
an empty-plan baseline, extra crashes, a correlated region kill, transient
outages, bursty channel loss, and clock drift — and reports the coverage
lifetime next to the resilience metrics the fault engine produces
(coverage-dip depth and recovery time to K-coverage).

Regimes are deliberately aggressive relative to §5.3 so the resilience
metrics have signal; the empty-plan baseline row anchors them against the
paper's own operating point.  Like :mod:`repro.experiments.paper`, scale
comes from ``REPRO_BENCH_SCALE`` and results are memoized per process.
Runs use ``errors="collect"`` so one crashed regime surfaces in its row
("failed n/m") instead of killing the sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..faults import (
    BurstyLossFault,
    ClockDriftFault,
    CrashFault,
    FaultPlan,
    RegionKillFault,
    TransientOutageFault,
)
from ..harness.options import RunOptions
from .metrics import MeanStd, RunResult, aggregate_values
from .paper import BASELINE_FAILURE_RATE, bench_processes, bench_seeds
from .scenario import Scenario
from .sweep import RunError, expand_seeds, run_sweep

__all__ = [
    "ROBUSTNESS_POPULATION",
    "ROBUSTNESS_REGIMES",
    "robustness_scenarios",
    "get_robustness_results",
    "robustness_rows",
]

#: Middle of the §5.2 deployment range: dense enough that recovery is
#: possible, small enough that six regimes x seeds stays tractable.
ROBUSTNESS_POPULATION = 320

#: Named fault regimes, one per model (plus the empty-plan baseline).
ROBUSTNESS_REGIMES: Tuple[Tuple[str, FaultPlan], ...] = (
    ("baseline", FaultPlan()),
    ("crash", FaultPlan((CrashFault(rate_per_5000s=10.66),))),
    ("region_kill", FaultPlan((RegionKillFault(at_s=2000.0, radius_m=15.0),))),
    (
        "transient_outage",
        FaultPlan(
            (TransientOutageFault(rate_per_5000s=32.0, mean_outage_s=300.0),)
        ),
    ),
    (
        "bursty_loss",
        FaultPlan(
            (
                BurstyLossFault(
                    good_mean_s=120.0, bad_mean_s=20.0, bad_loss=0.7
                ),
            )
        ),
    ),
    ("clock_drift", FaultPlan((ClockDriftFault(max_skew=0.05),))),
)


def robustness_scenarios(seeds: Sequence[int]) -> List[Scenario]:
    """The regime x seed scenario list, in regime order."""
    base = Scenario(
        num_nodes=ROBUSTNESS_POPULATION,
        failure_per_5000s=BASELINE_FAILURE_RATE,
    )
    return expand_seeds(
        [base.with_(fault_plan=plan) for _name, plan in ROBUSTNESS_REGIMES],
        seeds,
    )


_memo: Dict[Tuple, Dict[str, List[Union[RunResult, RunError]]]] = {}


def get_robustness_results(
    seeds: Optional[Sequence[int]] = None,
    processes: Optional[int] = None,
    options: Optional[RunOptions] = None,
    telemetry=None,
) -> Dict[str, List[Union[RunResult, RunError]]]:
    """Robustness-sweep results grouped by regime name, in regime order.

    Individual run failures are collected (as :class:`RunError` entries in
    the regime's list), not raised.  ``telemetry`` attaches the sweep
    telemetry bus (live progress + exports); like the paper sweeps it is
    not part of the memo key.
    """
    seeds = tuple(seeds if seeds is not None else bench_seeds())
    key = (seeds, options)
    if key not in _memo:
        results = run_sweep(
            robustness_scenarios(seeds),
            processes=processes if processes is not None else bench_processes(),
            options=options,
            errors="collect",
            telemetry=telemetry,
        )
        # expand_seeds keeps regime-major order: slice per regime.
        grouped: Dict[str, List[Union[RunResult, RunError]]] = {}
        for index, (name, _plan) in enumerate(ROBUSTNESS_REGIMES):
            grouped[name] = results[index * len(seeds): (index + 1) * len(seeds)]
        _memo[key] = grouped
    return _memo[key]


def _mean(ms: Optional[MeanStd]) -> Optional[float]:
    return ms.mean if ms is not None else None


def robustness_rows(
    groups: Dict[str, List[Union[RunResult, RunError]]]
) -> List[List[object]]:
    """One row per regime: K=3 lifetime, dip depth, recovery time, deaths.

    Columns: regime, runs ok ("n/m"), 3-coverage lifetime, max coverage
    dip, mean recovery seconds, mean injected deaths.
    """
    rows: List[List[object]] = []
    for name, _plan in ROBUSTNESS_REGIMES:
        runs = groups.get(name, [])
        ok = [r for r in runs if isinstance(r, RunResult)]
        rows.append(
            [
                name,
                f"{len(ok)}/{len(runs)}",
                _mean(
                    aggregate_values([r.coverage_lifetimes.get(3) for r in ok])
                ),
                _mean(
                    aggregate_values(
                        [r.extras.get("coverage_dip_max") for r in ok]
                    )
                ),
                _mean(
                    aggregate_values(
                        [r.extras.get("recovery_mean_s") for r in ok]
                    )
                ),
                _mean(
                    aggregate_values([float(r.failures_injected) for r in ok])
                ),
            ]
        )
    return rows
