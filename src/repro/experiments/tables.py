"""Plain-text table/series rendering for benchmark output.

Every benchmark prints the same rows/series the paper's tables and figures
report, via these helpers, so the harness output can be compared against
the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_series", "fmt"]


def fmt(value: object, spec: str = ".1f") -> str:
    """Render one cell: None -> '-', numbers via ``spec``, rest via str()."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        try:
            return f"{value:{spec}}"
        except (TypeError, ValueError):
            return str(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table with right-aligned numeric-ish columns."""
    materialized: List[List[str]] = [
        [cell if isinstance(cell, str) else fmt(cell) for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Two-column rendering of a figure's (x, y) series."""
    return format_table([x_label, y_label], points, title=title)
