"""Sweep-scale telemetry: worker heartbeats, live progress, exports.

``run_sweep`` executes a seed battery in silence by default.  A
:class:`SweepTelemetry` attached to it adds three things, none of which
touches simulation state:

1. **Worker heartbeats.**  Pool workers are initialized with a
   :func:`_worker_init` hook that installs a process-global
   :class:`_WorkerReporter`; the guarded run wrapper pings it at run
   start/finish, and it ships small dict messages (runs completed, current
   scenario coordinates, elapsed wall time, peak RSS, error count) over a
   ``multiprocessing.Manager`` queue to the parent.  A plain
   ``multiprocessing.Queue`` cannot ride ``ProcessPoolExecutor`` initargs
   (it pickles through the call path and raises), hence the manager proxy.
   Telemetry sends are fire-and-forget: a full or broken queue must never
   fail a run.

2. **Live progress.**  A drain thread in the parent folds messages into a
   single status line (done/total, percentage, ETA from the observed run
   rate, live workers, errors, the most recent run's coordinates),
   rewritten in place at a throttled cadence.

3. **Canonical exports.**  :meth:`SweepTelemetry.finish` computes the
   authoritative aggregates from the returned results (heartbeats are
   best-effort transport, results are ground truth), merges every
   per-run ``result.metrics`` snapshot into one sweep-level
   :class:`~repro.obs.metrics.MetricsRegistry`, adds the sweep's own
   instruments (``peas_sweep_*``), and writes ``metrics.ndjson``
   (``peas-metrics/1``), ``metrics.prom`` (Prometheus text exposition) and
   ``manifest.json`` (``peas-sweep-manifest/1`` provenance) into the
   output directory — the inputs ``peas-repro inspect --diff`` compares.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from ..obs.atomic import atomic_write_text
from ..obs.manifest import config_hash, git_sha, peak_rss_mb
from ..obs.metrics import MetricsRegistry, save_metrics, save_prometheus

__all__ = [
    "SWEEP_MANIFEST_SCHEMA",
    "SweepTelemetry",
    "worker_run_started",
    "worker_run_finished",
]

SWEEP_MANIFEST_SCHEMA = "peas-sweep-manifest/1"

#: minimum seconds between heartbeat sends per worker
_DEFAULT_INTERVAL_S = 1.0
#: minimum seconds between progress-line rewrites in the parent
_RENDER_PERIOD_S = 0.25


# --------------------------------------------------------------------------
# Worker side: a process-global reporter, installed by the pool initializer.
# --------------------------------------------------------------------------
class _WorkerReporter:
    """Per-worker heartbeat source (lives in the pool worker process)."""

    def __init__(self, queue: Any, interval_s: float) -> None:
        self.queue = queue
        self.interval_s = interval_s
        self.runs = 0
        self.errors = 0
        self.started = time.time()
        self.last_beat = 0.0
        self.current: Optional[Dict[str, Any]] = None

    def run_started(self, scenario: Any) -> None:
        self.current = {
            "protocol": scenario.protocol,
            "nodes": scenario.num_nodes,
            "seed": scenario.seed,
        }
        self._beat()

    def run_finished(self, ok: bool) -> None:
        self.runs += 1
        if not ok:
            self.errors += 1
        self._send({
            "kind": "run_end",
            "pid": os.getpid(),
            "ok": ok,
            "scenario": self.current,
        })
        self.current = None
        self._beat()

    def _beat(self) -> None:
        now = time.time()
        if now - self.last_beat < self.interval_s:
            return
        self.last_beat = now
        self._send({
            "kind": "heartbeat",
            "pid": os.getpid(),
            "runs": self.runs,
            "errors": self.errors,
            "elapsed_s": round(now - self.started, 3),
            "rss_mb": peak_rss_mb(),
            "scenario": self.current,
        })

    def _send(self, message: Dict[str, Any]) -> None:
        try:
            self.queue.put_nowait(message)
        except Exception:  # noqa: BLE001 - telemetry must never fail a run
            pass


_REPORTER: Optional[_WorkerReporter] = None


def _worker_init(queue: Any, interval_s: float) -> None:
    """``ProcessPoolExecutor`` initializer: install the worker reporter."""
    global _REPORTER
    _REPORTER = _WorkerReporter(queue, interval_s)


def worker_run_started(scenario: Any) -> None:
    """Hook for the guarded run wrapper; no-op outside telemetry sweeps."""
    if _REPORTER is not None:
        _REPORTER.run_started(scenario)


def worker_run_finished(ok: bool) -> None:
    """Hook for the guarded run wrapper; no-op outside telemetry sweeps."""
    if _REPORTER is not None:
        _REPORTER.run_finished(ok)


# --------------------------------------------------------------------------
# Parent side: drain thread, live line, exports.
# --------------------------------------------------------------------------
class SweepTelemetry:
    """One sweep's telemetry session: progress display + export writer.

    Parameters
    ----------
    out_dir:
        Directory receiving ``metrics.ndjson`` / ``metrics.prom`` /
        ``manifest.json`` (created on :meth:`finish`).
    label:
        Human-readable sweep name shown on the progress line and recorded
        in the export headers (e.g. ``"fig9"``).
    interval_s:
        Per-worker heartbeat throttle.
    stream:
        Where the progress line goes; defaults to ``sys.stderr``.  Pass
        any text stream (tests use ``io.StringIO``).
    live:
        Force the in-place ``\\r`` line on or off; default auto-detects
        ``stream.isatty()`` (non-TTYs get sparse plain lines instead).
    """

    def __init__(
        self,
        out_dir: Union[str, Path],
        label: str = "sweep",
        interval_s: float = _DEFAULT_INTERVAL_S,
        stream: Optional[TextIO] = None,
        live: Optional[bool] = None,
    ) -> None:
        self.out_dir = Path(out_dir)
        self.label = label
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            isatty = getattr(self.stream, "isatty", None)
            live = bool(isatty()) if callable(isatty) else False
        self.live = live
        self.registry = MetricsRegistry()

        self.total = 0
        self.done = 0
        self.errors = 0
        self.heartbeats = 0
        self.retries = 0
        #: runs that exhausted their retry budget (poison seeds)
        self.quarantined = 0
        #: process-pool respawns after worker death or run timeout
        self.pool_restarts = 0
        #: result-store replays served by the parent before dispatch
        self.store_hits = 0
        #: result-store accounting for the export counters (see note_store)
        self.store: Optional[Dict[str, int]] = None
        #: warm-start reuse: (burn-ins simulated, variant runs forked)
        self.warm_start: Optional[Dict[str, int]] = None
        self.workers_seen: set = set()
        self.current: Optional[Dict[str, Any]] = None
        self._started_at: Optional[float] = None
        self._last_render = 0.0
        self._wrote_line = False

        self._manager: Any = None
        self._queue: Any = None
        self._drain: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------ lifecycle
    def start(self, total: int, processes: int = 1) -> None:
        """Begin the session; with ``processes > 1`` also open the bus."""
        self.total = total
        self._started_at = time.time()
        if processes > 1:
            import multiprocessing

            self._manager = multiprocessing.Manager()
            self._queue = self._manager.Queue()
            self._stop.clear()
            self._drain = threading.Thread(
                target=self._drain_loop, name="sweep-telemetry", daemon=True
            )
            self._drain.start()
        self._render(force=True)

    def pool_kwargs(self) -> Dict[str, Any]:
        """``ProcessPoolExecutor`` kwargs installing the worker reporter."""
        if self._queue is None:
            return {}
        return {
            "initializer": _worker_init,
            "initargs": (self._queue, self.interval_s),
        }

    def note_warm_start(self, burn_ins: int, forks: int) -> None:
        """Record warm-start reuse: ``burn_ins`` shared prefixes were
        simulated once and ``forks`` variant runs forked from them (the
        sweep skipped ``forks - burn_ins`` burn-in simulations)."""
        self.warm_start = {"burn_ins": int(burn_ins), "forks": int(forks)}
        self._render(force=True)

    def note_outcome(self, ok: bool, scenario: Any = None, retry: bool = False) -> None:
        """Progress tick from the parent process (serial runs, retries)."""
        if retry:
            self.retries += 1
        else:
            self.done += 1
        if not ok:
            self.errors += 1
        if scenario is not None:
            self.current = {
                "protocol": scenario.protocol,
                "nodes": scenario.num_nodes,
                "seed": scenario.seed,
            }
        self._render()

    def note_retry(self, scenario: Any = None) -> None:
        """The executor scheduled another attempt for a failed run."""
        self.retries += 1
        if scenario is not None:
            self.current = {
                "protocol": scenario.protocol,
                "nodes": scenario.num_nodes,
                "seed": scenario.seed,
            }
        self._render()

    def note_store_hit(self, scenario: Any = None) -> None:
        """A run replayed from the result store instead of simulating."""
        self.done += 1
        self.store_hits += 1
        self._render()

    def note_quarantined(self, scenario: Any = None) -> None:
        """A run exhausted its retry budget and completed as a RunError."""
        self.quarantined += 1
        self._render(force=True)

    def note_pool_restart(self) -> None:
        """The executor killed and re-spawned the worker pool."""
        self.pool_restarts += 1
        self._render(force=True)

    def note_store(self, hits: int, misses: int, evictions: int) -> None:
        """Final result-store accounting, exported as ``peas_store_*``."""
        self.store = {
            "hits": int(hits),
            "misses": int(misses),
            "evictions": int(evictions),
        }

    # ------------------------------------------------------------- messages
    def _drain_loop(self) -> None:
        import queue as queue_mod

        while not self._stop.is_set():
            try:
                message = self._queue.get(timeout=0.2)
            except (queue_mod.Empty, EOFError, OSError):
                continue
            self._handle(message)

    def _handle(self, message: Dict[str, Any]) -> None:
        kind = message.get("kind")
        pid = message.get("pid")
        if pid is not None:
            self.workers_seen.add(pid)
        if kind == "heartbeat":
            self.heartbeats += 1
            if message.get("scenario"):
                self.current = message["scenario"]
        elif kind == "run_end":
            self.done += 1
            if not message.get("ok", True):
                self.errors += 1
            if message.get("scenario"):
                self.current = message["scenario"]
        self._render()

    # -------------------------------------------------------------- display
    def _progress_line(self) -> str:
        elapsed = time.time() - (self._started_at or time.time())
        parts = [f"[{self.label}] {self.done}/{self.total} runs"]
        if self.total:
            parts[-1] += f" ({self.done * 100 // self.total}%)"
        if self.workers_seen:
            parts.append(f"{len(self.workers_seen)} workers")
        if self.errors:
            parts.append(f"{self.errors} errors")
        if self.store_hits:
            parts.append(f"{self.store_hits} cached")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.pool_restarts:
            parts.append(f"{self.pool_restarts} pool restarts")
        parts.append(f"elapsed {elapsed:.0f}s")
        if 0 < self.done < self.total:
            eta = elapsed / self.done * (self.total - self.done)
            parts.append(f"eta {eta:.0f}s")
        if self.warm_start:
            parts.append(
                f"warm-start {self.warm_start['burn_ins']} burn-ins"
                f" -> {self.warm_start['forks']} forks"
            )
        if self.current:
            parts.append(
                f"{self.current.get('protocol')}/n={self.current.get('nodes')}"
                f"/seed={self.current.get('seed')}"
            )
        return " · ".join(parts)

    def _render(self, force: bool = False) -> None:
        now = time.time()
        if not force and now - self._last_render < _RENDER_PERIOD_S:
            return
        self._last_render = now
        line = self._progress_line()
        try:
            if self.live:
                self.stream.write("\r\x1b[2K" + line)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
            self._wrote_line = True
        except Exception:  # noqa: BLE001 - a dead stream must not kill runs
            pass

    def _close_line(self) -> None:
        if self.live and self._wrote_line:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except Exception:  # noqa: BLE001
                pass

    # --------------------------------------------------------------- finish
    def finish(
        self,
        scenarios: Sequence[Any],
        results: Sequence[Any],
    ) -> Dict[str, Path]:
        """Stop the bus, reconcile against the results, write the exports.

        The returned results are authoritative: live counters above are
        best-effort transport (a saturated queue may drop a ``run_end``),
        so done/error totals are recomputed here before export.  Returns
        the written paths (``metrics`` / ``prometheus`` / ``manifest``).
        """
        from .sweep import RunError  # local: avoid an import cycle

        if self._drain is not None:
            # Give stragglers one throttle period to land, then stop.
            time.sleep(min(0.3, self.interval_s))
            self._stop.set()
            self._drain.join(timeout=2.0)
            self._drain = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self._queue = None

        failures = [r for r in results if isinstance(r, RunError)]
        self.done = len(results)
        self.errors = len(failures)
        wall_s = time.time() - (self._started_at or time.time())
        self._render(force=True)
        self._close_line()

        registry = self.registry
        for result in results:
            snapshot = getattr(result, "metrics", None)
            if snapshot:
                registry.merge(snapshot)
        ok = len(results) - len(failures)
        if ok:
            registry.counter("peas_sweep_runs_total", status="ok").inc(ok)
        if failures:
            registry.counter(
                "peas_sweep_runs_total", status="error"
            ).inc(len(failures))
        if self.retries:
            registry.counter("peas_sweep_retries_total").inc(self.retries)
        if self.quarantined:
            registry.counter("peas_sweep_quarantined_total").inc(self.quarantined)
        if self.pool_restarts:
            registry.counter("peas_sweep_pool_restarts_total").inc(
                self.pool_restarts
            )
        if self.store is not None:
            if self.store["hits"]:
                registry.counter("peas_store_hits_total").inc(self.store["hits"])
            if self.store["misses"]:
                registry.counter("peas_store_misses_total").inc(
                    self.store["misses"]
                )
            if self.store["evictions"]:
                registry.counter("peas_store_evictions_total").inc(
                    self.store["evictions"]
                )
        if self.warm_start:
            registry.counter("peas_sweep_warm_start_burn_ins_total").inc(
                self.warm_start["burn_ins"]
            )
            registry.counter("peas_sweep_warm_start_forks_total").inc(
                self.warm_start["forks"]
            )
        if self.heartbeats:
            registry.counter("peas_sweep_heartbeats_total").inc(self.heartbeats)
        if self.workers_seen:
            registry.gauge("peas_sweep_workers").set_max(len(self.workers_seen))
        registry.gauge("peas_sweep_wall_seconds").set_max(wall_s)

        self.out_dir.mkdir(parents=True, exist_ok=True)
        manifest = self._build_manifest(scenarios, ok, len(failures), wall_s)
        meta = {
            "label": self.label,
            "runs": len(results),
            "ok": ok,
            "errors": len(failures),
            "git_sha": manifest["git_sha"],
            "config_digest": manifest["config_digest"],
        }
        paths = {
            "metrics": self.out_dir / "metrics.ndjson",
            "prometheus": self.out_dir / "metrics.prom",
            "manifest": self.out_dir / "manifest.json",
        }
        save_metrics(registry, paths["metrics"], meta=meta)
        save_prometheus(registry, paths["prometheus"])
        # Through the shared write-then-rename helper (like the metrics
        # exports above): a crash mid-finish must never leave a truncated
        # manifest where a resumed sweep would read it.
        atomic_write_text(
            paths["manifest"],
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )
        return paths

    def _build_manifest(
        self,
        scenarios: Sequence[Any],
        ok: int,
        errors: int,
        wall_s: float,
    ) -> Dict[str, Any]:
        """Sweep-level provenance: what ``inspect --diff`` checks for drift."""
        hashes = sorted({config_hash(s) for s in scenarios})
        protocols = sorted({getattr(s, "protocol", "?") for s in scenarios})
        seeds = sorted({getattr(s, "seed", 0) for s in scenarios})
        return {
            "schema": SWEEP_MANIFEST_SCHEMA,
            "label": self.label,
            "runs": len(scenarios),
            "ok": ok,
            "errors": errors,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "pool_restarts": self.pool_restarts,
            "store": self.store,
            "warm_start": self.warm_start,
            "heartbeats": self.heartbeats,
            "workers": len(self.workers_seen),
            "wall_s": round(wall_s, 3),
            "git_sha": git_sha(),
            "protocols": protocols,
            "seed_range": [seeds[0], seeds[-1]] if seeds else [],
            #: one hash per distinct scenario config, plus a digest of the
            #: sorted set — the single value to compare across runs
            "config_hashes": hashes,
            "config_digest": config_hash(hashes),
            "peak_rss_mb": peak_rss_mb(),
            "argv": list(sys.argv),
        }
