"""Plain-text run reports: timelines and summaries for a simulation run.

Renders the time series a :class:`~repro.experiments.metrics.RunResult`
carries (when run with ``keep_series=True``) as terminal-friendly ASCII
charts, plus a one-screen summary — the "look at one run" companion to the
sweep tables.

>>> result = run_scenario(Scenario(num_nodes=320, keep_series=True))  # doctest: +SKIP
>>> print(render_report(result))                                       # doctest: +SKIP
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .metrics import RunResult

__all__ = ["sparkline", "timeline_chart", "render_report"]

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line character chart of a value series.

    Values are resampled to ``width`` buckets (bucket mean) and mapped onto
    a 10-level character ramp between the series min and max.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if not values:
        return ""
    buckets: List[float] = []
    per_bucket = max(1, len(values) // width)
    for start in range(0, len(values), per_bucket):
        chunk = values[start : start + per_bucket]
        buckets.append(sum(chunk) / len(chunk))
        if len(buckets) == width:
            break
    low = min(buckets)
    high = max(buckets)
    if high <= low:
        return _SPARK_LEVELS[-1] * len(buckets)
    scale = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int(round((value - low) / (high - low) * scale))]
        for value in buckets
    )


def timeline_chart(
    samples: Sequence[Tuple[float, float]],
    label: str,
    width: int = 60,
    value_format: str = ".2f",
) -> str:
    """A labeled sparkline with min/max annotations and the time span."""
    if not samples:
        return f"{label}: (no samples)"
    values = [value for _, value in samples]
    first_time = samples[0][0]
    last_time = samples[-1][0]
    line = sparkline(values, width=width)
    low = min(values)
    high = max(values)
    return (
        f"{label}\n"
        f"  [{line}]\n"
        f"  t: {first_time:.0f}s .. {last_time:.0f}s   "
        f"min {low:{value_format}}  max {high:{value_format}}  "
        f"last {values[-1]:{value_format}}"
    )


def render_report(result: RunResult, width: int = 60) -> str:
    """A one-screen textual report of a run (requires ``keep_series``)."""
    lines: List[str] = []
    lines.append(
        f"PEAS run: {result.num_nodes} nodes, seed {result.seed}, "
        f"failure rate {result.failure_rate_per_5000s:g}/5000s"
    )
    lines.append("-" * 72)
    for k in sorted(result.coverage_lifetimes):
        lines.append(
            f"{k}-coverage lifetime: {_fmt_opt(result.coverage_lifetimes[k])} s"
        )
    lines.append(f"data delivery lifetime: {_fmt_opt(result.delivery_lifetime)} s")
    lines.append(
        f"wakeups: {result.total_wakeups}   "
        f"energy: {result.energy_total_j:.1f} J "
        f"(overhead {result.energy_overhead_j:.2f} J = "
        f"{result.energy_overhead_ratio * 100:.3f}%)"
    )
    lines.append(
        f"failures injected: {result.failures_injected} "
        f"({result.failure_fraction * 100:.1f}% of population)   "
        f"all dead at: {result.end_time:.0f} s"
    )
    if result.extras:
        gap_parts = []
        for key in ("gap_mean_s", "gap_p95_s", "gap_max_s"):
            if key in result.extras:
                gap_parts.append(f"{key[4:-2]} {result.extras[key]:.0f}s")
        if gap_parts:
            lines.append("replacement gaps: " + ", ".join(gap_parts))
    for name, label in (
        ("working_count", "working nodes over time"),
        ("coverage_3", "3-coverage fraction"),
        ("coverage_4", "4-coverage fraction"),
        ("success_ratio", "cumulative data success ratio"),
    ):
        samples = result.series.get(name)
        if samples:
            lines.append("")
            lines.append(timeline_chart(samples, label, width=width))
    if not result.series:
        lines.append("")
        lines.append("(run with keep_series=True for timeline charts)")
    return "\n".join(lines)


def _fmt_opt(value: Optional[float]) -> str:
    return f"{value:.0f}" if value is not None else "-"
