"""JSON (de)serialization of run results and scenarios.

Sweeps are expensive; persisting their results lets analyses and reports
run without re-simulating.  ``RunResult`` round-trips losslessly through
plain JSON-compatible dictionaries (series included), and ``Scenario``
round-trips too — protocol name included — so saved sweep outputs record
exactly what produced them.

>>> payload = result_to_dict(result)          # doctest: +SKIP
>>> json.dump(payload, open("run.json", "w")) # doctest: +SKIP
>>> restored = result_from_dict(payload)      # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from ..core import PEASConfig
from ..energy import PowerProfile
from ..faults.plan import fault_plan_from_dict, fault_plan_to_dict
from .metrics import RunResult
from .scenario import Scenario

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_results",
    "load_results",
]

_SCHEMA_VERSION = 1

_SCENARIO_SCHEMA = "peas-scenario/1"


def result_to_dict(result: RunResult) -> Dict:
    """A JSON-compatible dictionary capturing the full result."""
    payload: Dict = {
        "schema": _SCHEMA_VERSION,
        "num_nodes": result.num_nodes,
        "seed": result.seed,
        "failure_rate_per_5000s": result.failure_rate_per_5000s,
        "end_time": result.end_time,
        # JSON keys are strings; keep K explicit.
        "coverage_lifetimes": {
            str(k): v for k, v in result.coverage_lifetimes.items()
        },
        "delivery_lifetime": result.delivery_lifetime,
        "total_wakeups": result.total_wakeups,
        "energy_total_j": result.energy_total_j,
        "energy_overhead_j": result.energy_overhead_j,
        "energy_by_category": dict(result.energy_by_category),
        "failures_injected": result.failures_injected,
        "counters": dict(result.counters),
        "channel_counters": dict(result.channel_counters),
        "series": {
            name: [[t, v] for t, v in samples]
            for name, samples in result.series.items()
        },
        "extras": dict(result.extras),
        "manifest": dict(result.manifest),
        "profile": result.profile,
    }
    # Omitted (not null) when absent so default-path outputs are unchanged.
    if result.metrics is not None:
        payload["metrics"] = result.metrics
    return payload


def result_from_dict(payload: Dict) -> RunResult:
    """Inverse of :func:`result_to_dict` (validates the schema version)."""
    schema = payload.get("schema")
    if schema != _SCHEMA_VERSION:
        raise ValueError(f"unsupported result schema {schema!r}")
    return RunResult(
        num_nodes=payload["num_nodes"],
        seed=payload["seed"],
        failure_rate_per_5000s=payload["failure_rate_per_5000s"],
        end_time=payload["end_time"],
        coverage_lifetimes={
            int(k): v for k, v in payload["coverage_lifetimes"].items()
        },
        delivery_lifetime=payload["delivery_lifetime"],
        total_wakeups=payload["total_wakeups"],
        energy_total_j=payload["energy_total_j"],
        energy_overhead_j=payload["energy_overhead_j"],
        energy_by_category=dict(payload.get("energy_by_category", {})),
        failures_injected=payload["failures_injected"],
        counters=dict(payload.get("counters", {})),
        channel_counters=dict(payload.get("channel_counters", {})),
        series={
            name: [(t, v) for t, v in samples]
            for name, samples in payload.get("series", {}).items()
        },
        extras=dict(payload.get("extras", {})),
        manifest=dict(payload.get("manifest", {})),
        profile=payload.get("profile"),
        metrics=payload.get("metrics"),
    )


def scenario_to_dict(scenario: Scenario) -> Dict:
    """A JSON-compatible dictionary capturing a scenario's full
    parameterization, protocol name included."""
    payload: Dict = {"schema": _SCENARIO_SCHEMA}
    for spec in dataclasses.fields(Scenario):
        value = getattr(scenario, spec.name)
        if spec.name in ("config", "profile"):
            value = dataclasses.asdict(value)
        elif spec.name == "fault_plan":
            value = fault_plan_to_dict(value)
        elif isinstance(value, tuple):
            value = list(value)
        payload[spec.name] = value
    return payload


def scenario_from_dict(payload: Dict) -> Scenario:
    """Inverse of :func:`scenario_to_dict` (validates the schema marker)."""
    schema = payload.get("schema")
    if schema != _SCENARIO_SCHEMA:
        raise ValueError(f"unsupported scenario schema {schema!r}")
    known = {spec.name for spec in dataclasses.fields(Scenario)}
    kwargs = {k: v for k, v in payload.items() if k in known}
    kwargs["config"] = PEASConfig(**kwargs["config"])
    kwargs["profile"] = PowerProfile(**kwargs["profile"])
    kwargs["field_size"] = tuple(kwargs["field_size"])
    kwargs["coverage_ks"] = tuple(kwargs["coverage_ks"])
    if "fault_plan" in kwargs:
        kwargs["fault_plan"] = fault_plan_from_dict(kwargs["fault_plan"])
    return Scenario(**kwargs)


def save_results(results: Iterable[RunResult], path: Union[str, Path]) -> None:
    """Write a list of results to a JSON file."""
    payload = [result_to_dict(result) for result in results]
    Path(path).write_text(json.dumps(payload, indent=1))


def load_results(path: Union[str, Path]) -> List[RunResult]:
    """Read back a list of results written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError("result file must contain a JSON list")
    return [result_from_dict(entry) for entry in payload]
