"""Canonical definitions of the paper's evaluation experiments (§5).

Two simulation sweeps power all seven reported artifacts:

* the **deployment sweep** (populations 160..800, failure rate 10.66/5000 s)
  → Fig 9 (coverage lifetimes), Fig 10 (delivery lifetime), Fig 11 (total
  wakeups) and Table 1 (energy overhead);
* the **failure sweep** (N = 480, failure rates 5.33..48/5000 s)
  → Fig 12 (coverage lifetime), Fig 13 (delivery lifetime) and Fig 14
  (total wakeups + the <0.25 % overhead claim).

Scale control: the paper averages 5 seeds per point; set
``REPRO_BENCH_SCALE=full`` to do the same, ``quick`` (default) uses 2 seeds
and ``smoke`` a single seed.  ``REPRO_PROCESSES`` bounds the process pool.

Sweep results are memoized per process so the per-figure benchmarks share
one simulation batch.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..harness.options import RunOptions
from .metrics import MeanStd, RunResult, aggregate_values
from .scenario import Scenario
from .sweep import expand_seeds, group_by, run_sweep

__all__ = [
    "DEPLOYMENT_NUMBERS",
    "FAILURE_RATES",
    "BASELINE_FAILURE_RATE",
    "bench_seeds",
    "bench_processes",
    "deployment_scenarios",
    "failure_scenarios",
    "get_deployment_results",
    "get_failure_results",
    "fig9_rows",
    "fig10_rows",
    "fig11_rows",
    "table1_rows",
    "fig12_rows",
    "fig13_rows",
    "fig14_rows",
]

#: §5.2: "we set the node number as 160, 320, 480, 640 and 800".
DEPLOYMENT_NUMBERS: Tuple[int, ...] = (160, 320, 480, 640, 800)

#: §5.3: "we increase the failure rate from 5.33 to 48 failures per 5000
#: seconds at incremental steps of 5.33" with N = 480.
FAILURE_RATES: Tuple[float, ...] = (
    5.33, 10.66, 16.0, 21.33, 26.66, 32.0, 37.33, 42.66, 48.0
)

#: §5.2: "a failure rate of 10.66 failures/5000 seconds" for the
#: deployment-number experiments.
BASELINE_FAILURE_RATE = 10.66

FAILURE_SWEEP_POPULATION = 480

_SCALE_SEEDS = {"smoke": 1, "quick": 2, "full": 5}


def bench_seeds() -> List[int]:
    """Seed list for the current ``REPRO_BENCH_SCALE`` (paper scale: 5)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale not in _SCALE_SEEDS:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALE_SEEDS)}, got {scale!r}"
        )
    return list(range(_SCALE_SEEDS[scale]))


def bench_processes() -> Optional[int]:
    """Process-pool width for sweeps (``REPRO_PROCESSES`` override)."""
    env = os.environ.get("REPRO_PROCESSES")
    if env is not None:
        return max(1, int(env))
    cpus = os.cpu_count() or 1
    return min(8, cpus)


def deployment_scenarios(seeds: Sequence[int]) -> List[Scenario]:
    """The Fig 9/10/11 + Table 1 sweep."""
    base = Scenario(failure_per_5000s=BASELINE_FAILURE_RATE)
    return expand_seeds(
        [base.with_(num_nodes=n) for n in DEPLOYMENT_NUMBERS], seeds
    )


def failure_scenarios(seeds: Sequence[int]) -> List[Scenario]:
    """The Fig 12/13/14 sweep."""
    base = Scenario(num_nodes=FAILURE_SWEEP_POPULATION)
    return expand_seeds(
        [base.with_(failure_per_5000s=r) for r in FAILURE_RATES], seeds
    )


# --------------------------------------------------------------------------
# Memoized sweep execution (shared across the per-figure benchmarks).
# --------------------------------------------------------------------------
_memo: Dict[Tuple, Dict[object, List[RunResult]]] = {}


def get_deployment_results(
    seeds: Optional[Sequence[int]] = None,
    processes: Optional[int] = None,
    options: Optional[RunOptions] = None,
    telemetry=None,
) -> Dict[int, List[RunResult]]:
    """Deployment-sweep results grouped by population.

    ``options`` applies one capability stack (sanitize / trace-to-path /
    metrics) to every run in the sweep, pooled or serial.  ``telemetry``
    (a :class:`~repro.experiments.telemetry.SweepTelemetry`) attaches the
    live-progress/export bus; it is not part of the memo key, so it only
    takes effect when the sweep actually executes (always true for fresh
    CLI processes).
    """
    seeds = tuple(seeds if seeds is not None else bench_seeds())
    key = ("deployment", seeds, options)
    if key not in _memo:
        results = run_sweep(
            deployment_scenarios(seeds),
            processes=processes if processes is not None else bench_processes(),
            options=options,
            telemetry=telemetry,
        )
        _memo[key] = group_by(results, lambda r: r.num_nodes)
    return _memo[key]  # type: ignore[return-value]


def get_failure_results(
    seeds: Optional[Sequence[int]] = None,
    processes: Optional[int] = None,
    options: Optional[RunOptions] = None,
    telemetry=None,
    warm_start_burn_in_s: Optional[float] = None,
) -> Dict[float, List[RunResult]]:
    """Failure-sweep results grouped by failure rate.

    ``warm_start_burn_in_s`` enables the warm-start recipe for this sweep:
    the fig 12–14 variants differ only in failure rate, so one fault-free
    burn-in per seed is simulated to the given simulated time and every
    failure-rate variant forks from its seed's snapshot
    (:class:`~repro.experiments.sweep.WarmStart`).  Results are *not*
    byte-identical to cold runs — fault processes arm at the fork point —
    so keep one mode per comparison set.
    """
    from .sweep import WarmStart

    seeds = tuple(seeds if seeds is not None else bench_seeds())
    key = ("failure", seeds, options, warm_start_burn_in_s)
    if key not in _memo:
        warm_start = (
            WarmStart(burn_in_s=warm_start_burn_in_s)
            if warm_start_burn_in_s is not None
            else None
        )
        results = run_sweep(
            failure_scenarios(seeds),
            processes=processes if processes is not None else bench_processes(),
            options=options,
            telemetry=telemetry,
            warm_start=warm_start,
        )
        _memo[key] = group_by(results, lambda r: r.failure_rate_per_5000s)
    return _memo[key]  # type: ignore[return-value]


# --------------------------------------------------------------------------
# Row builders: one per table/figure, emitting exactly the paper's series.
# --------------------------------------------------------------------------
def _mean(ms: Optional[MeanStd]) -> Optional[float]:
    return ms.mean if ms is not None else None


def fig9_rows(groups: Dict[int, List[RunResult]]) -> List[List[object]]:
    """Fig 9: coverage lifetime (3/4/5-coverage) vs deployment number."""
    rows = []
    for n in sorted(groups):
        runs = groups[n]
        rows.append(
            [n]
            + [
                _mean(aggregate_values([r.coverage_lifetimes.get(k) for r in runs]))
                for k in (3, 4, 5)
            ]
        )
    return rows


def fig10_rows(groups: Dict[int, List[RunResult]]) -> List[List[object]]:
    """Fig 10: data delivery lifetime vs deployment number."""
    return [
        [n, _mean(aggregate_values([r.delivery_lifetime for r in groups[n]]))]
        for n in sorted(groups)
    ]


def fig11_rows(groups: Dict[int, List[RunResult]]) -> List[List[object]]:
    """Fig 11: average total wakeup count vs deployment number."""
    return [
        [n, _mean(aggregate_values([float(r.total_wakeups) for r in groups[n]]))]
        for n in sorted(groups)
    ]


def table1_rows(groups: Dict[int, List[RunResult]]) -> List[List[object]]:
    """Table 1: energy overhead (J) and overhead ratio vs deployment number."""
    rows = []
    for n in sorted(groups):
        runs = groups[n]
        overhead = _mean(aggregate_values([r.energy_overhead_j for r in runs]))
        ratio = _mean(aggregate_values([r.energy_overhead_ratio for r in runs]))
        rows.append([n, overhead, ratio * 100 if ratio is not None else None])
    return rows


def fig12_rows(groups: Dict[float, List[RunResult]]) -> List[List[object]]:
    """Fig 12: coverage lifetime (3/4/5) vs failure rate at N = 480."""
    rows = []
    for rate in sorted(groups):
        runs = groups[rate]
        rows.append(
            [rate]
            + [
                _mean(aggregate_values([r.coverage_lifetimes.get(k) for r in runs]))
                for k in (3, 4, 5)
            ]
            + [_mean(aggregate_values([r.failure_fraction for r in runs]))]
        )
    return rows


def fig13_rows(groups: Dict[float, List[RunResult]]) -> List[List[object]]:
    """Fig 13: data delivery lifetime vs failure rate."""
    return [
        [rate, _mean(aggregate_values([r.delivery_lifetime for r in groups[rate]]))]
        for rate in sorted(groups)
    ]


def fig14_rows(groups: Dict[float, List[RunResult]]) -> List[List[object]]:
    """Fig 14: total wakeups vs failure rate, plus the overhead-ratio claim."""
    rows = []
    for rate in sorted(groups):
        runs = groups[rate]
        wakeups = _mean(aggregate_values([float(r.total_wakeups) for r in runs]))
        ratio = _mean(aggregate_values([r.energy_overhead_ratio for r in runs]))
        rows.append([rate, wakeups, ratio * 100 if ratio is not None else None])
    return rows
