"""Parameter sweeps over scenarios with repeated seeds.

The paper averages every data point over 5 simulation runs (§5.2).  A sweep
here is a list of scenarios (typically one base scenario crossed with a
parameter list and a seed range); results can be computed serially or on a
process pool (each run is independent and seeded deterministically).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import RunResult
from .runner import run_scenario
from .scenario import Scenario

__all__ = ["expand_seeds", "run_sweep", "group_by"]


def expand_seeds(scenarios: Iterable[Scenario], seeds: Sequence[int]) -> List[Scenario]:
    """Cross a scenario list with a seed list."""
    return [scenario.with_(seed=seed) for scenario in scenarios for seed in seeds]


def run_sweep(
    scenarios: Sequence[Scenario], processes: Optional[int] = None
) -> List[RunResult]:
    """Run every scenario; ``processes`` > 1 uses a process pool.

    Results are returned in the order of the input scenarios either way, so
    downstream grouping is deterministic.
    """
    if processes is not None and processes > 1:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            return list(pool.map(run_scenario, scenarios))
    return [run_scenario(scenario) for scenario in scenarios]


def group_by(
    results: Iterable[RunResult], key: Callable[[RunResult], object]
) -> Dict[object, List[RunResult]]:
    """Group run results (e.g. by population or failure rate) preserving
    first-seen key order."""
    groups: Dict[object, List[RunResult]] = {}
    for result in results:
        groups.setdefault(key(result), []).append(result)
    return groups
