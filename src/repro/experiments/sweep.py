"""Parameter sweeps over scenarios with repeated seeds.

The paper averages every data point over 5 simulation runs (§5.2).  A sweep
here is a list of scenarios (typically one base scenario crossed with a
parameter list, a protocol list and a seed range); results can be computed
serially or on a process pool (each run is independent and seeded
deterministically).  Because a :class:`~repro.experiments.scenario.Scenario`
names its protocol and a :class:`~repro.harness.RunOptions` is picklable,
pooled runs execute the identical harness code path as serial ones —
capabilities included.

A crash inside one run no longer takes the whole sweep down: every run is
executed under a guard that captures the exception (type, message,
traceback text) in a picklable :class:`RunError`, failed runs are retried
once with the identical scenario (same seed — reproducible failures fail
twice, transient ones recover), and whatever still fails is surfaced
according to ``errors=``: ``"raise"`` re-raises with a sweep-level summary
after all runs finish, ``"collect"`` leaves the :class:`RunError` in the
result list at the failed scenario's position.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..harness.options import RunOptions
from .metrics import RunResult
from .scenario import Scenario

__all__ = [
    "RunError",
    "SweepError",
    "WarmStart",
    "expand_seeds",
    "expand_protocols",
    "run_sweep",
    "group_by",
]


@dataclass(frozen=True)
class WarmStart:
    """Shared burn-in for fault-surface sweeps (fig 12–14 style).

    A failure-rate sweep varies only the fault surface across variants, so
    every variant's first ``burn_in_s`` simulated seconds are identical —
    fault-free — work.  ``run_sweep(warm_start=...)`` simulates each
    distinct fault-quiescent base exactly once to ``burn_in_s``, writes a
    ``peas-snapshot/1`` checkpoint, and warm-start **forks** every variant
    from it (fresh fault RNG streams arm at the restored clock; see
    :mod:`repro.harness.snapshot`).

    Parameters
    ----------
    burn_in_s:
        Simulated seconds of shared prefix; must be below every
        scenario's ``max_time_s``.
    snapshot_dir:
        Where burn-in snapshots are written (created if missing);
        ``None`` uses a temporary directory deleted with the process.
    """

    burn_in_s: float
    snapshot_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.burn_in_s <= 0:
            raise ValueError("burn_in_s must be positive")


def expand_seeds(scenarios: Iterable[Scenario], seeds: Sequence[int]) -> List[Scenario]:
    """Cross a scenario list with a seed list."""
    return [scenario.with_(seed=seed) for scenario in scenarios for seed in seeds]


def expand_protocols(
    scenarios: Iterable[Scenario], protocols: Sequence[str]
) -> List[Scenario]:
    """Cross a scenario list with a protocol list (registry names)."""
    return [
        scenario.with_(protocol=protocol)
        for scenario in scenarios
        for protocol in protocols
    ]


@dataclass(frozen=True)
class RunError:
    """A structured record of one failed run (picklable, JSON-friendly).

    Captures what the parent process needs to triage a worker crash
    without the original exception object: the scenario's identifying
    coordinates, the exception type/message, and the formatted traceback.
    """

    scenario: Scenario
    error_type: str
    error_message: str
    traceback_text: str
    #: how many attempts were made (1 = failed without a retry)
    attempts: int = 1

    def summary(self, traceback_lines: int = 3) -> str:
        """One actionable block per failure: the failing run's coordinates
        (protocol / population / seed — enough to re-run it solo), the
        exception, and the tail of the worker traceback (the frames
        nearest the raise; the head is usually pool plumbing)."""
        head = (
            f"{self.scenario.protocol}/n={self.scenario.num_nodes}/"
            f"seed={self.scenario.seed}: {self.error_type}: "
            f"{self.error_message}"
        )
        tail = [
            line
            for line in self.traceback_text.rstrip().splitlines()
            if line.strip()
        ][-traceback_lines:]
        if not tail:
            return head
        return "\n".join([head] + [f"    {line.rstrip()}" for line in tail])


class SweepError(RuntimeError):
    """Raised by ``run_sweep(errors="raise")`` after the sweep completes;
    carries every :class:`RunError` for triage."""

    def __init__(self, failures: List[RunError]) -> None:
        lines = "\n".join(f"  - {f.summary()}" for f in failures)
        super().__init__(
            f"{len(failures)} of the sweep's runs failed (after one retry "
            f"each):\n{lines}"
        )
        self.failures = failures


@dataclass
class _Outcome:
    """Picklable envelope a guarded worker sends back: result or error."""

    result: Optional[RunResult] = None
    error: Optional[RunError] = None
    retried: bool = field(default=False, compare=False)


def _guarded_run(
    scenario: Scenario,
    warm_snapshot: Optional[str] = None,
    *,
    options: RunOptions,
) -> _Outcome:
    # The telemetry hooks are process-global no-ops unless this worker was
    # initialized by a SweepTelemetry bus (see experiments.telemetry).
    # Harness imports stay inside the function: experiments <-> harness is
    # otherwise a package-level import cycle.
    from ..harness.runner import run as _run_scenario
    from ..harness.snapshot import resume as _resume_snapshot
    from .telemetry import worker_run_finished, worker_run_started

    worker_run_started(scenario)
    try:
        if warm_snapshot is not None:
            result = _resume_snapshot(
                warm_snapshot, options, scenario=scenario
            )
        else:
            result = _run_scenario(scenario, options)
        outcome = _Outcome(result=result)
    except Exception as exc:  # noqa: BLE001 - captured, surfaced by policy
        outcome = _Outcome(
            error=RunError(
                scenario=scenario,
                error_type=type(exc).__name__,
                error_message=str(exc),
                traceback_text=traceback.format_exc(),
            )
        )
    worker_run_finished(ok=outcome.error is None)
    return outcome


def _prepare_warm_starts(
    scenarios: Sequence[Scenario],
    warm_start: WarmStart,
    options: Optional[RunOptions],
    telemetry,
) -> List[str]:
    """Simulate each distinct fault-quiescent base once; map every scenario
    to its burn-in snapshot path.  Runs serially in the parent (there are
    few distinct bases — fig 12 has one per seed)."""
    import tempfile
    from pathlib import Path

    from ..faults.plan import FaultPlan
    from ..harness.runner import run as _run_scenario
    from ..obs.manifest import config_hash
    from .serialize import scenario_to_dict

    for scenario in scenarios:
        if warm_start.burn_in_s >= scenario.max_time_s:
            raise ValueError(
                f"warm-start burn_in_s={warm_start.burn_in_s} must be below "
                f"every scenario's max_time_s; "
                f"{scenario.protocol}/n={scenario.num_nodes}/"
                f"seed={scenario.seed} has max_time_s={scenario.max_time_s}"
            )
        drift = [e for e in scenario.fault_plan.entries if e.kind == "clock_drift"]
        if drift:
            raise ValueError(
                "clock_drift fault plans cannot be warm-started (skews "
                "apply before the burn-in); run these scenarios without "
                "warm_start"
            )
    if warm_start.snapshot_dir is not None:
        out_dir = Path(warm_start.snapshot_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
    else:
        out_dir = Path(tempfile.mkdtemp(prefix="peas-warm-start-"))
    # Burn-ins run bare: the caller's capability stack (tracing, metrics)
    # describes the variant runs, not the shared prefix.
    sanitize = options.sanitize if options is not None else False
    paths: List[str] = []
    built: Dict[str, str] = {}
    for scenario in scenarios:
        base = scenario.with_(
            failure_per_5000s=0.0,
            fault_plan=FaultPlan(),
            max_time_s=warm_start.burn_in_s,
        )
        digest = config_hash(scenario_to_dict(base))
        if digest not in built:
            target = out_dir / f"burn-in-{digest}.json"
            _run_scenario(
                base, RunOptions(snapshot_path=str(target), sanitize=sanitize)
            )
            built[digest] = str(target)
        paths.append(built[digest])
    if telemetry is not None:
        telemetry.note_warm_start(burn_ins=len(built), forks=len(paths))
    return paths


def _default_chunksize(num_scenarios: int, processes: int) -> int:
    """Batch pool work items explicitly instead of ``pool.map``'s default.

    Individual runs are seconds-long, so per-item dispatch overhead is
    negligible — but run times are *heterogeneous* (populations and
    protocols differ wildly), so large chunks cause stragglers.  Aim for
    ~4 chunks per worker to balance, with chunk size 1 as the floor.
    """
    return max(1, num_scenarios // (processes * 4))


def run_sweep(
    scenarios: Sequence[Scenario],
    processes: Optional[int] = None,
    options: Optional[RunOptions] = None,
    chunksize: Optional[int] = None,
    errors: str = "raise",
    telemetry=None,
    warm_start: Optional[WarmStart] = None,
) -> List[Union[RunResult, RunError]]:
    """Run every scenario; ``processes`` > 1 uses a process pool.

    Results are returned in the order of the input scenarios either way, so
    downstream grouping is deterministic.  ``options`` applies the same
    capability stack (profile / sanitize / trace-to-path / metrics) to
    every run, pooled or serial; ``chunksize`` overrides the per-worker
    batching.

    ``warm_start`` (a :class:`WarmStart`) simulates each distinct
    fault-quiescent base scenario once to ``burn_in_s``, snapshots it
    (``peas-snapshot/1``), and warm-start forks every variant run from the
    shared burn-in instead of simulating it from zero — the fig 12–14
    recipe, where variants differ only in failure rate.  Attached
    telemetry reports the reuse (burn-ins simulated vs. runs forked).

    ``telemetry`` (a :class:`~repro.experiments.telemetry.SweepTelemetry`)
    attaches the sweep telemetry bus: pooled workers ship heartbeats to a
    live progress line, and once the sweep finishes — including the
    ``errors="raise"`` path, so a partly-failed sweep still leaves its
    exports behind — the merged ``peas-metrics/1`` / Prometheus / manifest
    files are written to the telemetry's output directory.

    Failed runs are retried once, serially, with the identical scenario
    (the run is seed-deterministic, so a logic bug fails twice while a
    transient worker problem recovers).  ``errors`` picks what happens to
    runs that fail both attempts: ``"raise"`` (default) raises a
    :class:`SweepError` summarizing every failure once the sweep finishes,
    ``"collect"`` returns :class:`RunError` records in the failed runs'
    positions (callers filter with ``isinstance``).
    """
    if errors not in ("raise", "collect"):
        raise ValueError(f"errors must be 'raise' or 'collect', got {errors!r}")
    options = options if options is not None else RunOptions()
    pooled = processes is not None and processes > 1
    if telemetry is not None:
        telemetry.start(len(scenarios), processes=processes if pooled else 1)
    warm_paths: Optional[List[str]] = None
    if warm_start is not None:
        warm_paths = _prepare_warm_starts(scenarios, warm_start, options, telemetry)
    if pooled:
        assert processes is not None
        if chunksize is None:
            chunksize = _default_chunksize(len(scenarios), processes)
        pool_kwargs = telemetry.pool_kwargs() if telemetry is not None else {}
        with ProcessPoolExecutor(max_workers=processes, **pool_kwargs) as pool:
            map_args = [scenarios] if warm_paths is None else [scenarios, warm_paths]
            outcomes = list(
                pool.map(
                    partial(_guarded_run, options=options),
                    *map_args,
                    chunksize=chunksize,
                )
            )
    else:
        outcomes = []
        for index, scenario in enumerate(scenarios):
            outcome = _guarded_run(
                scenario,
                warm_paths[index] if warm_paths is not None else None,
                options=options,
            )
            outcomes.append(outcome)
            if telemetry is not None:
                telemetry.note_outcome(
                    ok=outcome.error is None, scenario=scenario
                )

    # One same-seed retry for each failure, serial and in input order.
    for index, outcome in enumerate(outcomes):
        if outcome.error is None:
            continue
        retry = _guarded_run(
            scenarios[index],
            warm_paths[index] if warm_paths is not None else None,
            options=options,
        )
        retry.retried = True
        if retry.error is not None:
            retry = _Outcome(
                error=RunError(
                    scenario=retry.error.scenario,
                    error_type=retry.error.error_type,
                    error_message=retry.error.error_message,
                    traceback_text=retry.error.traceback_text,
                    attempts=2,
                ),
                retried=True,
            )
        outcomes[index] = retry
        if telemetry is not None:
            telemetry.note_outcome(
                ok=retry.error is None, scenario=scenarios[index], retry=True
            )

    failures = [o.error for o in outcomes if o.error is not None]
    results: List[Union[RunResult, RunError]] = [
        outcome.result if outcome.result is not None else outcome.error  # type: ignore[misc]
        for outcome in outcomes
    ]
    if telemetry is not None:
        telemetry.finish(scenarios, results)
    if failures and errors == "raise":
        raise SweepError(failures)
    return results


def group_by(
    results: Iterable[RunResult], key: Callable[[RunResult], object]
) -> Dict[object, List[RunResult]]:
    """Group run results (e.g. by population or failure rate) preserving
    first-seen key order."""
    groups: Dict[object, List[RunResult]] = {}
    for result in results:
        groups.setdefault(key(result), []).append(result)
    return groups
