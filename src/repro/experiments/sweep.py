"""Parameter sweeps over scenarios with repeated seeds.

The paper averages every data point over 5 simulation runs (§5.2).  A sweep
here is a list of scenarios (typically one base scenario crossed with a
parameter list, a protocol list and a seed range); results can be computed
serially or on a process pool (each run is independent and seeded
deterministically).  Because a :class:`~repro.experiments.scenario.Scenario`
names its protocol and a :class:`~repro.harness.RunOptions` is picklable,
pooled runs execute the identical harness code path as serial ones —
capabilities included.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..harness import RunOptions
from ..harness.runner import run as _run_one
from .metrics import RunResult
from .scenario import Scenario

__all__ = ["expand_seeds", "expand_protocols", "run_sweep", "group_by"]


def expand_seeds(scenarios: Iterable[Scenario], seeds: Sequence[int]) -> List[Scenario]:
    """Cross a scenario list with a seed list."""
    return [scenario.with_(seed=seed) for scenario in scenarios for seed in seeds]


def expand_protocols(
    scenarios: Iterable[Scenario], protocols: Sequence[str]
) -> List[Scenario]:
    """Cross a scenario list with a protocol list (registry names)."""
    return [
        scenario.with_(protocol=protocol)
        for scenario in scenarios
        for protocol in protocols
    ]


def _default_chunksize(num_scenarios: int, processes: int) -> int:
    """Batch pool work items explicitly instead of ``pool.map``'s default.

    Individual runs are seconds-long, so per-item dispatch overhead is
    negligible — but run times are *heterogeneous* (populations and
    protocols differ wildly), so large chunks cause stragglers.  Aim for
    ~4 chunks per worker to balance, with chunk size 1 as the floor.
    """
    return max(1, num_scenarios // (processes * 4))


def run_sweep(
    scenarios: Sequence[Scenario],
    processes: Optional[int] = None,
    options: Optional[RunOptions] = None,
    chunksize: Optional[int] = None,
) -> List[RunResult]:
    """Run every scenario; ``processes`` > 1 uses a process pool.

    Results are returned in the order of the input scenarios either way, so
    downstream grouping is deterministic.  ``options`` applies the same
    capability stack (profile / sanitize / trace-to-path) to every run,
    pooled or serial; ``chunksize`` overrides the per-worker batching.
    """
    options = options if options is not None else RunOptions()
    if processes is not None and processes > 1:
        if chunksize is None:
            chunksize = _default_chunksize(len(scenarios), processes)
        with ProcessPoolExecutor(max_workers=processes) as pool:
            return list(
                pool.map(
                    partial(_run_one, options=options),
                    scenarios,
                    chunksize=chunksize,
                )
            )
    return [_run_one(scenario, options) for scenario in scenarios]


def group_by(
    results: Iterable[RunResult], key: Callable[[RunResult], object]
) -> Dict[object, List[RunResult]]:
    """Group run results (e.g. by population or failure rate) preserving
    first-seen key order."""
    groups: Dict[object, List[RunResult]] = {}
    for result in results:
        groups.setdefault(key(result), []).append(result)
    return groups
