"""Parameter sweeps over scenarios with repeated seeds.

The paper averages every data point over 5 simulation runs (§5.2).  A sweep
here is a list of scenarios (typically one base scenario crossed with a
parameter list, a protocol list and a seed range); results can be computed
serially or on a process pool (each run is independent and seeded
deterministically).  Because a :class:`~repro.experiments.scenario.Scenario`
names its protocol and a :class:`~repro.harness.RunOptions` is picklable,
pooled runs execute the identical harness code path as serial ones —
capabilities included.

Execution is delegated to :mod:`repro.experiments.executor`, which makes
the sweep crash-safe end to end: failures are retried under a declarative
:class:`RetryPolicy` (exponential backoff, deterministic jitter, optional
per-run timeout), a run that exhausts its budget completes the sweep as a
quarantined :class:`RunError` instead of aborting it, worker death
re-spawns the pool and keeps draining, and — with ``options.store_dir``
set — every completed run is durable in a :class:`repro.store.ResultStore`
the moment it finishes, so an interrupted sweep re-run against the same
store resumes with zero recomputation (``docs/STORE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..harness.options import RunOptions
from .executor import (
    RetryPolicy,
    RunError,
    SweepError,
    _guarded_run,
    _Outcome,
    execute,
)
from .metrics import RunResult
from .scenario import Scenario

__all__ = [
    "RetryPolicy",
    "RunError",
    "SweepError",
    "WarmStart",
    "expand_seeds",
    "expand_protocols",
    "run_sweep",
    "group_by",
]

# Re-exported for callers and tests that reach for the internals here
# (the executor module is their home since the resumable-executor split).
_ = (_guarded_run, _Outcome)


@dataclass(frozen=True)
class WarmStart:
    """Shared burn-in for fault-surface sweeps (fig 12–14 style).

    A failure-rate sweep varies only the fault surface across variants, so
    every variant's first ``burn_in_s`` simulated seconds are identical —
    fault-free — work.  ``run_sweep(warm_start=...)`` simulates each
    distinct fault-quiescent base exactly once to ``burn_in_s``, writes a
    ``peas-snapshot/1`` checkpoint, and warm-start **forks** every variant
    from it (fresh fault RNG streams arm at the restored clock; see
    :mod:`repro.harness.snapshot`).

    Parameters
    ----------
    burn_in_s:
        Simulated seconds of shared prefix; must be below every
        scenario's ``max_time_s``.
    snapshot_dir:
        Where burn-in snapshots are written (created if missing).
        ``None`` uses the sweep's result store when one is attached
        (``options.store_dir``) — burn-ins are then cached across sweeps
        under the current code fingerprint — and otherwise a temporary
        directory deleted with the process.
    """

    burn_in_s: float
    snapshot_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.burn_in_s <= 0:
            raise ValueError("burn_in_s must be positive")


def expand_seeds(scenarios: Iterable[Scenario], seeds: Sequence[int]) -> List[Scenario]:
    """Cross a scenario list with a seed list."""
    return [scenario.with_(seed=seed) for scenario in scenarios for seed in seeds]


def expand_protocols(
    scenarios: Iterable[Scenario], protocols: Sequence[str]
) -> List[Scenario]:
    """Cross a scenario list with a protocol list (registry names)."""
    return [
        scenario.with_(protocol=protocol)
        for scenario in scenarios
        for protocol in protocols
    ]


def _prepare_warm_starts(
    scenarios: Sequence[Scenario],
    warm_start: WarmStart,
    options: Optional[RunOptions],
    telemetry,
    store=None,
) -> List[str]:
    """Simulate each distinct fault-quiescent base once; map every scenario
    to its burn-in snapshot path.  Runs serially in the parent (there are
    few distinct bases — fig 12 has one per seed).  With a result store
    attached (and no explicit ``snapshot_dir``), burn-ins live in the
    store's ``snapshots/`` area keyed by config digest + code fingerprint,
    so a later sweep re-forks from them without re-simulating."""
    import tempfile
    from pathlib import Path

    from ..faults.plan import FaultPlan
    from ..harness.runner import run as _run_scenario
    from ..obs.manifest import config_hash
    from .serialize import scenario_to_dict

    for scenario in scenarios:
        if warm_start.burn_in_s >= scenario.max_time_s:
            raise ValueError(
                f"warm-start burn_in_s={warm_start.burn_in_s} must be below "
                f"every scenario's max_time_s; "
                f"{scenario.protocol}/n={scenario.num_nodes}/"
                f"seed={scenario.seed} has max_time_s={scenario.max_time_s}"
            )
        drift = [e for e in scenario.fault_plan.entries if e.kind == "clock_drift"]
        if drift:
            raise ValueError(
                "clock_drift fault plans cannot be warm-started (skews "
                "apply before the burn-in); run these scenarios without "
                "warm_start"
            )
    snapshot_store = None
    if warm_start.snapshot_dir is not None:
        out_dir = Path(warm_start.snapshot_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
    elif store is not None:
        snapshot_store = store
        out_dir = store.snapshots_dir
    else:
        out_dir = Path(tempfile.mkdtemp(prefix="peas-warm-start-"))
    # Burn-ins run bare: the caller's capability stack (tracing, metrics)
    # describes the variant runs, not the shared prefix.  ``store_dir`` is
    # stripped too — the snapshot file itself is the cached artifact.
    sanitize = options.sanitize if options is not None else False
    paths: List[str] = []
    built: Dict[str, str] = {}
    for scenario in scenarios:
        base = scenario.with_(
            failure_per_5000s=0.0,
            fault_plan=FaultPlan(),
            max_time_s=warm_start.burn_in_s,
        )
        digest = config_hash(scenario_to_dict(base))
        if digest not in built:
            if snapshot_store is not None:
                target = snapshot_store.snapshot_target(digest)
                if snapshot_store.snapshot_valid(target):
                    snapshot_store.note_snapshot("hit", target.name)
                else:
                    snapshot_store.note_snapshot("miss", target.name)
                    _run_scenario(
                        base,
                        RunOptions(snapshot_path=str(target), sanitize=sanitize),
                    )
                    snapshot_store.note_snapshot("put", target.name)
            else:
                target = out_dir / f"burn-in-{digest}.json"
                _run_scenario(
                    base, RunOptions(snapshot_path=str(target), sanitize=sanitize)
                )
            built[digest] = str(target)
        paths.append(built[digest])
    if telemetry is not None:
        telemetry.note_warm_start(burn_ins=len(built), forks=len(paths))
    return paths


def _default_chunksize(num_scenarios: int, processes: int) -> int:
    """Batch pool work items explicitly instead of ``pool.map``'s default.

    Retained for callers that sized their own batches: the resumable
    executor dispatches runs individually (per-run timeouts and worker
    -death tracking need one future per run), so this value no longer
    affects execution — per-item dispatch overhead is negligible next to
    seconds-long runs, and it removes the straggler problem chunking had.
    """
    return max(1, num_scenarios // (processes * 4))


def run_sweep(
    scenarios: Sequence[Scenario],
    processes: Optional[int] = None,
    options: Optional[RunOptions] = None,
    chunksize: Optional[int] = None,
    errors: str = "raise",
    telemetry=None,
    warm_start: Optional[WarmStart] = None,
    retry: Optional[RetryPolicy] = None,
    _run_fn=None,
) -> List[Union[RunResult, RunError]]:
    """Run every scenario; ``processes`` > 1 uses a process pool.

    Results are returned in the order of the input scenarios either way, so
    downstream grouping is deterministic.  ``options`` applies the same
    capability stack (profile / sanitize / trace-to-path / metrics /
    result store) to every run, pooled or serial; ``chunksize`` is
    accepted for compatibility but ignored — the executor dispatches runs
    individually so it can time them out and survive worker death.

    ``options.store_dir`` attaches a :class:`repro.store.ResultStore`:
    runs already recorded there (same scenario, seed, code fingerprint,
    options) replay instantly in the parent, every newly computed run is
    persisted the moment its worker finishes, and re-running an
    interrupted sweep against the same store resumes with zero
    recomputation of completed ``(scenario, seed)`` pairs.

    ``warm_start`` (a :class:`WarmStart`) simulates each distinct
    fault-quiescent base scenario once to ``burn_in_s``, snapshots it
    (``peas-snapshot/1``), and warm-start forks every variant run from the
    shared burn-in instead of simulating it from zero — the fig 12–14
    recipe, where variants differ only in failure rate.  With a store
    attached, burn-in snapshots are cached in it across sweeps.

    ``telemetry`` (a :class:`~repro.experiments.telemetry.SweepTelemetry`)
    attaches the sweep telemetry bus: pooled workers ship heartbeats to a
    live progress line, and once the sweep finishes — including the
    ``errors="raise"`` path, so a partly-failed sweep still leaves its
    exports behind — the merged ``peas-metrics/1`` / Prometheus / manifest
    files are written to the telemetry's output directory.

    ``retry`` (a :class:`RetryPolicy`, default two attempts with a short
    exponential backoff) governs failures: each failing run is retried
    with the identical scenario (runs are seed-deterministic, so a logic
    bug fails every attempt while a transient worker problem recovers),
    and a run that exhausts its attempts is quarantined as a structured
    :class:`RunError` carrying the attempt trail.  ``errors`` picks what
    happens to quarantined runs: ``"raise"`` (default) raises a
    :class:`SweepError` summarizing every failure once the sweep finishes,
    ``"collect"`` returns :class:`RunError` records in the failed runs'
    positions (callers filter with ``isinstance``).
    """
    if errors not in ("raise", "collect"):
        raise ValueError(f"errors must be 'raise' or 'collect', got {errors!r}")
    del chunksize  # legacy batching hint; the executor dispatches per run
    options = options if options is not None else RunOptions()
    policy = retry if retry is not None else RetryPolicy()
    store = None
    if options.store_dir is not None:
        from ..store import ResultStore, store_eligible

        if store_eligible(options):
            store = ResultStore(options.store_dir)
    pooled = processes is not None and processes > 1
    if telemetry is not None:
        telemetry.start(len(scenarios), processes=processes if pooled else 1)
    warm_paths: Optional[List[str]] = None
    if warm_start is not None:
        warm_paths = _prepare_warm_starts(
            scenarios, warm_start, options, telemetry, store=store
        )
    results = execute(
        scenarios,
        processes=processes if pooled else None,
        options=options,
        policy=policy,
        telemetry=telemetry,
        warm_paths=warm_paths,
        warm_burn_in_s=warm_start.burn_in_s if warm_start is not None else None,
        store=store,
        run_fn=_run_fn if _run_fn is not None else _guarded_run,
    )
    if store is not None and telemetry is not None:
        hits = store.session["hits"]
        telemetry.note_store(
            hits=hits,
            misses=len(scenarios) - hits,
            evictions=store.session["evictions"] + store.session["quarantined"],
        )
    failures = [r for r in results if isinstance(r, RunError)]
    if telemetry is not None:
        telemetry.finish(scenarios, results)
    if failures and errors == "raise":
        raise SweepError(failures)
    return results


def group_by(
    results: Iterable[RunResult], key: Callable[[RunResult], object]
) -> Dict[object, List[RunResult]]:
    """Group run results (e.g. by population or failure rate) preserving
    first-seen key order."""
    groups: Dict[object, List[RunResult]] = {}
    for result in results:
        groups.setdefault(key(result), []).append(result)
    return groups
