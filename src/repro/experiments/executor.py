"""The sweep executor: retries, timeouts, pool resurrection, store replay.

``run_sweep`` used to be a ``pool.map`` call with one hardcoded same-seed
retry bolted on the side.  This module replaces that with an explicit
executor whose failure semantics are declarative and whose unit of
dispatch is one run, which is what makes the rest possible:

* a :class:`RetryPolicy` decides how many attempts a run gets, how long to
  back off between them (exponential, with deterministic jitter drawn from
  the ``"sweep.retry"`` RNG stream — never from global ``random``), and an
  optional per-run wall-clock timeout enforced by the pool;
* a run that exhausts its attempts is **quarantined**: it completes the
  sweep as a structured :class:`RunError` carrying the full attempt trail,
  total retry wall-clock, and a ``quarantined`` flag that telemetry counts
  (``peas_sweep_quarantined_total``) — one poison seed never aborts the
  battery;
* worker death (``BrokenProcessPool`` after a SIGKILL or OOM) degrades
  gracefully: the executor re-spawns the pool, charges an attempt to the
  runs it *observed running* (their work died with the worker), re-queues
  runs that were merely waiting at no cost, and keeps draining.  The
  in-flight ``(scenario, seed)`` coordinates land in the ``RunError``
  messages, so ``errors="collect"`` semantics hold instead of surfacing an
  opaque pool crash;
* when a :class:`repro.store.ResultStore` is attached, every run already
  in the store replays instantly in the parent before anything is
  dispatched — an interrupted sweep re-run against the same store resumes
  with zero recomputation of completed pairs.

The executor runs in the *parent* process; wall-clock reads here are
legitimate (``repro.experiments`` is outside the lint's sim scope) and
never touch simulation state.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..harness.options import RunOptions
from ..sim import RngRegistry
from .metrics import RunResult
from .scenario import Scenario

__all__ = ["RetryPolicy", "RunError", "SweepError"]

#: Seconds between poll iterations of the pooled drain loop.
_POLL_S = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor treats a failing run.

    Parameters
    ----------
    max_attempts:
        Total attempts per run (1 = no retries).  The default of 2
        preserves the historical one-same-seed-retry behavior: runs are
        seed-deterministic, so a logic bug fails twice while a transient
        worker problem recovers.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff between attempts: after the ``k``-th failure
        the executor waits ``min(base * factor**(k-1), max)`` seconds,
        scaled by jitter.
    jitter:
        Fractional jitter on top of the backoff, drawn from the
        ``"sweep.retry"`` RNG stream (deterministic per sweep seed): the
        actual delay is ``backoff * (1 + jitter * u)`` with ``u ~ U[0,1)``.
    run_timeout_s:
        Per-run wall-clock budget, enforced by the **pool** (the parent
        kills and re-spawns worker processes; a serial sweep cannot
        preempt itself, so the timeout only applies when ``processes >
        1``).  A timed-out attempt counts against ``max_attempts``.
    """

    max_attempts: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter: float = 0.5
    run_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if self.backoff_max_s < 0:
            raise ValueError("backoff_max_s must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ValueError("run_timeout_s must be positive")

    def backoff_s(self, failed_attempts: int, rng: Any) -> float:
        """Delay before the next attempt, after ``failed_attempts`` failures."""
        base = min(
            self.backoff_base_s * self.backoff_factor ** max(0, failed_attempts - 1),
            self.backoff_max_s,
        )
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class RunError:
    """A structured record of one failed run (picklable, JSON-friendly).

    Captures what the parent process needs to triage a worker crash
    without the original exception object: the scenario's identifying
    coordinates, the exception type/message, the formatted traceback, and
    the retry history the executor accumulated.
    """

    scenario: Scenario
    error_type: str
    error_message: str
    traceback_text: str
    #: how many attempts were made (1 = failed without a retry)
    attempts: int = 1
    #: wall-clock seconds spent between the first failure and giving up
    #: (backoff waits and re-runs included)
    retry_wall_s: float = 0.0
    #: one ``"TypeName: message"`` line per failed attempt, oldest first
    trail: Tuple[str, ...] = ()
    #: True when the run exhausted its full retry budget (a poison seed),
    #: False for runs the executor gave up on for external reasons (e.g.
    #: the pool kept dying while they were queued)
    quarantined: bool = False

    def summary(self, traceback_lines: int = 3) -> str:
        """One actionable block per failure: the failing run's coordinates
        (protocol / population / seed — enough to re-run it solo), the
        exception, the retry history, and the tail of the worker traceback
        (the frames nearest the raise; the head is usually pool
        plumbing)."""
        head = (
            f"{self.scenario.protocol}/n={self.scenario.num_nodes}/"
            f"seed={self.scenario.seed}: {self.error_type}: "
            f"{self.error_message}"
        )
        lines = [head]
        if self.attempts > 1:
            wall = f" over {self.retry_wall_s:.1f}s of retries" if (
                self.retry_wall_s > 0
            ) else ""
            lines.append(f"    [{self.attempts} attempts{wall}]")
        tail = [
            line
            for line in self.traceback_text.rstrip().splitlines()
            if line.strip()
        ][-traceback_lines:]
        lines.extend(f"    {line.rstrip()}" for line in tail)
        return "\n".join(lines)


class SweepError(RuntimeError):
    """Raised by ``run_sweep(errors="raise")`` after the sweep completes;
    carries every :class:`RunError` for triage."""

    def __init__(self, failures: List[RunError]) -> None:
        lines = "\n".join(f"  - {f.summary()}" for f in failures)
        super().__init__(
            f"{len(failures)} of the sweep's runs failed after exhausting "
            f"their retry budget:\n{lines}"
        )
        self.failures = failures


@dataclass
class _Outcome:
    """Picklable envelope a guarded worker sends back: result or error."""

    result: Optional[RunResult] = None
    error: Optional[RunError] = None
    retried: bool = field(default=False, compare=False)


def _warm_run(
    scenario: Scenario,
    warm_snapshot: str,
    options: RunOptions,
    warm_burn_in_s: Optional[float],
) -> RunResult:
    """A warm-start fork, store-aware: the harness-level store passthrough
    only covers cold runs, so the fork path keys its own records — with
    the burn-in marker, because a warm-started result (faults arm at the
    restored clock) is *not* interchangeable with a cold one."""
    from ..harness.snapshot import resume as _resume_snapshot

    store = None
    key = None
    if options.store_dir is not None:
        from ..store import ResultStore, store_eligible

        if store_eligible(options):
            store = ResultStore(options.store_dir)
            key = store.key_for(scenario, options, warm_burn_in_s=warm_burn_in_s)
            cached = store.get(key)
            if cached is not None:
                return cached
            store.note_miss(key)
    result = _resume_snapshot(warm_snapshot, options, scenario=scenario)
    if store is not None and key is not None:
        store.put(key, result, scenario, options, warm_burn_in_s=warm_burn_in_s)
    return result


def _guarded_run(
    scenario: Scenario,
    warm_snapshot: Optional[str] = None,
    *,
    options: RunOptions,
    warm_burn_in_s: Optional[float] = None,
) -> _Outcome:
    # The telemetry hooks are process-global no-ops unless this worker was
    # initialized by a SweepTelemetry bus (see experiments.telemetry).
    # Harness imports stay inside the function: experiments <-> harness is
    # otherwise a package-level import cycle.
    from ..harness.runner import run as _run_scenario
    from .telemetry import worker_run_finished, worker_run_started

    worker_run_started(scenario)
    try:
        if warm_snapshot is not None:
            result = _warm_run(scenario, warm_snapshot, options, warm_burn_in_s)
        else:
            result = _run_scenario(scenario, options)
        outcome = _Outcome(result=result)
    except Exception as exc:  # noqa: BLE001 - captured, surfaced by policy
        outcome = _Outcome(
            error=RunError(
                scenario=scenario,
                error_type=type(exc).__name__,
                error_message=str(exc),
                traceback_text=traceback.format_exc(),
            )
        )
    worker_run_finished(ok=outcome.error is None)
    return outcome


@dataclass
class _Item:
    """One run's progress through the executor."""

    index: int
    scenario: Scenario
    warm_snapshot: Optional[str] = None
    attempts: int = 0
    #: free re-queues after pool deaths that did not involve this run
    free_requeues: int = 0
    trail: List[str] = field(default_factory=list)
    last_error: Optional[RunError] = None
    eligible_at: float = 0.0
    first_failure_at: Optional[float] = None
    observed_running: bool = False
    running_since: Optional[float] = None
    outcome: Optional[Union[RunResult, RunError]] = None


class _Executor:
    """Drains a list of items through retries, timeouts, and pool deaths."""

    def __init__(
        self,
        items: List[_Item],
        *,
        options: RunOptions,
        policy: RetryPolicy,
        telemetry: Any,
        warm_burn_in_s: Optional[float],
        run_fn: Callable[..., _Outcome],
    ) -> None:
        self.items = items
        self.options = options
        self.policy = policy
        self.telemetry = telemetry
        self.warm_burn_in_s = warm_burn_in_s
        self.run_fn = run_fn
        # Deterministic jitter: one named stream per sweep, seeded from the
        # first scenario (the stream lives in the parent and never
        # interacts with any simulation RNG).
        master = items[0].scenario.seed if items else 0
        self.jitter_rng = RngRegistry(seed=master).stream("sweep.retry")
        #: pool deaths tolerated per queued-but-not-running item before the
        #: executor stops re-queueing it for free
        self.max_free_requeues = max(3, policy.max_attempts + 1)

    # ----------------------------------------------------------- serial
    def run_serial(self) -> None:
        for item in self.items:
            if item.outcome is not None:
                continue
            while item.outcome is None:
                item.attempts += 1
                outcome = self.run_fn(
                    item.scenario,
                    item.warm_snapshot,
                    options=self.options,
                    warm_burn_in_s=self.warm_burn_in_s,
                )
                if self.telemetry is not None:
                    self.telemetry.note_outcome(
                        ok=outcome.error is None,
                        scenario=item.scenario,
                        retry=item.attempts > 1,
                    )
                if outcome.error is None:
                    item.outcome = outcome.result
                    break
                self._record_failure(item, outcome.error)
                if item.attempts >= self.policy.max_attempts:
                    self._finalize_failure(item, quarantined=True)
                else:
                    time.sleep(self.policy.backoff_s(item.attempts, self.jitter_rng))

    # ----------------------------------------------------------- pooled
    def run_pooled(self, processes: int) -> None:
        self._pool_size = processes
        pool = self._make_pool()
        pending: List[_Item] = [i for i in self.items if i.outcome is None]
        in_flight: Dict[Any, _Item] = {}
        try:
            while pending or in_flight:
                now = time.monotonic()
                broken = False
                for item in [i for i in pending if i.eligible_at <= now]:
                    try:
                        future = pool.submit(
                            self.run_fn,
                            item.scenario,
                            item.warm_snapshot,
                            options=self.options,
                            warm_burn_in_s=self.warm_burn_in_s,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        broken = True
                        break
                    pending.remove(item)
                    item.observed_running = False
                    item.running_since = None
                    in_flight[future] = item
                if broken:
                    pool = self._restart_pool(pool, in_flight, pending, culprit=None)
                    continue
                if not in_flight:
                    next_at = min(i.eligible_at for i in pending)
                    time.sleep(max(0.0, min(next_at - time.monotonic(), 0.25)))
                    continue

                done, _ = wait(
                    list(in_flight), timeout=_POLL_S, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                timed_out: Optional[_Item] = None
                for future, item in in_flight.items():
                    if future in done:
                        continue
                    if future.running():
                        item.observed_running = True
                        if item.running_since is None:
                            item.running_since = now
                        elif (
                            self.policy.run_timeout_s is not None
                            and now - item.running_since >= self.policy.run_timeout_s
                        ):
                            timed_out = item
                            break
                if timed_out is not None:
                    # The only way to stop a hung worker mid-run is to kill
                    # the pool; everyone else in flight is innocent and
                    # re-queues for free.
                    self._charge_parent_failure(
                        timed_out,
                        error_type="TimeoutError",
                        message=(
                            f"run exceeded the {self.policy.run_timeout_s}s "
                            "wall-clock budget; worker killed"
                        ),
                    )
                    pool = self._restart_pool(
                        pool, in_flight, pending, culprit=timed_out
                    )
                    continue

                pool_died = False
                for future in done:
                    item = in_flight.get(future)
                    if item is None:
                        continue
                    try:
                        outcome = future.result()
                    except CancelledError:
                        in_flight.pop(future)
                        self._requeue_free(item, pending)
                        continue
                    except BrokenProcessPool:
                        # A worker was SIGKILLed / OOMed.  Leave the item
                        # in flight: once every *successful* future in
                        # this batch is harvested, ``_restart_pool``
                        # triages the casualties (observed-running runs
                        # consume an attempt, queued ones re-run free).
                        pool_died = True
                        continue
                    except Exception as exc:  # noqa: BLE001 - dispatch plumbing
                        in_flight.pop(future)
                        item.attempts += 1
                        self._record_failure(
                            item,
                            RunError(
                                scenario=item.scenario,
                                error_type=type(exc).__name__,
                                error_message=str(exc),
                                traceback_text=traceback.format_exc(),
                            ),
                        )
                        self._schedule_or_finalize(item, pending)
                        continue
                    in_flight.pop(future)
                    item.attempts += 1
                    if outcome.error is None:
                        item.outcome = outcome.result
                    else:
                        self._record_failure(item, outcome.error)
                        self._schedule_or_finalize(item, pending)
                if pool_died:
                    pool = self._restart_pool(pool, in_flight, pending, culprit=None)
                    continue
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # -------------------------------------------------- failure plumbing
    def _record_failure(self, item: _Item, error: RunError) -> None:
        item.last_error = error
        item.trail.append(f"{error.error_type}: {error.error_message}")
        if item.first_failure_at is None:
            item.first_failure_at = time.monotonic()

    def _charge_parent_failure(
        self, item: _Item, *, error_type: str, message: str
    ) -> None:
        """A failure detected in the parent (no worker traceback exists):
        consume an attempt and record a structured error naming the run."""
        item.attempts += 1
        self._record_failure(
            item,
            RunError(
                scenario=item.scenario,
                error_type=error_type,
                error_message=message,
                traceback_text="",
            ),
        )
        if self.telemetry is not None:
            self.telemetry.note_outcome(
                ok=False, scenario=item.scenario, retry=item.attempts > 1
            )

    def _schedule_or_finalize(self, item: _Item, pending: List[_Item]) -> None:
        if item.attempts >= self.policy.max_attempts:
            self._finalize_failure(item, quarantined=True)
            return
        delay = self.policy.backoff_s(item.attempts, self.jitter_rng)
        item.eligible_at = time.monotonic() + delay
        pending.append(item)
        if self.telemetry is not None:
            self.telemetry.note_retry(scenario=item.scenario)

    def _finalize_failure(self, item: _Item, *, quarantined: bool) -> None:
        last = item.last_error
        assert last is not None
        retry_wall = 0.0
        if item.first_failure_at is not None and item.attempts > 1:
            retry_wall = time.monotonic() - item.first_failure_at
        item.outcome = RunError(
            scenario=item.scenario,
            error_type=last.error_type,
            error_message=last.error_message,
            traceback_text=last.traceback_text,
            attempts=item.attempts,
            retry_wall_s=round(retry_wall, 3),
            trail=tuple(item.trail),
            quarantined=quarantined,
        )
        if quarantined and self.telemetry is not None:
            self.telemetry.note_quarantined(scenario=item.scenario)

    def _requeue_free(self, item: _Item, pending: List[_Item]) -> None:
        """Re-queue a run that lost its slot through no fault of its own
        (the pool died while it was waiting).  Bounded: a pool that dies
        faster than it can start work must not spin forever."""
        item.free_requeues += 1
        if item.free_requeues > self.max_free_requeues:
            item.attempts = max(item.attempts, 1)
            self._record_failure(
                item,
                RunError(
                    scenario=item.scenario,
                    error_type="BrokenProcessPool",
                    error_message=(
                        f"pool died {item.free_requeues} times while "
                        f"{self._coords(item)} was queued; giving up"
                    ),
                    traceback_text="",
                ),
            )
            self._finalize_failure(item, quarantined=False)
            return
        item.eligible_at = time.monotonic()
        pending.append(item)

    def _restart_pool(
        self,
        pool: ProcessPoolExecutor,
        in_flight: Dict[Any, _Item],
        pending: List[_Item],
        *,
        culprit: Optional[_Item],
    ) -> ProcessPoolExecutor:
        """Tear the pool down hard, triage every in-flight run, re-spawn."""
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - a broken pool may refuse politely
            pass
        for future, item in list(in_flight.items()):
            if item is culprit:
                # Already charged by the caller.
                self._schedule_or_finalize(item, pending)
            elif culprit is None and item.observed_running:
                # Spontaneous worker death: work observed executing died
                # with the worker and consumes an attempt.
                self._charge_parent_failure(
                    item,
                    error_type="BrokenProcessPool",
                    message=self._death_message(item),
                )
                self._schedule_or_finalize(item, pending)
            else:
                self._requeue_free(item, pending)
        in_flight.clear()
        if self.telemetry is not None:
            self.telemetry.note_pool_restart()
        return self._make_pool()

    def _make_pool(self) -> ProcessPoolExecutor:
        pool_kwargs: Dict[str, Any] = (
            self.telemetry.pool_kwargs() if self.telemetry is not None else {}
        )
        return ProcessPoolExecutor(max_workers=self._pool_size, **pool_kwargs)

    def _coords(self, item: _Item) -> str:
        scenario = item.scenario
        return (
            f"{scenario.protocol}/n={scenario.num_nodes}/seed={scenario.seed}"
        )

    def _death_message(self, item: _Item) -> str:
        return (
            f"worker process died (SIGKILL/OOM) while running "
            f"{self._coords(item)}; pool restarted"
        )


def execute(
    scenarios: Sequence[Scenario],
    *,
    processes: Optional[int],
    options: RunOptions,
    policy: RetryPolicy,
    telemetry: Any = None,
    warm_paths: Optional[Sequence[str]] = None,
    warm_burn_in_s: Optional[float] = None,
    store: Any = None,
    run_fn: Callable[..., _Outcome] = _guarded_run,
) -> List[Union[RunResult, RunError]]:
    """Drain ``scenarios`` through the retry/timeout/store machinery.

    Returns results in input order.  ``store`` (a
    :class:`repro.store.ResultStore`) enables the instant-replay pass:
    runs whose records verify are never dispatched.  ``run_fn`` is a test
    seam — it must be a module-level picklable callable with
    :func:`_guarded_run`'s signature.
    """
    items = [
        _Item(
            index=index,
            scenario=scenario,
            warm_snapshot=warm_paths[index] if warm_paths is not None else None,
        )
        for index, scenario in enumerate(scenarios)
    ]
    if store is not None:
        for item in items:
            key = store.key_for(
                item.scenario, options, warm_burn_in_s=warm_burn_in_s
            )
            cached = store.get(key)
            if cached is not None:
                item.outcome = cached
                if telemetry is not None:
                    telemetry.note_store_hit(scenario=item.scenario)
    executor = _Executor(
        items,
        options=options,
        policy=policy,
        telemetry=telemetry,
        warm_burn_in_s=warm_burn_in_s,
        run_fn=run_fn,
    )
    if processes is not None and processes > 1:
        executor.run_pooled(processes)
    else:
        executor.run_serial()
    results: List[Union[RunResult, RunError]] = []
    for item in items:
        assert item.outcome is not None
        results.append(item.outcome)
    return results
