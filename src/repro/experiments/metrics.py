"""Result containers and aggregation for simulation runs.

A :class:`RunResult` captures everything §5 reports about one run;
:func:`aggregate` folds repeated seeds into mean/std summaries the way the
paper averages each data point over 5 simulation runs (§5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "RunResult",
    "MeanStd",
    "FaultRecovery",
    "aggregate_values",
    "aggregate_lifetimes",
    "recovery_after_faults",
    "recovery_extras",
]


@dataclass
class RunResult:
    """Metrics of one simulation run."""

    num_nodes: int
    seed: int
    failure_rate_per_5000s: float
    end_time: float
    #: K -> K-coverage lifetime in seconds (None: threshold never reached)
    coverage_lifetimes: Dict[int, Optional[float]] = field(default_factory=dict)
    delivery_lifetime: Optional[float] = None
    total_wakeups: int = 0
    energy_total_j: float = 0.0
    energy_overhead_j: float = 0.0
    #: network-wide energy by accounting category (probe_tx, data_rx, ...)
    energy_by_category: Dict[str, float] = field(default_factory=dict)
    failures_injected: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    channel_counters: Dict[str, int] = field(default_factory=dict)
    #: optional raw series (coverage over time etc.), absent in sweeps
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: free-form scalar extras (gap statistics, baseline-specific metrics)
    extras: Dict[str, float] = field(default_factory=dict)
    #: provenance block (git SHA, config hash, seed, RNG streams, versions,
    #: wall time, peak RSS); see :func:`repro.obs.build_manifest`
    manifest: Dict[str, Any] = field(default_factory=dict)
    #: engine self-time breakdown when the run was profiled, else ``None``
    profile: Optional[Dict[str, Any]] = None
    #: registry snapshot when run with ``RunOptions(metrics=True)``, else
    #: ``None``; see :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
    metrics: Optional[List[Dict[str, Any]]] = None

    @property
    def energy_overhead_ratio(self) -> float:
        if self.energy_total_j <= 0:
            return 0.0
        return self.energy_overhead_j / self.energy_total_j

    @property
    def failure_fraction(self) -> float:
        return self.failures_injected / self.num_nodes if self.num_nodes else 0.0


@dataclass(frozen=True)
class MeanStd:
    """Mean and (population) standard deviation of a metric across seeds."""

    mean: float
    std: float
    n: int

    def __format__(self, spec: str) -> str:
        spec = spec or ".1f"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def aggregate_values(values: Sequence[Optional[float]]) -> Optional[MeanStd]:
    """Mean/std over the non-missing values; ``None`` if all are missing."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    mean = sum(present) / len(present)
    variance = sum((v - mean) ** 2 for v in present) / len(present)
    return MeanStd(mean=mean, std=math.sqrt(variance), n=len(present))


def aggregate_lifetimes(
    results: Sequence[RunResult], k: int
) -> Optional[MeanStd]:
    """Aggregate the K-coverage lifetime across repeated-seed runs."""
    return aggregate_values([r.coverage_lifetimes.get(k) for r in results])


@dataclass(frozen=True)
class FaultRecovery:
    """How the coverage fraction weathered one fault strike.

    The empirical counterpart of §3's replacement-delay bound: how deep
    coverage dipped below the health threshold after the strike, and how
    long until probing restored it.
    """

    #: when the fault fired
    fault_time_s: float
    #: worst shortfall below the threshold before recovery (0: never dipped)
    dip_depth: float
    #: seconds from the strike until coverage was back at/above the
    #: threshold (``None``: never recovered before the run ended)
    recovery_s: Optional[float]


def recovery_after_faults(
    samples: Sequence[Tuple[float, float]],
    fire_times: Sequence[float],
    threshold: float,
) -> List[FaultRecovery]:
    """Fold a coverage time-series into per-fault recovery records.

    For each fault instant, scans the samples strictly after it: the dip
    depth is the worst ``threshold - value`` seen before the first sample
    at/above the threshold, and the recovery time is that sample's delay
    from the strike.  Faults with no samples after them yield a zero-dip,
    unrecovered record (the run ended at the strike).
    """
    records: List[FaultRecovery] = []
    for fault_time in fire_times:
        dip = 0.0
        recovery: Optional[float] = None
        for t, value in samples:
            if t <= fault_time:
                continue
            if value >= threshold:
                recovery = float(t - fault_time)
                break
            # float() guards against array-scalar samples leaking into
            # JSON-bound extras.
            dip = max(dip, float(threshold - value))
        records.append(
            FaultRecovery(
                fault_time_s=fault_time, dip_depth=dip, recovery_s=recovery
            )
        )
    return records


def recovery_extras(recoveries: Sequence[FaultRecovery]) -> Dict[str, float]:
    """Summarize recovery records as flat ``RunResult.extras`` scalars."""
    if not recoveries:
        return {}
    recovered = [r.recovery_s for r in recoveries if r.recovery_s is not None]
    extras: Dict[str, float] = {
        "coverage_dip_max": max(r.dip_depth for r in recoveries),
        "faults_unrecovered": float(len(recoveries) - len(recovered)),
    }
    if recovered:
        extras["recovery_mean_s"] = sum(recovered) / len(recovered)
        extras["recovery_max_s"] = max(recovered)
    return extras
