"""Result containers and aggregation for simulation runs.

A :class:`RunResult` captures everything §5 reports about one run;
:func:`aggregate` folds repeated seeds into mean/std summaries the way the
paper averages each data point over 5 simulation runs (§5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["RunResult", "MeanStd", "aggregate_values", "aggregate_lifetimes"]


@dataclass
class RunResult:
    """Metrics of one simulation run."""

    num_nodes: int
    seed: int
    failure_rate_per_5000s: float
    end_time: float
    #: K -> K-coverage lifetime in seconds (None: threshold never reached)
    coverage_lifetimes: Dict[int, Optional[float]] = field(default_factory=dict)
    delivery_lifetime: Optional[float] = None
    total_wakeups: int = 0
    energy_total_j: float = 0.0
    energy_overhead_j: float = 0.0
    #: network-wide energy by accounting category (probe_tx, data_rx, ...)
    energy_by_category: Dict[str, float] = field(default_factory=dict)
    failures_injected: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    channel_counters: Dict[str, int] = field(default_factory=dict)
    #: optional raw series (coverage over time etc.), absent in sweeps
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: free-form scalar extras (gap statistics, baseline-specific metrics)
    extras: Dict[str, float] = field(default_factory=dict)
    #: provenance block (git SHA, config hash, seed, RNG streams, versions,
    #: wall time, peak RSS); see :func:`repro.obs.build_manifest`
    manifest: Dict[str, Any] = field(default_factory=dict)
    #: engine self-time breakdown when the run was profiled, else ``None``
    profile: Optional[Dict[str, Any]] = None

    @property
    def energy_overhead_ratio(self) -> float:
        if self.energy_total_j <= 0:
            return 0.0
        return self.energy_overhead_j / self.energy_total_j

    @property
    def failure_fraction(self) -> float:
        return self.failures_injected / self.num_nodes if self.num_nodes else 0.0


@dataclass(frozen=True)
class MeanStd:
    """Mean and (population) standard deviation of a metric across seeds."""

    mean: float
    std: float
    n: int

    def __format__(self, spec: str) -> str:
        spec = spec or ".1f"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def aggregate_values(values: Sequence[Optional[float]]) -> Optional[MeanStd]:
    """Mean/std over the non-missing values; ``None`` if all are missing."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    mean = sum(present) / len(present)
    variance = sum((v - mean) ** 2 for v in present) / len(present)
    return MeanStd(mean=mean, std=math.sqrt(variance), n=len(present))


def aggregate_lifetimes(
    results: Sequence[RunResult], k: int
) -> Optional[MeanStd]:
    """Aggregate the K-coverage lifetime across repeated-seed runs."""
    return aggregate_values([r.coverage_lifetimes.get(k) for r in results])
