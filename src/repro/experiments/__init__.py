"""Experiment harness: scenarios, runner, sweeps and the paper's artifacts."""

from .metrics import MeanStd, RunResult, aggregate_lifetimes, aggregate_values
from .paper import (
    BASELINE_FAILURE_RATE,
    DEPLOYMENT_NUMBERS,
    FAILURE_RATES,
    bench_processes,
    bench_seeds,
    deployment_scenarios,
    failure_scenarios,
    fig9_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
    fig13_rows,
    fig14_rows,
    get_deployment_results,
    get_failure_results,
    table1_rows,
)
from .report import render_report, sparkline, timeline_chart
from .runner import build_network, run_scenario
from .serialize import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
    scenario_from_dict,
    scenario_to_dict,
)
from .scenario import Scenario
from .sweep import expand_protocols, expand_seeds, group_by, run_sweep
from .tables import fmt, format_series, format_table

__all__ = [
    "Scenario",
    "run_scenario",
    "build_network",
    "RunResult",
    "MeanStd",
    "aggregate_values",
    "aggregate_lifetimes",
    "expand_seeds",
    "expand_protocols",
    "run_sweep",
    "group_by",
    "format_table",
    "format_series",
    "fmt",
    "render_report",
    "sparkline",
    "timeline_chart",
    "result_to_dict",
    "result_from_dict",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_results",
    "load_results",
    "DEPLOYMENT_NUMBERS",
    "FAILURE_RATES",
    "BASELINE_FAILURE_RATE",
    "bench_seeds",
    "bench_processes",
    "deployment_scenarios",
    "failure_scenarios",
    "get_deployment_results",
    "get_failure_results",
    "fig9_rows",
    "fig10_rows",
    "fig11_rows",
    "table1_rows",
    "fig12_rows",
    "fig13_rows",
    "fig14_rows",
]
