"""Assemble and execute one scenario end-to-end.

:func:`run_scenario` wires together every subsystem — deployment, channel,
PEAS network, failure injector, coverage tracker, GRAB traffic — runs the
simulation until the whole population is dead (the paper simulates "for a
sufficiently long period of time until all nodes die", §5.2), and returns a
:class:`~repro.experiments.metrics.RunResult`.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core import PEASNetwork
from ..coverage import CoverageGrid, CoverageTracker
from ..failures import FailureInjector, per_5000s
from ..net import PACKET_SIZE_BYTES, DEPLOYMENTS, Field, RadioModel
from ..net.mac import window_layout
from ..obs import build_manifest
from ..obs.tracer import Tracer
from ..routing import GrabRouter, ReportTraffic, WorkingTopology
from ..sim import EngineProfiler, RngRegistry, SimSanitizer, Simulator
from .metrics import RunResult
from .scenario import Scenario

__all__ = ["run_scenario", "build_network"]


def build_network(
    scenario: Scenario,
    sim: Simulator,
    rngs: RngRegistry,
    tracer: Optional[Tracer] = None,
) -> PEASNetwork:
    """Construct the deployed PEAS network for a scenario (no metrics wiring)."""
    field = Field(*scenario.field_size)
    deploy = DEPLOYMENTS[scenario.deployment]
    positions = deploy(field, scenario.num_nodes, rngs.stream("deployment"))
    radio = RadioModel(
        bitrate_bps=scenario.bitrate_bps,
        max_range_m=scenario.comm_range_m,
        irregularity=scenario.rssi_irregularity,
    )
    # With traffic enabled, the source and sink stations participate as
    # anchored permanent workers (they are nodes of the network, §5.2);
    # their REPLYs keep nearby sleepers in reserve for later generations.
    anchors = (scenario.source, scenario.sink) if scenario.with_traffic else ()
    return PEASNetwork(
        sim,
        field,
        positions,
        scenario.config,
        rngs,
        radio=radio,
        profile=scenario.profile,
        loss_rate=scenario.loss_rate,
        anchors=anchors,
        tracer=tracer,
    )


def run_scenario(
    scenario: Scenario,
    *,
    tracer: Optional[Tracer] = None,
    profile: bool = False,
    sanitize: bool = False,
) -> RunResult:
    """Run one scenario to completion and collect the §5 metrics.

    Parameters
    ----------
    scenario:
        What to simulate.
    tracer:
        Optional :class:`repro.obs.Tracer`; when given (and not null-sink
        backed) every subsystem emits structured trace events through it.
        The caller owns the sink (closing it, choosing the path).
    profile:
        Attach an :class:`~repro.sim.EngineProfiler` for the whole run and
        store its breakdown on ``result.profile``.
    sanitize:
        Attach a :class:`~repro.sim.SimSanitizer`: cheap invariant
        assertions (monotonic event time, legal transmissions, battery and
        estimator well-formedness) that raise
        :class:`~repro.sim.sanitizer.InvariantViolation` on the first
        failure.  Off by default; results are bit-identical either way —
        the checks are read-only.
    """
    wall_start = time.perf_counter()
    sim = Simulator()
    rngs = RngRegistry(seed=scenario.seed)
    sanitizer: Optional[SimSanitizer] = None
    if sanitize:
        sanitizer = SimSanitizer()
        sanitizer.install(sim)
    network = build_network(scenario, sim, rngs, tracer=tracer)
    if sanitizer is not None:
        sanitizer.attach_network(network)
    field = network.field
    profiler: Optional[EngineProfiler] = None
    if profile:
        profiler = EngineProfiler()
        sim.profiler = profiler

    # --- coverage metric -------------------------------------------------
    grid = CoverageGrid(
        field,
        sensing_range=scenario.sensing_range_m,
        resolution=scenario.coverage_resolution_m,
        max_k=max(scenario.coverage_ks) + 1,
    )
    tracker = CoverageTracker(
        sim,
        grid,
        ks=scenario.coverage_ks,
        sample_interval_s=scenario.sample_interval_s,
        threshold=scenario.lifetime_threshold,
    )
    network.working_observers.append(tracker.on_working_change)

    # --- replacement gaps (Fig 4/5 metric) --------------------------------
    gap_monitor = None
    if scenario.measure_gaps:
        from ..baselines.gaps import CellGapMonitor

        gap_monitor = CellGapMonitor(
            sim, field, cell_size_m=scenario.config.probe_range_m
        )
        network.working_observers.append(gap_monitor.on_working_change)

    # --- data delivery metric --------------------------------------------
    traffic = None
    if scenario.with_traffic:
        topology = WorkingTopology(
            network.grid,
            comm_range=scenario.comm_range_m,
            neighbors=network.neighbors,
        )

        def topology_observer(time, node, started, _topology=topology):
            if started:
                _topology.add_working(node.node_id, node.position)
            else:
                _topology.remove_working(node.node_id)

        network.working_observers.append(topology_observer)
        router = GrabRouter(
            topology,
            source=scenario.source,
            sink=scenario.sink,
            attach_radius=scenario.comm_range_m,
            link_loss=scenario.grab_link_loss,
            mesh_width=scenario.grab_mesh_width,
            rng=rngs.stream("grab"),
        )
        path_hook = None
        if scenario.charge_data_energy:
            airtime = network.radio.airtime(scenario.report_size_bytes)

            def path_hook(path, _network=network, _airtime=airtime):
                # Each hop: the forwarder transmits, the next node receives.
                # Anchors are externally powered; skip their batteries.
                now = _network.sim.now
                for sender, receiver in zip(path, path[1:] + [None]):
                    node = _network.nodes[sender]
                    if not node.anchor and node.alive:
                        node.battery.charge_frame(now, "tx", _airtime, "data_tx")
                        node.on_energy_charged()
                    if receiver is None:
                        continue
                    peer = _network.nodes[receiver]
                    if not peer.anchor and peer.alive:
                        peer.battery.charge_frame(now, "rx", _airtime, "data_rx")
                        peer.on_energy_charged()

        traffic = ReportTraffic(
            sim,
            router,
            interval_s=scenario.report_interval_s,
            threshold=scenario.lifetime_threshold,
            path_hook=path_hook,
        )

    # --- failure injection -------------------------------------------------
    injector = FailureInjector(
        sim,
        rate_hz=per_5000s(scenario.failure_per_5000s),
        alive_provider=network.alive_ids,
        kill=network.kill,
        rng=rngs.stream("failures"),
        tracer=tracer,
    )

    # --- run ----------------------------------------------------------------
    network.start()
    tracker.start()
    if traffic is not None:
        traffic.start()
    injector.start()
    while not network.all_dead and sim.now < scenario.max_time_s:
        sim.run(until=sim.now + scenario.run_chunk_s)
    tracker.stop()
    if traffic is not None:
        traffic.stop()

    # --- collect --------------------------------------------------------------
    energy = network.energy_report()
    result = RunResult(
        num_nodes=scenario.num_nodes,
        seed=scenario.seed,
        failure_rate_per_5000s=scenario.failure_per_5000s,
        end_time=sim.now,
        coverage_lifetimes=tracker.lifetimes(),
        delivery_lifetime=traffic.delivery_lifetime() if traffic else None,
        total_wakeups=network.counters.get("wakeups"),
        energy_total_j=energy.total_consumed_j,
        energy_overhead_j=energy.overhead_j,
        energy_by_category=dict(energy.by_category),
        failures_injected=injector.failures_injected,
        counters=network.counters.as_dict(),
        channel_counters=network.channel.counters.as_dict(),
    )
    if scenario.keep_series:
        for name in tracker.series.names():
            result.series[name] = tracker.series.samples(name)
        if traffic is not None:
            for name in traffic.series.names():
                result.series[name] = traffic.series.samples(name)
    if gap_monitor is not None:
        result.extras["gap_count"] = float(gap_monitor.gap_count())
        result.extras["gap_mean_s"] = gap_monitor.mean_gap()
        result.extras["gap_max_s"] = gap_monitor.max_gap()
        result.extras["gap_p95_s"] = gap_monitor.percentile_gap(0.95)
    if sanitizer is not None:
        # Final sweep so end-of-run state is checked even when the last
        # sweep period did not elapse, then report what ran.
        sanitizer.sweep(sim.now)
        result.extras["sanitizer_checks"] = float(sanitizer.total_checks)
    if profiler is not None:
        sim.profiler = None
        result.profile = profiler.as_dict()

    # --- provenance -----------------------------------------------------------
    trace_info = None
    if tracer is not None:
        trace_info = tracer.stats()
        path = getattr(tracer.sink, "path", None)
        if path is not None:
            trace_info["path"] = str(path)
    airtime = network.radio.airtime(PACKET_SIZE_BYTES)
    config = scenario.config
    result.manifest = build_manifest(
        seed=scenario.seed,
        config=scenario,
        rng_streams=tuple(rngs.names()),
        wall_time_s=time.perf_counter() - wall_start,
        events_executed=sim.events_executed,
        sim_end_time_s=sim.now,
        trace=trace_info,
        mac=window_layout(
            config.num_probes,
            airtime,
            config.probe_gap_s,
            config.probe_window_s,
            config.reply_guard_s,
        ),
    )
    return result
