"""Run one scenario end-to-end (thin wrapper over :mod:`repro.harness`).

Historically this module assembled the whole substrate itself; that logic
now lives in :func:`repro.harness.runner.run`, shared verbatim with the
baseline runner and the sweep pool, so every protocol executes under one
harness.  :func:`run_scenario` keeps the stable public signature, and
honors ``scenario.protocol`` — by default PEAS, but any registered
protocol runs through the same call.

``build_network`` moved to :mod:`repro.protocols.peas`; it is re-exported
here for backwards compatibility.
"""

from __future__ import annotations

from typing import Optional

from ..obs.tracer import Tracer
from ..protocols.peas import build_network
from .metrics import RunResult
from .scenario import Scenario

__all__ = ["run_scenario", "build_network"]


def run_scenario(
    scenario: Scenario,
    *,
    tracer: Optional[Tracer] = None,
    profile: bool = False,
    sanitize: bool = False,
) -> RunResult:
    """Run one scenario to completion and collect the §5 metrics.

    Parameters
    ----------
    scenario:
        What to simulate; ``scenario.protocol`` picks the registered
        protocol (default PEAS).
    tracer:
        Optional :class:`repro.obs.Tracer`; when given (and not null-sink
        backed) every subsystem emits structured trace events through it.
        The caller owns the sink (closing it, choosing the path).
    profile:
        Attach an :class:`~repro.sim.EngineProfiler` for the whole run and
        store its breakdown on ``result.profile``.
    sanitize:
        Attach a :class:`~repro.sim.SimSanitizer`: cheap invariant
        assertions (monotonic event time, legal transmissions, battery and
        estimator well-formedness) that raise
        :class:`~repro.sim.sanitizer.InvariantViolation` on the first
        failure.  Off by default; results are bit-identical either way —
        the checks are read-only.
    """
    from ..harness import RunOptions, run

    return run(
        scenario,
        RunOptions(profile=profile, sanitize=sanitize),
        tracer=tracer,
    )
