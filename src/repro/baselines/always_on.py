"""AlwaysOn baseline: no energy conservation at all.

Every node works from deployment until its battery empties (or it fails).
This is the degenerate comparator the paper's premise implies: without
turning redundant nodes off, the whole population lives exactly one battery
lifetime (~4500-5000 s at idle draw, §5.1), regardless of how many nodes
are deployed — the flat line that PEAS's linear scaling is measured against.
"""

from __future__ import annotations

from .base import BaselineNetwork

__all__ = ["AlwaysOnProtocol"]


class AlwaysOnProtocol:
    """Turn everything on at t = 0 and never turn anything off."""

    name = "always_on"

    def __init__(self, network: BaselineNetwork) -> None:
        self.network = network

    def start(self) -> None:
        for node in self.network.nodes.values():
            node.set_working(True)
