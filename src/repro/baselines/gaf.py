"""GAF-like baseline: geographic grid leader election (§6's GAF [10]).

GAF divides the field into virtual grid cells small enough that any node in
one cell can talk to any node in the adjacent cells (cell edge
``r / sqrt(5)`` for radio range ``r``); within a cell one node stays up and
the rest sleep, with sleep durations derived from the leader's *remaining
energy* (the predicted-lifetime coordination PEAS's §2.1.1 argues against).

Model: per cell, the alive node with the most remaining energy leads.
Sleepers set their wakeup to the moment the current leader's energy is
predicted to run out; an unexpected leader failure therefore leaves the
cell dark until that scheduled wakeup — exactly the "big gap" failure mode
of Figure 4.  A small election cost is charged per hand-off.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..net import Field
from .base import BaselineNetwork, BaselineNode

__all__ = ["GafLikeProtocol"]


class GafLikeProtocol:
    """Grid-cell leader rotation driven by predicted leader lifetime."""

    name = "gaf"

    def __init__(
        self,
        network: BaselineNetwork,
        radio_range_m: float = 10.0,
        election_cost_j: float = 0.001,
        safety_margin_s: float = 1.0,
    ) -> None:
        if radio_range_m <= 0:
            raise ValueError("radio_range_m must be positive")
        self.network = network
        self.cell_size = radio_range_m / math.sqrt(5.0)
        self.election_cost_j = election_cost_j
        self.safety_margin_s = safety_margin_s
        self._cells: Dict[Tuple[int, int], List[BaselineNode]] = defaultdict(list)
        for node in network.nodes.values():
            self._cells[self._cell_of(node)].append(node)
        self.elections = 0

    def _cell_of(self, node: BaselineNode) -> Tuple[int, int]:
        return (
            int(node.position[0] // self.cell_size),
            int(node.position[1] // self.cell_size),
        )

    # -------------------------------------------------------------- control
    def start(self) -> None:
        for cell in self._cells:
            self._elect(cell)

    def _elect(self, cell: Tuple[int, int]) -> None:
        """Pick the max-energy alive member as leader; everyone sleeps until
        the leader's predicted depletion time."""
        members = [n for n in self._cells[cell] if n.alive]
        if not members:
            return
        self.elections += 1
        leader = max(members, key=lambda n: n.remaining_energy())
        for node in members:
            node.charge(self.election_cost_j, "election")
        # Re-check liveness: the election cost may have finished someone off.
        if not leader.alive:
            self._elect(cell)
            return
        leader.set_working(True)
        for node in members:
            if node is not leader and node.alive:
                node.set_working(False)
        predicted = leader.battery.time_to_depletion(self.network.sim.now)
        if predicted is None:
            return
        self.network.sim.schedule(
            predicted + self.safety_margin_s, self._elect, cell, label="gaf-elect"
        )

    def leader_of(self, cell: Tuple[int, int]) -> Optional[BaselineNode]:
        for node in self._cells.get(cell, ()):
            if node.alive and node.working:
                return node
        return None
