"""Monitoring of local sensing/serving gaps (Figures 4/5).

The paper's core robustness argument is about *gaps*: intervals during
which some locality has no working node because its worker died and no
replacement has taken over yet (Figure 4).  PEAS's randomized wakeups bound
the expected gap by ~1/lambda_d (§2.2: "if an animal-tracking sensor
network allows for monitoring interruptions up to 5 minutes, lambda_d can
be set at 1 per 300 seconds").

:class:`CellGapMonitor` samples the field on a lattice and, for each sample
point, records every interval during which **no working node lies within
the serving radius** (the probing range R_p by default) — after the point
has been served at least once.  Terminal outages (the point never regains a
worker before the run ends) are excluded; they measure network death, not
replacement latency.

The monitor subscribes to the same working-set observer stream as the
coverage tracker, so it works identically for PEAS and every baseline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..net import Field
from ..sim import Simulator

__all__ = ["CellGapMonitor"]


class CellGapMonitor:
    """Records serving-gap durations at lattice sample points.

    Parameters
    ----------
    sim:
        The simulation engine (supplies the clock).
    field:
        The deployment area.
    cell_size_m:
        Lattice spacing of the sample points *and* the default serving
        radius (the probing range R_p in paper scenarios).
    radius_m:
        Serving radius override; a point is "served" while at least one
        working node is within this distance.
    """

    def __init__(
        self,
        sim: Simulator,
        field: Field,
        cell_size_m: float = 3.0,
        radius_m: float = None,
    ) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        self.sim = sim
        self.field = field
        self.spacing = float(cell_size_m)
        self.radius = float(radius_m) if radius_m is not None else float(cell_size_m)
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        nx = int(math.floor(field.width / self.spacing)) + 1
        ny = int(math.floor(field.height / self.spacing)) + 1
        self._shape = (nx, ny)
        #: per sample point: number of working nodes within the radius
        self._count: Dict[Tuple[int, int], int] = {}
        self._gap_start: Dict[Tuple[int, int], float] = {}
        self._served: Dict[Tuple[int, int], bool] = {}
        self.gaps: List[float] = []

    # ------------------------------------------------------------ internals
    def _points_near(self, position: Tuple[float, float]) -> List[Tuple[int, int]]:
        px, py = position
        r = self.radius
        s = self.spacing
        x_lo = max(0, int(math.ceil((px - r) / s)))
        x_hi = min(self._shape[0] - 1, int(math.floor((px + r) / s)))
        y_lo = max(0, int(math.ceil((py - r) / s)))
        y_hi = min(self._shape[1] - 1, int(math.floor((py + r) / s)))
        r_sq = r * r
        points = []
        for ix in range(x_lo, x_hi + 1):
            dx = ix * s - px
            for iy in range(y_lo, y_hi + 1):
                dy = iy * s - py
                if dx * dx + dy * dy <= r_sq:
                    points.append((ix, iy))
        return points

    # ------------------------------------------------------------- plumbing
    def on_working_change(self, time: float, node, started: bool) -> None:
        """Observer compatible with PEAS and baseline networks alike."""
        for point in self._points_near(node.position):
            count = self._count.get(point, 0)
            if started:
                if count == 0 and point in self._gap_start:
                    self.gaps.append(time - self._gap_start.pop(point))
                self._count[point] = count + 1
                self._served[point] = True
            else:
                if count <= 0:
                    raise ValueError(f"working count underflow at point {point}")
                self._count[point] = count - 1
                if self._count[point] == 0 and self._served.get(point):
                    self._gap_start[point] = time

    # ------------------------------------------------------------- snapshot
    def state_dict(self) -> dict:
        """Serializable gap-tracking state; lattice keys round-trip through
        JSON as ``[ix, iy]`` pairs and come back as tuples."""
        return {
            "count": [[list(k), v] for k, v in self._count.items()],
            "gap_start": [[list(k), v] for k, v in self._gap_start.items()],
            "served": [list(k) for k, v in self._served.items() if v],
            "gaps": list(self.gaps),
        }

    def load_state(self, state: dict) -> None:
        self._count = {tuple(k): int(v) for k, v in state["count"]}
        self._gap_start = {tuple(k): float(v) for k, v in state["gap_start"]}
        self._served = {tuple(k): True for k in state["served"]}
        self.gaps = [float(g) for g in state["gaps"]]

    # -------------------------------------------------------------- queries
    def gap_count(self) -> int:
        return len(self.gaps)

    def mean_gap(self) -> float:
        return sum(self.gaps) / len(self.gaps) if self.gaps else 0.0

    def max_gap(self) -> float:
        return max(self.gaps) if self.gaps else 0.0

    def percentile_gap(self, q: float) -> float:
        """q-quantile of closed gap durations (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.gaps:
            return 0.0
        ordered = sorted(self.gaps)
        index = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(index, 0)]
