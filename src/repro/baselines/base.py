"""Shared plumbing for baseline (non-PEAS) sleep-scheduling protocols.

The related schemes the paper positions against (§6: GAF, SPAN, AFECA,
ASCENT) coordinate sleeping at the *schedule* level — which node is up and
when — rather than through PEAS's probe/reply control plane.  The baselines
here therefore model node modes, batteries and failure deaths with the same
substrates as PEAS (energy model, coverage tracker, routing, failure
injector all plug in through the identical observer interface), while their
coordination logic runs directly on the simulator instead of over radio
frames.  Coordination costs are charged as explicit per-event energy fees.

This keeps lifetime/robustness comparisons apples-to-apples: identical
batteries, identical power draws per mode, identical metrics — only the
turn-off policy differs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from ..energy import (
    MOTE_PROFILE,
    EnergyReport,
    NodeBattery,
    PowerProfile,
    RadioMode,
    draw_initial_energy,
    summarize_energy,
)
from ..net import Field, Point
from ..sim import CounterSet, Simulator, Timer, register_handler
from ..sim.handlers import RestoreContext

__all__ = ["BaselineNode", "BaselineNetwork"]

WorkingObserver = Callable[[float, "BaselineNode", bool], None]


class BaselineNode:
    """A sensor under baseline control: position, battery, up/down state."""

    def __init__(
        self,
        node_id: Hashable,
        position: Point,
        sim: Simulator,
        battery: NodeBattery,
        on_working_change: Callable[["BaselineNode", bool], None],
        on_death: Callable[["BaselineNode"], None],
    ) -> None:
        self.node_id = node_id
        self.position = position
        self.sim = sim
        self.battery = battery
        self.working = False
        self.alive = True
        self._on_working_change = on_working_change
        self._on_death = on_death
        self._death_timer = Timer(
            sim,
            self.die,
            label="baseline-depletion",
            handler=("baseline.depletion", (node_id,)),
        )

    # ------------------------------------------------------------- control
    def set_working(self, working: bool) -> None:
        """Switch between Working (idle draw) and Sleeping (sleep draw)."""
        if not self.alive or working == self.working:
            return
        self.working = working
        self.battery.set_mode(
            self.sim.now, RadioMode.IDLE if working else RadioMode.SLEEP
        )
        self._reschedule_death()
        self._on_working_change(self, working)

    def charge(self, joules: float, category: str) -> None:
        """Charge a coordination cost (election message, beacon, ...)."""
        if not self.alive:
            return
        self.battery.charge(self.sim.now, joules, category)
        if self.battery.depleted(self.sim.now):
            self.die()
        else:
            self._reschedule_death()

    def die(self) -> None:
        if not self.alive:
            return
        was_working = self.working
        self.alive = False
        self.working = False
        self.battery.set_mode(self.sim.now, RadioMode.OFF)
        self._death_timer.cancel()
        if was_working:
            self._on_working_change(self, False)
        self._on_death(self)

    def start_sleeping(self) -> None:
        self.battery.set_mode(self.sim.now, RadioMode.SLEEP)
        self._reschedule_death()

    def remaining_energy(self) -> float:
        return self.battery.remaining(self.sim.now)

    # ------------------------------------------------------------- snapshot
    def state_dict(self) -> dict:
        return {
            "working": self.working,
            "alive": self.alive,
            "battery": self.battery.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore fields directly — observer side effects already happened
        in the snapshotted run; the network restores its own sets."""
        self.working = bool(state["working"])
        self.alive = bool(state["alive"])
        self.battery.load_state(state["battery"])

    # ------------------------------------------------------------ internals
    def _reschedule_death(self) -> None:
        ttd = self.battery.time_to_depletion(self.sim.now)
        if ttd is None:
            self._death_timer.cancel()
        else:
            self._death_timer.start(ttd)


class BaselineNetwork:
    """Population container exposing the same observer surface as
    :class:`~repro.core.protocol.PEASNetwork`, so coverage, routing and
    failure injection plug in unchanged.

    Subclass-free: a concrete baseline protocol receives the network and
    drives :meth:`BaselineNode.set_working` from its own scheduling logic.
    """

    def __init__(
        self,
        sim: Simulator,
        field: Field,
        positions: Sequence[Point],
        profile: PowerProfile = MOTE_PROFILE,
        battery_rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.field = field
        self.profile = profile
        self.counters = CounterSet()
        self.working_observers: List[WorkingObserver] = []
        self.nodes: Dict[Hashable, BaselineNode] = {}
        self._alive: set = set()
        self._working: set = set()
        rng = battery_rng if battery_rng is not None else random.Random(0)
        for index, position in enumerate(positions):
            if not field.contains(position):
                raise ValueError(f"node {index} at {position} outside the field")
            battery = NodeBattery(profile, draw_initial_energy(profile, rng), sim.now)
            self.nodes[index] = BaselineNode(
                index,
                position,
                sim,
                battery,
                on_working_change=self._working_changed,
                on_death=self._node_died,
            )
            self._alive.add(index)

    # -------------------------------------------------- PEASNetwork surface
    def start(self) -> None:
        for node in self.nodes.values():
            node.start_sleeping()

    def kill(self, node_id: Hashable) -> None:
        self.nodes[node_id].die()

    def alive_ids(self) -> frozenset:
        return frozenset(self._alive)

    def working_ids(self) -> frozenset:
        return frozenset(self._working)

    @property
    def all_dead(self) -> bool:
        return not self._alive

    @property
    def population(self) -> int:
        return len(self.nodes)

    def energy_report(self) -> EnergyReport:
        return summarize_energy(
            (node.battery for node in self.nodes.values()), self.sim.now
        )

    # ------------------------------------------------------------- snapshot
    def state_dict(self) -> dict:
        return {
            "counters": self.counters.state_dict(),
            "alive": sorted(self._alive),
            "working": sorted(self._working),
            "nodes": [
                [node_id, node.state_dict()] for node_id, node in self.nodes.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore into a freshly constructed (never started) population."""
        self.counters.load_state(state["counters"])
        saved = {node_id: node_state for node_id, node_state in state["nodes"]}
        for node_id, node in self.nodes.items():
            node.load_state(saved[node_id])
        self._alive = set(state["alive"])
        self._working = set(state["working"])

    # ------------------------------------------------------------ internals
    def _working_changed(self, node: BaselineNode, working: bool) -> None:
        if working:
            self._working.add(node.node_id)
        else:
            self._working.discard(node.node_id)
        for observer in self.working_observers:
            observer(self.sim.now, node, working)

    def _node_died(self, node: BaselineNode) -> None:
        self._alive.discard(node.node_id)


@register_handler("baseline.depletion")
def _resolve_baseline_depletion(ctx: RestoreContext, event) -> None:
    node_id = event.handler[1][0]
    ctx.component("network").nodes[node_id]._death_timer.adopt(event)
