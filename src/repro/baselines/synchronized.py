"""Synchronized sleeping baseline — the Figure 4/5 strawman.

§2.1.1: related schemes "typically take the deterministic approach of
synchronized sleeping and waking-up: all sleeping nodes (in a local
neighborhood) doze for the same predicted period of time, which is normally
their working neighbors' active time.  Then they all wake up almost
simultaneously to re-elect new working nodes."  When the working node fails
*before* its predicted lifespan, "there come large gaps in the system
during which no working node is available" (Figure 4).  PEAS's randomized
wakeups shorten those gaps (Figure 5).

Model: the field is partitioned into neighborhoods (cells of the probing
range R_p).  At each round a neighborhood elects one worker; every other
member sleeps for exactly the worker's *predicted* active period T_work.
All members wake at the round boundary and re-elect.  A worker death inside
a round is only discovered at the round boundary — producing the gap.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from .base import BaselineNetwork, BaselineNode

__all__ = ["SynchronizedSleepProtocol"]


class SynchronizedSleepProtocol:
    """Round-based synchronized duty rotation per R_p neighborhood."""

    name = "synchronized"

    def __init__(
        self,
        network: BaselineNetwork,
        cell_size_m: float = 3.0,
        round_period_s: float = 500.0,
        election_cost_j: float = 0.001,
    ) -> None:
        if cell_size_m <= 0 or round_period_s <= 0:
            raise ValueError("cell size and round period must be positive")
        self.network = network
        self.cell_size_m = cell_size_m
        self.round_period_s = round_period_s
        self.election_cost_j = election_cost_j
        self._cells: Dict[Tuple[int, int], List[BaselineNode]] = defaultdict(list)
        for node in network.nodes.values():
            self._cells[self._cell_of(node)].append(node)
        self.rounds = 0

    def _cell_of(self, node: BaselineNode) -> Tuple[int, int]:
        return (
            int(node.position[0] // self.cell_size_m),
            int(node.position[1] // self.cell_size_m),
        )

    def start(self) -> None:
        self._round()

    # ------------------------------------------------------------ internals
    def _round(self) -> None:
        """Global round boundary: every neighborhood re-elects in lockstep
        (the synchronized wakeup the paper's Figure 3/4 criticizes)."""
        self.rounds += 1
        any_alive = False
        for members in self._cells.values():
            alive = [n for n in members if n.alive]
            if not alive:
                continue
            any_alive = True
            for node in alive:
                node.charge(self.election_cost_j, "election")
            alive = [n for n in alive if n.alive]
            if not alive:
                continue
            leader = max(alive, key=lambda n: n.remaining_energy())
            leader.set_working(True)
            for node in alive:
                if node is not leader:
                    node.set_working(False)
        if any_alive:
            self.network.sim.schedule(
                self.round_period_s, self._round, label="sync-round"
            )
