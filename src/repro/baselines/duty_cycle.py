"""Randomized Independent Sleeping (RIS) baseline.

Each node independently alternates awake/asleep periods so that it is up a
fraction ``duty`` of the time, with a random initial phase.  There is no
coordination whatsoever: redundancy is purely statistical, so maintaining
K-coverage with high probability requires a much higher duty cycle (hence
energy) than PEAS's location-aware rule — the comparison the §2.1.1
"location-dependent working nodes" rationale implies.
"""

from __future__ import annotations

import random

from ..sim import Simulator
from .base import BaselineNetwork, BaselineNode

__all__ = ["DutyCycleProtocol"]


class DutyCycleProtocol:
    """Independent on/off cycling with duty fraction ``duty``.

    Parameters
    ----------
    network:
        The baseline population.
    duty:
        Fraction of time each node is awake, in (0, 1].
    period_s:
        Length of one on+off cycle.
    rng:
        Stream for initial phases (cycling itself is deterministic).
    """

    name = "duty_cycle"

    def __init__(
        self,
        network: BaselineNetwork,
        duty: float = 0.5,
        period_s: float = 100.0,
        rng: random.Random = None,
    ) -> None:
        if not 0 < duty <= 1:
            raise ValueError("duty must be in (0, 1]")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.network = network
        self.duty = duty
        self.period_s = period_s
        self.rng = rng if rng is not None else random.Random(0)

    def start(self) -> None:
        sim = self.network.sim
        on_time = self.duty * self.period_s
        for node in self.network.nodes.values():
            phase = self.rng.uniform(0.0, self.period_s)
            sim.schedule(phase, self._turn_on, node, on_time, label="ris-on")

    # ------------------------------------------------------------ internals
    def _turn_on(self, node: BaselineNode, on_time: float) -> None:
        if not node.alive:
            return
        node.set_working(True)
        if self.duty >= 1.0:
            return
        self.network.sim.schedule(on_time, self._turn_off, node, label="ris-off")

    def _turn_off(self, node: BaselineNode) -> None:
        if not node.alive:
            return
        node.set_working(False)
        off_time = self.period_s - self.duty * self.period_s
        self.network.sim.schedule(
            off_time, self._turn_on, node, self.duty * self.period_s, label="ris-on"
        )
