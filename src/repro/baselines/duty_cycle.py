"""Randomized Independent Sleeping (RIS) baseline.

Each node independently alternates awake/asleep periods so that it is up a
fraction ``duty`` of the time, with a random initial phase.  There is no
coordination whatsoever: redundancy is purely statistical, so maintaining
K-coverage with high probability requires a much higher duty cycle (hence
energy) than PEAS's location-aware rule — the comparison the §2.1.1
"location-dependent working nodes" rationale implies.
"""

from __future__ import annotations

import random

from ..sim import Simulator, register_handler
from ..sim.handlers import RestoreContext
from .base import BaselineNetwork, BaselineNode

__all__ = ["DutyCycleProtocol"]


class DutyCycleProtocol:
    """Independent on/off cycling with duty fraction ``duty``.

    Parameters
    ----------
    network:
        The baseline population.
    duty:
        Fraction of time each node is awake, in (0, 1].
    period_s:
        Length of one on+off cycle.
    rng:
        Stream for initial phases (cycling itself is deterministic).
    """

    name = "duty_cycle"

    def __init__(
        self,
        network: BaselineNetwork,
        duty: float = 0.5,
        period_s: float = 100.0,
        rng: random.Random = None,
    ) -> None:
        if not 0 < duty <= 1:
            raise ValueError("duty must be in (0, 1]")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.network = network
        self.duty = duty
        self.period_s = period_s
        self.rng = rng if rng is not None else random.Random(0)

    def start(self) -> None:
        sim = self.network.sim
        on_time = self.duty * self.period_s
        for node in self.network.nodes.values():
            phase = self.rng.uniform(0.0, self.period_s)
            sim.schedule(
                phase, self._turn_on, node, on_time, label="ris-on",
                handler=("duty.on", (node.node_id, on_time)),
            )

    # ------------------------------------------------------------ internals
    def _turn_on(self, node: BaselineNode, on_time: float) -> None:
        if not node.alive:
            return
        node.set_working(True)
        if self.duty >= 1.0:
            return
        self.network.sim.schedule(
            on_time, self._turn_off, node, label="ris-off",
            handler=("duty.off", (node.node_id,)),
        )

    def _turn_off(self, node: BaselineNode) -> None:
        if not node.alive:
            return
        node.set_working(False)
        off_time = self.period_s - self.duty * self.period_s
        on_time = self.duty * self.period_s
        self.network.sim.schedule(
            off_time, self._turn_on, node, on_time, label="ris-on",
            handler=("duty.on", (node.node_id, on_time)),
        )


@register_handler("duty.on")
def _resolve_duty_on(ctx: RestoreContext, event) -> None:
    run = ctx.component("protocol")
    node_id, on_time = event.handler[1]
    event.fn = run.protocol._turn_on
    event.args = (run.network.nodes[node_id], float(on_time))


@register_handler("duty.off")
def _resolve_duty_off(ctx: RestoreContext, event) -> None:
    run = ctx.component("protocol")
    event.fn = run.protocol._turn_off
    event.args = (run.network.nodes[event.handler[1][0]],)
