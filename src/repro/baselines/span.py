"""SPAN-like baseline: coordinator election from 2-hop neighborhood state.

§6: "SPAN lets each node keep a list of all its working neighbors and
exchange this list with its neighbor nodes.  As a result, all nodes learn
the connectivity within their 2-hop neighborhood to decide which nodes to
turn off.  The sleeping nodes wake up at a scheduled time interval to
re-elect working ones."

Model (coordination-level, like the other baselines): a node volunteers as
a *coordinator* (worker) iff two of its radio neighbors cannot reach each
other either directly or through at most two existing coordinators — the
SPAN eligibility rule.  All nodes re-evaluate at synchronized election
rounds with a small randomized slot order (SPAN's backoff), and each
election round costs every participant a HELLO-exchange energy fee — the
per-neighbor state the paper criticizes has a recurring price.

This is exactly the class of scheme PEAS §2.1.1 contrasts itself with:
per-neighbor state plus scheduled wakeups.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Set

from ..net import build_neighbor_lists
from ..net.field import distance
from .base import BaselineNetwork, BaselineNode

__all__ = ["SpanLikeProtocol"]


class SpanLikeProtocol:
    """Round-based SPAN-style coordinator election."""

    name = "span"

    def __init__(
        self,
        network: BaselineNetwork,
        radio_range_m: float = 10.0,
        round_period_s: float = 100.0,
        hello_cost_j: float = 0.0005,
        rng: random.Random = None,
    ) -> None:
        if radio_range_m <= 0 or round_period_s <= 0:
            raise ValueError("radio range and round period must be positive")
        self.network = network
        self.radio_range_m = radio_range_m
        self.round_period_s = round_period_s
        self.hello_cost_j = hello_cost_j
        self.rng = rng if rng is not None else random.Random(0)
        self.rounds = 0
        # Static sorted-by-distance neighbor lists (nodes are stationary).
        self._neighbors: Dict[Hashable, List[Hashable]] = build_neighbor_lists(
            network.field,
            {node.node_id: node.position for node in network.nodes.values()},
            radio_range_m,
        )

    # -------------------------------------------------------------- control
    def start(self) -> None:
        self._round()

    def _round(self) -> None:
        """One synchronized election round over all alive nodes."""
        self.rounds += 1
        alive = [n for n in self.network.nodes.values() if n.alive]
        if not alive:
            return
        # HELLO exchange: maintaining per-neighbor state costs everyone.
        for node in alive:
            node.charge(self.hello_cost_j * max(1, len(self._neighbors[node.node_id])),
                        "election")
        alive = [n for n in alive if n.alive]

        coordinators: Set[Hashable] = set()
        # Randomized volunteering order (SPAN's announcement backoff favors
        # high-utility nodes; we approximate with energy-descending order
        # plus jitter).
        order = sorted(
            alive,
            key=lambda n: (-n.remaining_energy(), self.rng.random()),
        )
        for node in order:
            if self._eligible(node, coordinators):
                coordinators.add(node.node_id)
        for node in alive:
            node.set_working(node.node_id in coordinators)
        self.network.sim.schedule(self.round_period_s, self._round,
                                  label="span-round")

    # ------------------------------------------------------------ internals
    def _eligible(self, node: BaselineNode, coordinators: Set[Hashable]) -> bool:
        """SPAN rule: volunteer iff some pair of neighbors is not connected
        directly or via one or two coordinators."""
        neighbor_ids = [
            other
            for other in self._neighbors[node.node_id]
            if self.network.nodes[other].alive
        ]
        if not neighbor_ids:
            return True  # isolated: nobody else can cover its area
        if len(neighbor_ids) == 1:
            # No pair to bridge; stay up only if no coordinator nearby.
            return not (coordinators & set(neighbor_ids))
        coordinator_set = coordinators
        for i in range(len(neighbor_ids)):
            for j in range(i + 1, len(neighbor_ids)):
                a, b = neighbor_ids[i], neighbor_ids[j]
                if self._pair_connected(a, b, coordinator_set):
                    continue
                return True
        return False

    def _pair_connected(self, a: Hashable, b: Hashable,
                        coordinators: Set[Hashable]) -> bool:
        """Are neighbors a, b connected directly or via <=2 coordinators?"""
        pos_a = self.network.nodes[a].position
        pos_b = self.network.nodes[b].position
        if distance(pos_a, pos_b) <= self.radio_range_m:
            return True
        # One intermediate coordinator.
        common = (
            set(self._neighbors[a]) & set(self._neighbors[b]) & coordinators
        )
        if common:
            return True
        # Two intermediate coordinators: c1 in N(a), c2 in N(b), c1-c2 linked.
        a_coords = set(self._neighbors[a]) & coordinators
        b_coords = set(self._neighbors[b]) & coordinators
        for c1 in a_coords:
            neighbors_c1 = set(self._neighbors[c1])
            if neighbors_c1 & b_coords:
                return True
        return False
