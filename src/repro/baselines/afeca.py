"""AFECA-like baseline: sleep time scaled by the neighbor count.

§6: "In AFECA, each node maintains a list of neighbor identifiers in order
to keep track of the number of neighbors, based on which it decides the
sleeping period."  The idea: the denser the neighborhood, the longer a
node may sleep, because the expected number of simultaneously awake
neighbors stays constant.

Model: node i alternates awake periods ``T_on`` with sleeping periods drawn
uniformly from ``[1, N_i] * T_base`` where ``N_i`` is its (alive) neighbor
count — AFECA's published rule.  The neighbor list is maintained for free
here (stationary nodes), but unlike PEAS the redundancy is only
statistical: nothing guarantees someone is awake in any given area at any
given moment.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List

from ..net import build_neighbor_lists
from .base import BaselineNetwork, BaselineNode

__all__ = ["AfecaLikeProtocol"]


class AfecaLikeProtocol:
    """Neighbor-count-scaled randomized sleeping."""

    name = "afeca"

    def __init__(
        self,
        network: BaselineNetwork,
        radio_range_m: float = 10.0,
        awake_s: float = 50.0,
        base_sleep_s: float = 50.0,
        rng: random.Random = None,
    ) -> None:
        if radio_range_m <= 0 or awake_s <= 0 or base_sleep_s <= 0:
            raise ValueError("radio range and periods must be positive")
        self.network = network
        self.awake_s = awake_s
        self.base_sleep_s = base_sleep_s
        self.rng = rng if rng is not None else random.Random(0)
        # Static sorted-by-distance neighbor lists (nodes are stationary).
        self._neighbors: Dict[Hashable, List[Hashable]] = build_neighbor_lists(
            network.field,
            {node.node_id: node.position for node in network.nodes.values()},
            radio_range_m,
        )

    def alive_neighbor_count(self, node: BaselineNode) -> int:
        return sum(
            1
            for other in self._neighbors[node.node_id]
            if self.network.nodes[other].alive
        )

    # -------------------------------------------------------------- control
    def start(self) -> None:
        for node in self.network.nodes.values():
            # Random initial phase within one awake+sleep cycle.
            delay = self.rng.uniform(0.0, self.awake_s)
            self.network.sim.schedule(delay, self._wake, node, label="afeca-on")

    # ------------------------------------------------------------ internals
    def _wake(self, node: BaselineNode) -> None:
        if not node.alive:
            return
        node.set_working(True)
        self.network.sim.schedule(self.awake_s, self._sleep, node,
                                  label="afeca-off")

    def _sleep(self, node: BaselineNode) -> None:
        if not node.alive:
            return
        node.set_working(False)
        neighbor_count = max(1, self.alive_neighbor_count(node))
        sleep = self.rng.uniform(1.0, float(neighbor_count)) * self.base_sleep_s
        self.network.sim.schedule(sleep, self._wake, node, label="afeca-on")
