"""Run a baseline protocol under the same scenario/metrics as PEAS.

:func:`run_baseline` is a thin wrapper over the shared run harness
(:mod:`repro.harness`): the deployment, coverage tracker, GRAB routing,
failure injection, result containers *and* the full capability stack
(tracing, profiling, sanitizing, manifests) are the identical code path
PEAS runs on — only the protocol adapter differs.  This is what makes the
PEAS-vs-baseline benches a controlled comparison.

:data:`BASELINE_FACTORIES` remains the canonical name -> factory table;
:mod:`repro.protocols` registers each entry so ``Scenario.protocol`` can
name a baseline directly and sweeps can cross protocols.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .afeca import AfecaLikeProtocol
from .always_on import AlwaysOnProtocol
from .duty_cycle import DutyCycleProtocol
from .gaf import GafLikeProtocol
from .span import SpanLikeProtocol
from .synchronized import SynchronizedSleepProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.metrics import RunResult
    from ..experiments.scenario import Scenario
    from ..obs.tracer import Tracer

__all__ = ["run_baseline", "BASELINE_FACTORIES"]

#: name -> factory(network, rngs) for the stock baselines.
BASELINE_FACTORIES = {
    "always_on": lambda network, rngs: AlwaysOnProtocol(network),
    "duty_cycle": lambda network, rngs: DutyCycleProtocol(
        network, rng=rngs.stream("duty")
    ),
    "gaf": lambda network, rngs: GafLikeProtocol(network),
    "synchronized": lambda network, rngs: SynchronizedSleepProtocol(network),
    "span": lambda network, rngs: SpanLikeProtocol(
        network, rng=rngs.stream("span")
    ),
    "afeca": lambda network, rngs: AfecaLikeProtocol(
        network, rng=rngs.stream("afeca")
    ),
}


def run_baseline(
    scenario: "Scenario",
    protocol: str = "always_on",
    protocol_factory: Optional[Callable] = None,
    measure_gaps: bool = False,
    *,
    tracer: Optional["Tracer"] = None,
    profile: bool = False,
    sanitize: bool = False,
) -> "RunResult":
    """Run a baseline protocol over the scenario's deployment.

    ``protocol`` picks a stock baseline; ``protocol_factory(network, rngs)``
    overrides it for custom-parameterized instances.  With ``measure_gaps``
    the Figure 4/5 replacement-gap statistics land in ``result.extras``.
    ``tracer``/``profile``/``sanitize`` attach the same capability stack as
    :func:`~repro.experiments.runner.run_scenario` — one harness runs both.
    """
    from ..harness import RunOptions, run

    if measure_gaps and not scenario.measure_gaps:
        scenario = scenario.with_(measure_gaps=True)
    if protocol_factory is None:
        if protocol not in BASELINE_FACTORIES:
            raise KeyError(
                f"unknown baseline {protocol!r}; "
                f"choose from {sorted(BASELINE_FACTORIES)}"
            )
        scenario = scenario.with_(protocol=protocol)
    return run(
        scenario,
        RunOptions(profile=profile, sanitize=sanitize),
        tracer=tracer,
        protocol_factory=protocol_factory,
    )
