"""Run a baseline protocol under the same scenario/metrics as PEAS.

Reuses the deployment, coverage tracker, GRAB routing, failure injection
and result containers of :mod:`repro.experiments`, swapping only the
protocol: this is what makes the PEAS-vs-baseline benches a controlled
comparison.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..coverage import CoverageGrid, CoverageTracker
from ..experiments.metrics import RunResult
from ..experiments.scenario import Scenario
from ..failures import FailureInjector, per_5000s
from ..net import DEPLOYMENTS, Field, NeighborCache, SpatialGrid
from ..routing import GrabRouter, ReportTraffic, WorkingTopology
from ..sim import RngRegistry, Simulator
from .afeca import AfecaLikeProtocol
from .always_on import AlwaysOnProtocol
from .base import BaselineNetwork
from .duty_cycle import DutyCycleProtocol
from .gaf import GafLikeProtocol
from .gaps import CellGapMonitor
from .span import SpanLikeProtocol
from .synchronized import SynchronizedSleepProtocol

__all__ = ["run_baseline", "BASELINE_FACTORIES"]

#: name -> factory(network, rngs) for the stock baselines.
BASELINE_FACTORIES = {
    "always_on": lambda network, rngs: AlwaysOnProtocol(network),
    "duty_cycle": lambda network, rngs: DutyCycleProtocol(
        network, rng=rngs.stream("duty")
    ),
    "gaf": lambda network, rngs: GafLikeProtocol(network),
    "synchronized": lambda network, rngs: SynchronizedSleepProtocol(network),
    "span": lambda network, rngs: SpanLikeProtocol(
        network, rng=rngs.stream("span")
    ),
    "afeca": lambda network, rngs: AfecaLikeProtocol(
        network, rng=rngs.stream("afeca")
    ),
}


def run_baseline(
    scenario: Scenario,
    protocol: str = "always_on",
    protocol_factory: Optional[Callable] = None,
    measure_gaps: bool = False,
) -> RunResult:
    """Run a baseline protocol over the scenario's deployment.

    ``protocol`` picks a stock baseline; ``protocol_factory(network, rngs)``
    overrides it for custom-parameterized instances.  With ``measure_gaps``
    the Figure 4/5 replacement-gap statistics land in ``result.extras``.
    """
    sim = Simulator()
    rngs = RngRegistry(seed=scenario.seed)
    field = Field(*scenario.field_size)
    positions = DEPLOYMENTS[scenario.deployment](
        field, scenario.num_nodes, rngs.stream("deployment")
    )
    network = BaselineNetwork(
        sim, field, positions, profile=scenario.profile,
        battery_rng=rngs.stream("battery"),
    )
    factory = protocol_factory or BASELINE_FACTORIES[protocol]
    proto = factory(network, rngs)

    grid = CoverageGrid(
        field,
        sensing_range=scenario.sensing_range_m,
        resolution=scenario.coverage_resolution_m,
        max_k=max(scenario.coverage_ks) + 1,
    )
    tracker = CoverageTracker(
        sim,
        grid,
        ks=scenario.coverage_ks,
        sample_interval_s=scenario.sample_interval_s,
        threshold=scenario.lifetime_threshold,
    )
    network.working_observers.append(tracker.on_working_change)
    gap_monitor = None
    if measure_gaps:
        gap_monitor = CellGapMonitor(
            sim, field, cell_size_m=scenario.config.probe_range_m
        )
        network.working_observers.append(gap_monitor.on_working_change)

    traffic = None
    if scenario.with_traffic:
        spatial = SpatialGrid(field, cell_size=scenario.config.probe_range_m)
        cache = NeighborCache(spatial)
        spatial.bulk_insert((i, p) for i, p in enumerate(positions))
        topology = WorkingTopology(
            spatial, comm_range=scenario.comm_range_m, neighbors=cache
        )

        def topology_observer(time, node, started, _topology=topology):
            if started:
                _topology.add_working(node.node_id, node.position)
            else:
                _topology.remove_working(node.node_id)

        network.working_observers.append(topology_observer)
        router = GrabRouter(
            topology,
            source=scenario.source,
            sink=scenario.sink,
            attach_radius=scenario.comm_range_m,
            link_loss=scenario.grab_link_loss,
            mesh_width=scenario.grab_mesh_width,
            rng=rngs.stream("grab"),
        )
        traffic = ReportTraffic(
            sim, router,
            interval_s=scenario.report_interval_s,
            threshold=scenario.lifetime_threshold,
        )

    injector = FailureInjector(
        sim,
        rate_hz=per_5000s(scenario.failure_per_5000s),
        alive_provider=network.alive_ids,
        kill=network.kill,
        rng=rngs.stream("failures"),
    )

    network.start()
    proto.start()
    tracker.start()
    if traffic is not None:
        traffic.start()
    injector.start()
    while not network.all_dead and sim.now < scenario.max_time_s:
        sim.run(until=sim.now + scenario.run_chunk_s)
    tracker.stop()
    if traffic is not None:
        traffic.stop()

    energy = network.energy_report()
    overhead = sum(
        joules
        for category, joules in energy.by_category.items()
        if category == "election"
    )
    result = RunResult(
        num_nodes=scenario.num_nodes,
        seed=scenario.seed,
        failure_rate_per_5000s=scenario.failure_per_5000s,
        end_time=sim.now,
        coverage_lifetimes=tracker.lifetimes(),
        delivery_lifetime=traffic.delivery_lifetime() if traffic else None,
        total_wakeups=0,
        energy_total_j=energy.total_consumed_j,
        energy_overhead_j=overhead,
        failures_injected=injector.failures_injected,
        counters=network.counters.as_dict(),
    )
    if gap_monitor is not None:
        result.extras["gap_count"] = float(gap_monitor.gap_count())
        result.extras["gap_mean_s"] = gap_monitor.mean_gap()
        result.extras["gap_max_s"] = gap_monitor.max_gap()
        result.extras["gap_p95_s"] = gap_monitor.percentile_gap(0.95)
    return result
