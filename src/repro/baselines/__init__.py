"""Baseline sleep-scheduling protocols the paper positions PEAS against.

* :class:`~repro.baselines.always_on.AlwaysOnProtocol` — no conservation;
* :class:`~repro.baselines.duty_cycle.DutyCycleProtocol` — randomized
  independent sleeping (statistical redundancy only);
* :class:`~repro.baselines.gaf.GafLikeProtocol` — GAF-style grid leader
  election driven by predicted leader lifetime;
* :class:`~repro.baselines.synchronized.SynchronizedSleepProtocol` — the
  Figure 4/5 synchronized-wakeup strawman;
* :class:`~repro.baselines.gaps.CellGapMonitor` — per-neighborhood
  replacement-gap statistics (the Fig 4/5 metric);
* :func:`~repro.baselines.runner.run_baseline` — run any baseline under the
  identical scenario/metric machinery as PEAS.
"""

from .afeca import AfecaLikeProtocol
from .always_on import AlwaysOnProtocol
from .base import BaselineNetwork, BaselineNode
from .duty_cycle import DutyCycleProtocol
from .gaf import GafLikeProtocol
from .gaps import CellGapMonitor
from .runner import BASELINE_FACTORIES, run_baseline
from .span import SpanLikeProtocol
from .synchronized import SynchronizedSleepProtocol

__all__ = [
    "BaselineNetwork",
    "BaselineNode",
    "AlwaysOnProtocol",
    "DutyCycleProtocol",
    "GafLikeProtocol",
    "SpanLikeProtocol",
    "AfecaLikeProtocol",
    "SynchronizedSleepProtocol",
    "CellGapMonitor",
    "run_baseline",
    "BASELINE_FACTORIES",
]
