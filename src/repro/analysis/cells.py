"""Empirical study of Lemma 3.1 (empty-cell condition).

Lemma 3.1 (after Blough & Santi's Theorem 2): place n nodes uniformly in
R = [0, l]^2 divided into c x c cells with ``c^2 n = k l^2 ln l``.  If
``k > d = 2`` then the expected number of empty cells tends to 0 as l grows;
below the threshold empty cells persist.

These experiments measure E[#empty cells] directly for growing l at various
k, giving the density condition under which PEAS's connectivity results
apply.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

__all__ = ["empty_cell_count", "nodes_for_condition", "empty_cells_vs_side"]


def empty_cell_count(
    side: float, num_nodes: int, cell: float, rng: random.Random
) -> int:
    """Empty cells after dropping ``num_nodes`` uniform nodes on [0, side]^2
    with cell edge ``cell``."""
    if side <= 0 or cell <= 0:
        raise ValueError("side and cell must be positive")
    cells_per_axis = max(1, int(math.ceil(side / cell)))
    occupied = set()
    for _ in range(num_nodes):
        x = rng.uniform(0.0, side)
        y = rng.uniform(0.0, side)
        occupied.add(
            (min(int(x / cell), cells_per_axis - 1), min(int(y / cell), cells_per_axis - 1))
        )
    return cells_per_axis * cells_per_axis - len(occupied)


def nodes_for_condition(side: float, cell: float, k: float) -> int:
    """n satisfying Lemma 3.1's density condition ``c^2 n = k l^2 ln l``."""
    if side <= 1.0:
        raise ValueError("side must exceed 1 (ln l must be positive)")
    return int(math.ceil(k * side * side * math.log(side) / (cell * cell)))


def empty_cells_vs_side(
    sides: Sequence[float],
    cell: float,
    k: float,
    trials: int,
    rng: random.Random,
) -> List[Tuple[float, float]]:
    """Mean empty-cell count for growing field side under the k-condition.

    With k > 2 the series should fall toward 0; with k < 2 it grows —
    exactly the dichotomy Lemma 3.1 (via Blough's theorem) states.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rows: List[Tuple[float, float]] = []
    for side in sides:
        num_nodes = nodes_for_condition(side, cell, k)
        total = sum(
            empty_cell_count(side, num_nodes, cell, rng) for _ in range(trials)
        )
        rows.append((side, total / trials))
    return rows
