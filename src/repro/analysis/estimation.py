"""Measurement-accuracy study for the §2.2.1 k-interval estimator.

§2.2.1 argues: "Because the intervals are i.i.d. random variables, we apply
the central limit theorem to estimate how large k should be ... It turns
out that when k >= 16, with over 99% confidence the measured average has
only 1% error compared with the real value.  We select k = 32."

The module provides both the exact analysis and Monte-Carlo measurement of
the k-interval estimator's relative error, so the claim can be checked
quantitatively (spoiler, recorded in EXPERIMENTS.md: the mean of k
exponential intervals has relative standard deviation 1/sqrt(k) — 25 % at
k = 16 — so the "1 % error at 99 % confidence" reading of the claim is off
by orders of magnitude; k = 32 actually buys ~18 % typical error, which the
capped multiplicative feedback tolerates).

It also validates the superposition property Adaptive Sleeping relies on
(eq. 3): merging independent Poisson processes yields a Poisson process
whose rate is the sum of the components'.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

__all__ = [
    "relative_error_quantile",
    "k_for_error",
    "simulate_estimator_errors",
    "merged_interval_samples",
]


def relative_error_quantile(k: int, confidence: float) -> float:
    """CLT bound on the k-interval estimator's relative error.

    The measured mean interval over k i.i.d. Exp(lambda) intervals has
    relative standard deviation ``1/sqrt(k)``; the two-sided ``confidence``
    quantile of the relative error is ``z * / sqrt(k)`` with ``z`` the
    standard-normal quantile.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    return _normal_quantile(0.5 + confidence / 2.0) / math.sqrt(k)


def k_for_error(max_relative_error: float, confidence: float) -> int:
    """Smallest k for which the CLT error bound meets the target.

    For the paper's stated target (1 % error, 99 % confidence) this returns
    ~66,000 — not 16 — quantifying the §2.2.1 discrepancy.
    """
    if max_relative_error <= 0:
        raise ValueError("max_relative_error must be positive")
    z = _normal_quantile(0.5 + confidence / 2.0)
    return int(math.ceil((z / max_relative_error) ** 2))


def simulate_estimator_errors(
    k: int, rate: float, trials: int, rng: random.Random
) -> List[float]:
    """Monte-Carlo relative errors of lambda-hat = k / T_k.

    Draws k Exp(rate) intervals per trial and returns
    ``(lambda-hat - rate) / rate`` for each.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if trials <= 0:
        raise ValueError("trials must be positive")
    errors: List[float] = []
    for _ in range(trials):
        total = sum(rng.expovariate(rate) for _ in range(k))
        estimate = k / total
        errors.append((estimate - rate) / rate)
    return errors


def merged_interval_samples(
    rates: Sequence[float], samples: int, rng: random.Random
) -> Tuple[float, List[float]]:
    """Inter-arrival samples of the superposition of Poisson processes.

    Simulates independent Poisson processes with the given rates, merges
    their event streams and returns ``(sum_of_rates, merged_intervals)``.
    Equation 3 predicts the merged intervals are Exp(sum of rates); tests
    and the adaptive-sleeping bench verify mean and variance accordingly.
    """
    if not rates or any(r <= 0 for r in rates):
        raise ValueError("rates must be non-empty and positive")
    if samples <= 0:
        raise ValueError("samples must be positive")
    total_rate = float(sum(rates))
    # Generate enough events per component to cover the sample horizon.
    horizon = (samples + 10) / total_rate * 1.5
    events: List[float] = []
    for rate in rates:
        t = 0.0
        while t < horizon:
            t += rng.expovariate(rate)
            if t < horizon:
                events.append(t)
    events.sort()
    intervals = [b - a for a, b in zip(events, events[1:])]
    return total_rate, intervals[:samples]


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )
