"""Analytical validations: §3 connectivity and §2.2.1 estimator accuracy."""

from .cells import empty_cell_count, empty_cells_vs_side, nodes_for_condition
from .connectivity import (
    connectivity_probability,
    connectivity_vs_range_factor,
    is_connected,
    neighbor_distance_bound_fraction,
    working_graph,
)
from .estimation import (
    k_for_error,
    merged_interval_samples,
    relative_error_quantile,
    simulate_estimator_errors,
)
from .geometry import (
    THEOREM_RANGE_FACTOR,
    min_neighbor_distances,
    min_pairwise_distance,
    rsa_working_set,
)
from .lifetime_model import (
    LifetimePrediction,
    predict_lifetime,
    rsa_working_count,
)

__all__ = [
    "THEOREM_RANGE_FACTOR",
    "min_pairwise_distance",
    "min_neighbor_distances",
    "rsa_working_set",
    "working_graph",
    "is_connected",
    "connectivity_probability",
    "connectivity_vs_range_factor",
    "neighbor_distance_bound_fraction",
    "empty_cell_count",
    "nodes_for_condition",
    "empty_cells_vs_side",
    "relative_error_quantile",
    "k_for_error",
    "simulate_estimator_errors",
    "merged_interval_samples",
    "LifetimePrediction",
    "predict_lifetime",
    "rsa_working_count",
]
