"""Empirical validation of the §3 connectivity results.

* **Lemma 3.2**: when every R_p-cell holds at least one deployed node,
  every working node asymptotically has a working neighbor within
  ``(1 + sqrt(5)) R_p``.
* **Theorem 3.1**: under the same density condition, the working set is
  asymptotically connected when the transmission range satisfies
  ``R_t >= (1 + sqrt(5)) R_p``.

The checks here run on arbitrary working sets — either produced by the
abstract probing rule (:func:`~repro.analysis.geometry.rsa_working_set`)
or extracted from a live PEAS simulation — and measure the two quantities
the proofs bound: the max nearest-working-neighbor distance and the
connectivity probability as a function of R_t / R_p.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..net import Field, Point, uniform_deployment
from .geometry import THEOREM_RANGE_FACTOR, min_neighbor_distances, rsa_working_set

__all__ = [
    "working_graph",
    "is_connected",
    "connectivity_probability",
    "neighbor_distance_bound_fraction",
    "connectivity_vs_range_factor",
]


def working_graph(points: Sequence[Point], tx_range: float) -> "nx.Graph":
    """Unit-disk communication graph over the working set."""
    if tx_range <= 0:
        raise ValueError("tx_range must be positive")
    graph = nx.Graph()
    graph.add_nodes_from(range(len(points)))
    r_sq = tx_range * tx_range
    for i in range(len(points)):
        xi, yi = points[i]
        for j in range(i + 1, len(points)):
            dx = points[j][0] - xi
            dy = points[j][1] - yi
            if dx * dx + dy * dy <= r_sq:
                graph.add_edge(i, j)
    return graph


def is_connected(points: Sequence[Point], tx_range: float) -> bool:
    """Whether the working set forms one connected component."""
    if len(points) <= 1:
        return True
    return nx.is_connected(working_graph(points, tx_range))


def neighbor_distance_bound_fraction(
    points: Sequence[Point], probe_range: float
) -> float:
    """Fraction of working nodes whose nearest working neighbor is within
    the Lemma 3.2 bound ``(1 + sqrt(5)) R_p`` (1.0 = bound always holds)."""
    distances = min_neighbor_distances(points)
    if not distances:
        return 1.0
    bound = THEOREM_RANGE_FACTOR * probe_range
    return sum(1 for d in distances if d <= bound) / len(distances)


def connectivity_probability(
    field: Field,
    num_nodes: int,
    probe_range: float,
    tx_range: float,
    trials: int,
    rng: random.Random,
) -> float:
    """Monte-Carlo P(connected) of probing-rule working sets.

    Each trial deploys ``num_nodes`` uniform candidates, applies the
    abstract probing rule and checks unit-disk connectivity at ``tx_range``.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    connected = 0
    for _ in range(trials):
        candidates = uniform_deployment(field, num_nodes, rng)
        workers = rsa_working_set(candidates, probe_range, rng)
        if is_connected(workers, tx_range):
            connected += 1
    return connected / trials


def connectivity_vs_range_factor(
    field: Field,
    num_nodes: int,
    probe_range: float,
    factors: Sequence[float],
    trials: int,
    rng: random.Random,
) -> List[Tuple[float, float]]:
    """P(connected) for each R_t = factor * R_p — the Theorem 3.1 sweep.

    The theorem predicts the probability approaches 1 for factors at or
    above ``1 + sqrt(5) ~ 3.236`` (given sufficient deployment density).
    """
    rows: List[Tuple[float, float]] = []
    for factor in factors:
        probability = connectivity_probability(
            field, num_nodes, probe_range, factor * probe_range, trials, rng
        )
        rows.append((factor, probability))
    return rows
