"""Geometric helpers for the §3 "peas model" analysis.

The paper models each working node as a round pea of radius R_p/2: the
probing rule guarantees any two working nodes are at least R_p apart, so
working-node placement is a hard-core (non-overlapping pea) packing.  This
module provides the packing diagnostics the analysis benches assert on and
an abstract random-sequential-adsorption (RSA) simulation of the probing
rule, useful for predicting the steady-state working density without
running the full protocol.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

from ..net import Field, Point, SpatialGrid, distance

__all__ = [
    "min_pairwise_distance",
    "min_neighbor_distances",
    "rsa_working_set",
    "THEOREM_RANGE_FACTOR",
]

#: Theorem 3.1's transmission-range condition: R_t >= (1 + sqrt(5)) R_p.
THEOREM_RANGE_FACTOR = 1.0 + math.sqrt(5.0)


def min_pairwise_distance(points: Sequence[Point]) -> float:
    """Smallest pairwise distance (inf for < 2 points).

    Used to verify the pea-packing property: PEAS working sets should have
    min pairwise distance >= R_p (up to control-plane races; see tests).
    """
    if len(points) < 2:
        return float("inf")
    # Grid-accelerated first pass: compare within neighboring buckets only.
    best = float("inf")
    field_w = max(p[0] for p in points) + 1.0
    field_h = max(p[1] for p in points) + 1.0
    cell = max(min(field_w, field_h) / max(int(math.sqrt(len(points))), 1), 1e-6)
    grid = SpatialGrid(Field(field_w, field_h), cell_size=cell)
    for index, point in enumerate(points):
        grid.insert(index, point)
    for index, point in enumerate(points):
        for other in grid.within(point, 2.0 * cell):
            if other != index:
                best = min(best, distance(point, points[other]))
    if best == float("inf"):
        # Sparse relative to the cell size: fall back to exhaustive search.
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                best = min(best, distance(points[i], points[j]))
    return best


def min_neighbor_distances(points: Sequence[Point]) -> List[float]:
    """For each point, the distance to its nearest other point.

    Lemma 3.2 bounds these: asymptotically every working node has a working
    neighbor within (1 + sqrt(5)) R_p.
    """
    if len(points) < 2:
        return []
    distances: List[float] = []
    for i, point in enumerate(points):
        best = float("inf")
        for j, other in enumerate(points):
            if i != j:
                best = min(best, distance(point, other))
        distances.append(best)
    return distances


def rsa_working_set(
    candidates: Sequence[Point], probe_range: float, rng: random.Random
) -> List[Point]:
    """The probing rule as an abstract random-order packing.

    Visit deployed candidates in random wake order; a candidate becomes a
    worker iff no existing worker is within the probing range.  This is the
    protocol's steady state with an instantaneous, lossless control plane —
    the geometric object §3 reasons about.
    """
    if probe_range <= 0:
        raise ValueError("probe_range must be positive")
    order = list(range(len(candidates)))
    rng.shuffle(order)
    width = max((p[0] for p in candidates), default=1.0) + 1.0
    height = max((p[1] for p in candidates), default=1.0) + 1.0
    grid = SpatialGrid(Field(width, height), cell_size=probe_range)
    workers: List[Point] = []
    for index in order:
        point = candidates[index]
        if not grid.within(point, probe_range):
            grid.insert(index, point)
            workers.append(point)
    return workers
