"""Analytic lifetime model: predicting Figure 9's slope from first
principles.

PEAS's lifetime scaling has a simple energy-budget explanation the paper
appeals to ("the more deployed nodes, the more in the sleeping mode, and
the longer they can keep the sensing coverage", §5.2):

* the probing rule maintains a roughly constant working density — the
  random-sequential-adsorption (RSA) saturation of the R_p exclusion rule,
  ~0.547 / (pi (R_p/2)^2) workers per unit area on dense deployments;
* each worker draws idle power continuously, sleepers draw ~nothing, and
  control overhead is <1%;
* hence the network functions until the deployed energy pool is drained at
  the working set's constant burn rate:

      lifetime ~ (N * E_mean) / (W * P_idle)

  with W the steady working count — i.e. *linear in N*, the Figure 9/10
  shape.  Injected failures destroy the unspent energy of their victims,
  shrinking the pool by roughly half a battery per failed node.

The model here computes that prediction (including the failure correction)
so the experiments can report predicted-vs-measured slopes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..energy import MOTE_PROFILE, PowerProfile
from ..net import Field

__all__ = ["LifetimePrediction", "predict_lifetime", "rsa_working_count"]

#: RSA saturation coverage fraction for identical hard disks (Feder's
#: constant for 2-D random sequential adsorption).
RSA_COVERAGE_FRACTION = 0.547


def rsa_working_count(field: Field, probe_range: float) -> float:
    """Expected steady working-set size on a dense deployment.

    The probing rule packs non-overlapping 'peas' of radius R_p/2 (§3);
    random arrival order saturates at the RSA density.
    """
    if probe_range <= 0:
        raise ValueError("probe_range must be positive")
    disk_area = math.pi * (probe_range / 2.0) ** 2
    return RSA_COVERAGE_FRACTION * field.area / disk_area


@dataclass(frozen=True)
class LifetimePrediction:
    """Energy-budget lifetime prediction for one deployment size."""

    num_nodes: int
    working_count: float
    energy_pool_j: float
    burn_rate_w: float
    lifetime_s: float

    def slope_per_node(self) -> float:
        """Marginal lifetime seconds contributed by one extra node."""
        if self.num_nodes == 0:
            return 0.0
        return self.lifetime_s / self.num_nodes


def predict_lifetime(
    field: Field,
    num_nodes: int,
    probe_range: float = 3.0,
    profile: PowerProfile = MOTE_PROFILE,
    failure_rate_hz: float = 0.0,
    overhead_fraction: float = 0.005,
) -> LifetimePrediction:
    """Predict the functioning time of a PEAS deployment.

    Solves the self-consistent budget: with failures killing random nodes
    at ``failure_rate_hz``, a victim takes its *remaining* energy with it —
    on average half a battery over the network's life — so

        lifetime = (N Ē - failures(lifetime) * Ē/2) / (W P_idle (1 + ovh))
        failures(lifetime) = failure_rate * lifetime   (capped at N)

    which is linear and solved in closed form.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if not 0.0 <= overhead_fraction < 1.0:
        raise ValueError("overhead_fraction must be in [0, 1)")
    if failure_rate_hz < 0:
        raise ValueError("failure_rate_hz must be nonnegative")

    mean_energy = 0.5 * (
        profile.initial_energy_min_j + profile.initial_energy_max_j
    )
    # The working set cannot exceed the population itself (sparse regime).
    working = min(rsa_working_count(field, probe_range), float(num_nodes))
    burn = working * profile.idle_w * (1.0 + overhead_fraction)

    pool = num_nodes * mean_energy
    # lifetime * burn = pool - failure_rate * lifetime * mean_energy / 2
    denominator = burn + failure_rate_hz * mean_energy / 2.0
    lifetime = pool / denominator
    # Cap the failure loss at the whole population (everything failed).
    max_failures = num_nodes
    if failure_rate_hz * lifetime > max_failures:
        lifetime = (pool - max_failures * mean_energy / 2.0) / burn

    return LifetimePrediction(
        num_nodes=num_nodes,
        working_count=working,
        energy_pool_j=pool,
        burn_rate_w=burn,
        lifetime_s=lifetime,
    )
