"""Network-wide energy accounting for the Table 1 overhead analysis.

The paper reports (Table 1) the *energy overhead* of PEAS — all energy spent
on PROBE/REPLY transmission and reception plus the idle listening a probing
node performs while waiting for REPLYs — and its ratio to total consumption.
This module aggregates per-node batteries into those two numbers.

Overhead categories (charged by the PEAS node implementation):

* ``probe_tx`` / ``probe_rx`` — PROBE frames on the air;
* ``reply_tx`` / ``reply_rx`` — REPLY frames on the air;
* ``probe_idle`` — the prober's listening window (paper: 100 ms/wakeup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from .battery import NodeBattery

__all__ = [
    "OVERHEAD_CATEGORIES",
    "EnergyReport",
    "frame_category",
    "summarize_energy",
]

OVERHEAD_CATEGORIES: Tuple[str, ...] = (
    "probe_tx",
    "probe_rx",
    "reply_tx",
    "reply_rx",
    "probe_idle",
)

#: frame kinds with dedicated accounting categories; anything else (GRAB
#: reports, baseline beacons) is data-plane traffic.
_CONTROL_KINDS = {"PROBE": "probe", "REPLY": "reply"}

#: (kind, direction) -> category string, memoized — this sits on the
#: per-frame energy hook, so the f-string is built once per distinct pair,
#: not once per frame.
_CATEGORY_CACHE: Dict[Tuple[str, str], str] = {}


def frame_category(kind: str, direction: str) -> str:
    """Accounting category for a frame of ``kind`` seen in ``direction``.

    The single source of the ``probe_tx`` / ``reply_rx`` / ``data_tx``...
    naming used by battery attribution, Table 1 aggregation and the trace
    pipeline's ``energy`` events.
    """
    key = (kind, direction)
    category = _CATEGORY_CACHE.get(key)
    if category is None:
        category = _CATEGORY_CACHE[key] = (
            f"{_CONTROL_KINDS.get(kind, 'data')}_{direction}"
        )
    return category


@dataclass
class EnergyReport:
    """Aggregated energy figures for one simulation run."""

    total_consumed_j: float
    overhead_j: float
    by_category: Dict[str, float] = field(default_factory=dict)

    @property
    def overhead_ratio(self) -> float:
        """Overhead / total consumption; the paper's Table 1 right column."""
        if self.total_consumed_j <= 0:
            return 0.0
        return self.overhead_j / self.total_consumed_j

    def format_row(self, label: str) -> str:
        return (
            f"{label:>12}  overhead={self.overhead_j:8.2f}J  "
            f"ratio={self.overhead_ratio * 100:6.3f}%"
        )


def summarize_energy(
    batteries: Iterable[NodeBattery],
    now: float,
    overhead_categories: Tuple[str, ...] = OVERHEAD_CATEGORIES,
) -> EnergyReport:
    """Fold per-node batteries into a network :class:`EnergyReport`."""
    total = 0.0
    by_category: Dict[str, float] = {}
    for battery in batteries:
        total += battery.consumed(now)
        for category, joules in battery.by_category.items():
            by_category[category] = by_category.get(category, 0.0) + joules
    overhead = sum(by_category.get(c, 0.0) for c in overhead_categories)
    return EnergyReport(
        total_consumed_j=total, overhead_j=overhead, by_category=by_category
    )
