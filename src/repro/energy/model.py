"""Power model constants and radio operation modes.

§5.1 of the paper: "The node power consumptions in transmission, reception,
idle and sleep modes are 60mW, 12mW, 12mW and 0.03mW, respectively.  The
initial energy of a node is randomly chosen from the range of 54~60 Joules
... allowing the node to operate about 4500~5000 seconds in reception/idle
modes."

Accounting convention (matching the paper's own overhead arithmetic in
§5.2): a node continuously draws its *mode* power (idle while working or
probing, sleep power while sleeping), and every frame additionally charges
``tx_power x airtime`` at the sender and ``rx_power x airtime`` at each
receiver.  The paper's 0.00316 J-per-wakeup figure is exactly this sum for
3 PROBE transmissions + a 100 ms idle listen + REPLY reception.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

__all__ = ["PowerProfile", "RadioMode", "MOTE_PROFILE", "draw_initial_energy"]


class RadioMode(enum.Enum):
    """Continuous power-draw states of a node's radio/CPU."""

    SLEEP = "sleep"
    IDLE = "idle"  # listening: working or probing nodes
    OFF = "off"    # dead: no draw


@dataclass(frozen=True)
class PowerProfile:
    """Per-mode power draw in watts plus battery provisioning bounds."""

    tx_w: float = 0.060
    rx_w: float = 0.012
    idle_w: float = 0.012
    sleep_w: float = 0.00003
    initial_energy_min_j: float = 54.0
    initial_energy_max_j: float = 60.0

    def __post_init__(self) -> None:
        for name in ("tx_w", "rx_w", "idle_w", "sleep_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be nonnegative")
        if not 0 < self.initial_energy_min_j <= self.initial_energy_max_j:
            raise ValueError("invalid initial energy range")

    def mode_power(self, mode: RadioMode) -> float:
        """Continuous draw (watts) for a radio mode."""
        if mode is RadioMode.SLEEP:
            return self.sleep_w
        if mode is RadioMode.IDLE:
            return self.idle_w
        return 0.0

    def frame_energy(self, direction: str, airtime: float) -> float:
        """Energy of one frame tx ('tx') or rx ('rx') of the given airtime."""
        if airtime < 0:
            raise ValueError("airtime must be nonnegative")
        if direction == "tx":
            return self.tx_w * airtime
        if direction == "rx":
            return self.rx_w * airtime
        raise ValueError(f"unknown direction {direction!r}")

    def idle_lifetime_s(self, energy_j: float) -> float:
        """Seconds a battery lasts at continuous idle draw (§5.1: ~4500-5000)."""
        return energy_j / self.idle_w


#: The paper's Berkeley-Motes-like profile (§5.1).
MOTE_PROFILE = PowerProfile()


def draw_initial_energy(profile: PowerProfile, rng: random.Random) -> float:
    """Sample a node's initial battery uniformly from the profile's range,
    simulating the paper's "variance of battery lifetime"."""
    return rng.uniform(profile.initial_energy_min_j, profile.initial_energy_max_j)
