"""Per-node battery: mode integration, frame charges, depletion prediction.

A :class:`NodeBattery` integrates the continuous mode draw lazily (on every
interaction) and supports exact depletion-time prediction so the owning node
can schedule its own death event — the mechanism that produces the paper's
4500~5000 s idle lifetimes and the staggered first-generation die-off.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .model import PowerProfile, RadioMode

__all__ = ["NodeBattery"]


class NodeBattery:
    """Energy store of one node.

    Parameters
    ----------
    profile:
        The power model.
    initial_j:
        Starting charge in joules.
    start_time:
        Simulation time at which accounting begins.
    """

    def __init__(self, profile: PowerProfile, initial_j: float, start_time: float = 0.0):
        if initial_j <= 0:
            raise ValueError("initial energy must be positive")
        self.profile = profile
        self.initial_j = float(initial_j)
        self._remaining = float(initial_j)
        self._mode = RadioMode.SLEEP
        self._last_update = float(start_time)
        #: continuous draw of the current mode, cached so the per-event
        #: integration fast path skips the profile's mode dispatch
        self._power_w = profile.mode_power(RadioMode.SLEEP)
        #: per-(direction, airtime) frame energies; airtimes are quantized
        #: (one per packet size) so this holds a handful of entries
        self._frame_j: Dict[tuple, float] = {}
        #: accumulated joules by accounting category (e.g. "probe_tx")
        self.by_category: Dict[str, float] = {}

    # ----------------------------------------------------------- inspection
    @property
    def mode(self) -> RadioMode:
        return self._mode

    def remaining(self, now: float) -> float:
        """Joules left at time ``now`` (>= last interaction), floored at 0."""
        self._integrate(now)
        return self._remaining

    def consumed(self, now: float) -> float:
        return self.initial_j - self.remaining(now)

    def depleted(self, now: float) -> bool:
        return self.remaining(now) <= 0.0

    @property
    def power_w(self) -> float:
        """Continuous draw of the current mode in watts."""
        return self._power_w

    def time_to_depletion(self, now: float) -> Optional[float]:
        """Seconds from ``now`` until the battery empties at the current
        mode draw, or ``None`` if the draw is zero (OFF mode)."""
        remaining = self.remaining(now)
        power = self._power_w
        if power <= 0:
            return None
        return remaining / power

    # ------------------------------------------------------------- mutation
    def set_mode(self, now: float, mode: RadioMode) -> None:
        """Switch the continuous draw; past consumption is settled first."""
        self._integrate(now)
        self._mode = mode
        self._power_w = self.profile.mode_power(mode)

    def charge_frame(self, now: float, direction: str, airtime: float, category: str) -> float:
        """Charge one frame's tx/rx energy and attribute it to ``category``.

        Returns the remaining charge so callers can react to depletion
        without a second integration pass.
        """
        self._integrate(now)
        key = (direction, airtime)
        joules = self._frame_j.get(key)
        if joules is None:
            joules = self._frame_j[key] = self.profile.frame_energy(direction, airtime)
        remaining = self._remaining - joules
        if remaining < 0.0:
            remaining = 0.0
        self._remaining = remaining
        self.by_category[category] = self.by_category.get(category, 0.0) + joules
        return remaining

    def attribute(self, category: str, joules: float) -> None:
        """Attribute already-consumed energy to an accounting category
        without charging it again (used for the probing idle window, whose
        draw the continuous IDLE integration has already taken)."""
        if joules < 0:
            raise ValueError("attributed energy must be nonnegative")
        self.by_category[category] = self.by_category.get(category, 0.0) + joules

    def charge(self, now: float, joules: float, category: str) -> None:
        """Charge an arbitrary extra cost (used by baseline protocols)."""
        if joules < 0:
            raise ValueError("charge must be nonnegative")
        self._integrate(now)
        self._remaining = max(0.0, self._remaining - joules)
        self.by_category[category] = self.by_category.get(category, 0.0) + joules

    # ------------------------------------------------------------- snapshot
    def state_dict(self) -> Dict[str, Any]:
        """Serializable battery state.

        ``by_category`` is saved as ordered pairs because its insertion
        order is run-history and flows into ``energy_report`` output; the
        ``_frame_j`` memo is derived (recomputed on demand) and omitted.
        """
        return {
            "remaining": self._remaining,
            "mode": self._mode.value,
            "last_update": self._last_update,
            "by_category": [[k, v] for k, v in self.by_category.items()],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore state saved by :meth:`state_dict` (profile and
        ``initial_j`` come from reconstruction, not the snapshot)."""
        self._remaining = float(state["remaining"])
        self._mode = RadioMode(state["mode"])
        self._power_w = self.profile.mode_power(self._mode)
        self._last_update = float(state["last_update"])
        self.by_category = {k: float(v) for k, v in state["by_category"]}

    # ----------------------------------------------------------- invariants
    def assert_invariants(self, now: float) -> None:
        """Sanitizer entry point: raise if the battery state is corrupt.

        Read-only — does **not** integrate pending draw, so a sanitized run
        consumes exactly the same energy trajectory as an unsanitized one.
        """
        from ..sim.sanitizer import InvariantViolation

        if self._remaining < -1e-9:
            raise InvariantViolation(
                f"battery energy went negative: {self._remaining!r} J "
                f"(initial {self.initial_j} J)"
            )
        if self._remaining > self.initial_j + 1e-9:
            raise InvariantViolation(
                f"battery energy exceeds its initial charge: "
                f"{self._remaining!r} J > {self.initial_j} J"
            )
        if self._last_update > now + 1e-9:
            raise InvariantViolation(
                f"battery clock ran ahead of the simulation: last update at "
                f"t={self._last_update!r} but now={now!r}"
            )
        for category, joules in self.by_category.items():
            if joules < 0:
                raise InvariantViolation(
                    f"energy category {category!r} accumulated a negative "
                    f"total ({joules!r} J)"
                )

    # ------------------------------------------------------------ internals
    def _integrate(self, now: float) -> None:
        if now < self._last_update:
            raise ValueError(
                f"battery time went backwards: {now} < {self._last_update}"
            )
        power = self._power_w
        if power > 0:
            remaining = self._remaining - power * (now - self._last_update)
            self._remaining = remaining if remaining > 0.0 else 0.0
        self._last_update = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NodeBattery {self._remaining:.3f}/{self.initial_j:.3f}J "
            f"mode={self._mode.value}>"
        )
