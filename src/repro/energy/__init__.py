"""Energy substrate: power model, per-node batteries, overhead accounting."""

from .accounting import OVERHEAD_CATEGORIES, EnergyReport, frame_category, summarize_energy
from .battery import NodeBattery
from .model import MOTE_PROFILE, PowerProfile, RadioMode, draw_initial_energy

__all__ = [
    "PowerProfile",
    "RadioMode",
    "MOTE_PROFILE",
    "draw_initial_energy",
    "NodeBattery",
    "EnergyReport",
    "OVERHEAD_CATEGORIES",
    "frame_category",
    "summarize_energy",
]
