"""Handler-descriptor registry: the bridge between events and snapshots.

The engine's heap holds arbitrary Python callables, which cannot be
serialized.  Components therefore schedule snapshot-surviving events with a
*handler descriptor* — ``(kind, args)`` where ``kind`` names an entry in
this registry and ``args`` is a tuple of plain JSON data (ints, floats,
strings, lists) — alongside the callable itself.  Running a simulation
never touches the registry; it only matters at the snapshot boundary:

* ``state_dict`` serializes each live event's descriptor (and refuses
  events that lack one, listing their labels, so an unserializable queue
  fails loudly rather than restoring half a simulation);
* ``load_state`` looks each descriptor's ``kind`` up here and calls the
  registered *resolver* ``resolve(ctx, event)``, which rebinds the event to
  the right bound method of the restored object graph (and re-adopts it
  into its owning :class:`~repro.sim.process.Timer` /
  :class:`~repro.sim.process.PeriodicProcess`).

Resolvers are registered by the component modules that own the schedule
sites (``core/node.py``, ``net/channel.py``, ``faults/engine.py``, ...), so
the catalogue of kinds lives next to the code it describes.

:class:`RestoreContext` is the name → live-object directory a restore
builds after reconstructing the object graph; resolvers fetch their
components from it by well-known names ("network", "channel", "faults",
...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator
    from .events import Event

__all__ = [
    "SnapshotError",
    "HANDLER_KINDS",
    "register_handler",
    "handler_registered",
    "RestoreContext",
]


class SnapshotError(RuntimeError):
    """Raised when simulation state cannot be serialized or restored —
    an event without a handler descriptor, an unknown handler kind, a
    provenance mismatch, or a component missing from the restore context."""


#: kind -> resolver; a resolver rebinds ``event.fn`` / ``event.args`` from
#: the descriptor args and the restored object graph, and re-adopts the
#: event into any owning Timer/PeriodicProcess.
Resolver = Callable[["RestoreContext", "Event"], None]

HANDLER_KINDS: Dict[str, Resolver] = {}


def register_handler(kind: str) -> Callable[[Resolver], Resolver]:
    """Decorator registering ``kind``'s resolver (one per kind, checked)."""

    def decorate(resolver: Resolver) -> Resolver:
        if kind in HANDLER_KINDS:
            raise ValueError(f"handler kind {kind!r} is already registered")
        HANDLER_KINDS[kind] = resolver
        return resolver

    return decorate


def handler_registered(kind: str) -> bool:
    """Whether ``kind`` has a resolver (used by tests and validation)."""
    return kind in HANDLER_KINDS


class RestoreContext:
    """Directory of restored live objects, keyed by well-known names.

    A restore builds the object graph by re-running harness construction
    (construction-time RNG draws replay deterministically), registers the
    components resolvers need (``provide``), then resolves the serialized
    event queue against it.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._components: Dict[str, Any] = {}

    def provide(self, name: str, component: Any) -> None:
        self._components[name] = component

    def component(self, name: str) -> Any:
        try:
            return self._components[name]
        except KeyError:
            raise SnapshotError(
                f"restore context has no component {name!r}; the snapshot "
                "references a subsystem the reconstructed run did not build "
                f"(available: {sorted(self._components)})"
            ) from None

    def component_or_none(self, name: str) -> Optional[Any]:
        return self._components.get(name)

    def resolve(self, event: "Event") -> None:
        """Rebind ``event`` from its descriptor via the registry."""
        if event.handler is None:
            raise SnapshotError(
                f"event {event.label or '?'} (t={event.time}) has no handler "
                "descriptor and cannot be restored"
            )
        kind = event.handler[0]
        resolver = HANDLER_KINDS.get(kind)
        if resolver is None:
            raise SnapshotError(
                f"unknown handler kind {kind!r}; registered kinds: "
                f"{sorted(HANDLER_KINDS)}"
            )
        resolver(self, event)
