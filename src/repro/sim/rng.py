"""Deterministic named random-number streams.

Every stochastic component of the reproduction (sleeping durations, REPLY
backoffs, packet loss, deployment positions, failure times, ...) draws from
its own named stream derived from a single master seed.  This gives:

* **reproducibility** — one integer reproduces an entire run;
* **variance isolation** — changing, say, the failure process does not perturb
  the deployment positions, which keeps parameter sweeps comparable (the
  common random numbers technique).

Streams are ``random.Random`` instances seeded by a stable 64-bit hash of
``(master_seed, name)`` computed with BLAKE2b, so stream derivation does not
depend on Python's randomized ``hash()``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Iterator, List

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``(master_seed, name)``."""
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """A factory of named, independently seeded ``random.Random`` streams.

    Example
    -------
    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("deployment")
    >>> b = rngs.stream("deployment")
    >>> a is b
    True
    >>> RngRegistry(seed=42).stream("deployment").random() == a.random()
    False  # a already consumed one draw; fresh registries replay identically
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngRegistry":
        """Create a sub-registry whose master seed is derived from ``name``.

        Used to give each node its own family of streams without every
        caller having to agree on globally unique stream names.
        """
        return RngRegistry(derive_seed(self.seed, name))

    def exponential(self, name: str, rate: float) -> float:
        """Draw from Exp(rate) on stream ``name``; rate must be positive."""
        if rate <= 0:
            raise ValueError(f"exponential rate must be positive, got {rate}")
        return self.stream(name).expovariate(rate)

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw Uniform(low, high) on stream ``name``."""
        return self.stream(name).uniform(low, high)

    def names(self) -> Iterator[str]:
        """Names of streams created so far (diagnostic)."""
        return iter(sorted(self._streams))

    # ------------------------------------------------------------- snapshot
    def state_dict(self) -> Dict[str, Any]:
        """Serializable per-stream generator state.

        ``random.Random.getstate()`` is ``(version, (625 ints), gauss_next)``
        — plain integers and an optional float, so the Mersenne Twister
        state round-trips through JSON exactly.
        """
        streams: Dict[str, List[Any]] = {}
        for name in sorted(self._streams):
            version, internal, gauss_next = self._streams[name].getstate()
            streams[name] = [version, list(internal), gauss_next]
        return {"seed": self.seed, "streams": streams}

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore stream states saved by :meth:`state_dict`.

        Streams absent from ``state`` are left untouched (still lazily
        created from their derived seeds) — warm-start forks rely on this:
        a variant's new fault streams start fresh while every burn-in
        stream resumes mid-sequence.
        """
        if int(state["seed"]) != self.seed:
            raise ValueError(
                f"RNG state was captured under master seed {state['seed']}, "
                f"cannot load into a registry seeded {self.seed}"
            )
        for name, (version, internal, gauss_next) in state["streams"].items():
            self.stream(name).setstate((version, tuple(internal), gauss_next))
