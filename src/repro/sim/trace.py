"""Lightweight tracing and statistics collection for simulation runs.

Three collectors cover everything the experiments need:

* :class:`CounterSet` — named monotonically increasing counters
  (wakeups, probes sent, replies heard, collisions, reports delivered...).
* :class:`TimeWeightedValue` — integrates a piecewise-constant signal over
  simulation time (e.g. number of working nodes) so its time-average can be
  reported.
* :class:`SeriesRecorder` — (time, value) samples for plotting/asserting on
  trajectories such as K-coverage over time or measured λ̂.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

__all__ = ["CounterSet", "TimeWeightedValue", "SeriesRecorder", "TraceLog"]


class CounterSet:
    """A bag of named integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def state_dict(self) -> Dict[str, int]:
        """Serializable counter state (insertion order preserved)."""
        return dict(self._counts)

    def load_state(self, state: Dict[str, int]) -> None:
        """Replace all counters with ``state`` (order-preserving, so the
        restored ``as_dict`` output is byte-identical)."""
        self._counts.clear()
        for name, count in state.items():
            self._counts[name] = int(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterSet({dict(self._counts)!r})"


class TimeWeightedValue:
    """Time-integral of a piecewise-constant signal.

    >>> twv = TimeWeightedValue(initial=0.0, start_time=0.0)
    >>> twv.update(10.0, 5.0)   # value becomes 5 at t=10
    >>> twv.mean(20.0)          # 0 for 10s, 5 for 10s
    2.5
    """

    def __init__(self, initial: float = 0.0, start_time: float = 0.0) -> None:
        self._value = float(initial)
        self._start_time = float(start_time)
        self._last_time = float(start_time)
        self._integral = 0.0

    @property
    def value(self) -> float:
        return self._value

    def update(self, now: float, new_value: float) -> None:
        if now < self._last_time:
            raise ValueError("time must not go backwards")
        self._integral += self._value * (now - self._last_time)
        self._last_time = now
        self._value = float(new_value)

    def add(self, now: float, delta: float) -> None:
        self.update(now, self._value + delta)

    def integral(self, now: float) -> float:
        return self._integral + self._value * (now - self._last_time)

    def mean(self, now: float) -> float:
        """Time-average of the signal over ``[start_time, now]``.

        Zero-span edge case: at ``now == start_time`` no time has been
        integrated, so the 0/0 "average" is *defined* as the current value
        — the only value the signal has ever held.  Asking for the mean of
        a window that ends before it starts (``now < start_time``) is a
        caller bug and raises, mirroring :meth:`update`'s backwards-time
        error path.
        """
        span = now - self._start_time
        if span < 0:
            raise ValueError(
                f"mean window ends before it starts (now={now}, "
                f"start_time={self._start_time})"
            )
        if span == 0:
            return self._value
        return self.integral(now) / span


class SeriesRecorder:
    """Records (time, value) samples of named series."""

    def __init__(self) -> None:
        self._series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)

    def record(self, name: str, time: float, value: float) -> None:
        self._series[name].append((time, value))

    def samples(self, name: str) -> List[Tuple[float, float]]:
        return list(self._series.get(name, []))

    def last(self, name: str) -> Optional[Tuple[float, float]]:
        series = self._series.get(name)
        return series[-1] if series else None

    def names(self) -> List[str]:
        return sorted(self._series)

    def state_dict(self) -> Dict[str, List[List[float]]]:
        """Serializable series state (insertion order preserved)."""
        return {
            name: [[t, v] for t, v in samples]
            for name, samples in self._series.items()
        }

    def load_state(self, state: Dict[str, List[List[float]]]) -> None:
        """Replace all series with ``state`` (order-preserving)."""
        self._series.clear()
        for name, samples in state.items():
            self._series[name] = [(float(t), float(v)) for t, v in samples]

    def first_time_below(self, name: str, threshold: float) -> Optional[float]:
        """First sample time at which the series drops below ``threshold``.

        This is exactly how the paper defines *lifetimes*: the time at which
        K-coverage (or data success ratio) first falls under the 90 %
        threshold (§5.1).
        """
        for time, value in self._series.get(name, []):
            if value < threshold:
                return time
        return None


class TraceLog:
    """Optional structured event log, disabled by default for speed.

    .. deprecated::
        Superseded by the typed trace pipeline in :mod:`repro.obs`
        (schema'd events, pluggable sinks, NDJSON output).  This shim is
        kept for existing callers; new instrumentation should emit through
        a :class:`repro.obs.Tracer`.

    Unlike the original implementation, entries refused because
    ``capacity`` was reached are now *counted* in :attr:`dropped` — a full
    log no longer silently pretends to be complete (the ring-buffer sink
    in :mod:`repro.obs.sinks` exposes the same counter).
    """

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        #: entries rejected because the log was at capacity
        self.dropped = 0
        self._entries: List[Tuple[float, str, Tuple[object, ...]]] = []

    def log(self, time: float, kind: str, *details: object) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self.dropped += 1
            return
        self._entries.append((time, kind, details))

    def entries(
        self, kind: Optional[str] = None
    ) -> List[Tuple[float, str, Tuple[object, ...]]]:
        if kind is None:
            return list(self._entries)
        return [e for e in self._entries if e[1] == kind]

    def __len__(self) -> int:
        return len(self._entries)
