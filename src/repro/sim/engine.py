"""The discrete-event simulation engine.

This is the reproduction's substitute for the PARSEC simulation language the
paper used (§5.1).  PARSEC is a C-based parallel simulator; PEAS's evaluation
only needs a deterministic sequential event executor, which this module
provides:

* a binary-heap event queue with deterministic tie-breaking,
* lazy event cancellation,
* simulation-time bookkeeping (``now``),
* run-until-time / run-until-empty / bounded-step execution,
* hook points used by tracing and metrics.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(2.0, fired.append, "b")
>>> _ = sim.schedule(1.0, fired.append, "a")
>>> sim.run()
>>> fired
['a', 'b']
>>> sim.now
2.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from .events import Event, EventQueueEmpty, PRIORITY_DEFAULT

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class Simulator:
    """A sequential discrete-event simulator.

    The simulator owns the virtual clock.  All model components (radio
    channel, PEAS nodes, failure injector, traffic generators) schedule
    events against a single shared instance so that their interleavings are
    globally ordered.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._running = False
        self._stopped = False
        self._executed = 0
        #: Observers called as ``fn(event)`` just before each event fires.
        self.pre_event_hooks: List[Callable[[Event], None]] = []

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Events still queued, including cancelled-but-unreaped ones."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``fn(*args)`` at the absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = Event(time, fn, args, priority=priority, label=label)
        heapq.heappush(self._queue, event)
        return event

    # -------------------------------------------------------------- execution
    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        self._reap_cancelled_head()
        return self._queue[0].time if self._queue else None

    def step(self) -> Event:
        """Fire exactly one event and return it."""
        self._reap_cancelled_head()
        if not self._queue:
            raise EventQueueEmpty("no pending events")
        event = heapq.heappop(self._queue)
        self._now = event.time
        for hook in self.pre_event_hooks:
            hook(event)
        event.fire()
        self._executed += 1
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time; the
            clock is advanced to ``until``.  ``None`` runs until the queue
            drains or :meth:`stop` is called.
        max_events:
            Safety valve: raise :class:`SimulationError` after this many
            events (guards against accidental event storms in tests).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while not self._stopped:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the current :meth:`run` to return after the active event."""
        self._stopped = True

    # -------------------------------------------------------------- internals
    def _reap_cancelled_head(self) -> None:
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.3f} pending={len(self._queue)}>"
