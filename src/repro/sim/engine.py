"""The discrete-event simulation engine.

This is the reproduction's substitute for the PARSEC simulation language the
paper used (§5.1).  PARSEC is a C-based parallel simulator; PEAS's evaluation
only needs a deterministic sequential event executor, which this module
provides:

* a binary-heap event queue with deterministic tie-breaking,
* O(1) event cancellation with amortized queue compaction,
* simulation-time bookkeeping (``now``),
* run-until-time / run-until-empty / bounded-step execution,
* hook points used by tracing and metrics.

Performance model: the heap holds bare ``(time, priority, seq)`` tuples —
compared element-wise in C, never through ``Event.__lt__`` — and a slot
table maps ``seq`` to the live :class:`Event`.  Cancelling removes the slot
immediately (the heap entry becomes a tombstone popped lazily); when
tombstones outnumber live entries the queue is compacted in one pass, so
reaping cost is amortized O(1) per cancellation instead of a rescan per
``peek``.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(2.0, fired.append, "b")
>>> _ = sim.schedule(1.0, fired.append, "a")
>>> sim.run()
>>> fired
['a', 'b']
>>> sim.now
2.0
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .events import Event, EventQueueEmpty, PRIORITY_DEFAULT
from .handlers import RestoreContext, SnapshotError
from .profiling import _GAUGE_PERIOD, EngineProfiler

__all__ = ["Simulator", "SimulationError"]

#: Compaction threshold: never compact below this many tombstones (the
#: rebuild is O(n); tiny queues are cheaper to drain lazily).
_MIN_TOMBSTONES = 64


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


def _unresolved_handler(*_args: Any) -> None:  # pragma: no cover - guard
    raise SnapshotError("restored event fired before its handler resolved")


class Simulator:
    """A sequential discrete-event simulator.

    The simulator owns the virtual clock.  All model components (radio
    channel, PEAS nodes, failure injector, traffic generators) schedule
    events against a single shared instance so that their interleavings are
    globally ordered.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: heap of (time, priority, seq); seq is the key into ``_slots``
        self._queue: List[Tuple[float, int, int]] = []
        #: seq -> live Event; entries vanish on cancellation or execution
        self._slots: Dict[int, Event] = {}
        self._running = False
        self._stopped = False
        self._executed = 0
        #: per-simulator insertion-order counter; restored by snapshots so
        #: post-restore tie-breaks replay identically to the original run
        self._next_seq = 0
        #: Observers called as ``fn(event)`` just before each event fires.
        self.pre_event_hooks: List[Callable[[Event], None]] = []
        #: When set, :meth:`run` dispatches through the instrumented loop
        #: (per-label wall-time + gauges); the fast loops are untouched
        #: while this is ``None``.  Attach via :meth:`profiled`.
        self.profiler: Optional[EngineProfiler] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Events still queued, including cancelled-but-unreaped ones."""
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Events still queued and not cancelled."""
        return len(self._slots)

    @property
    def tombstones(self) -> int:
        """Cancelled-but-unreaped heap entries (observability gauge)."""
        return len(self._queue) - len(self._slots)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        label: Optional[str] = None,
        handler: Optional[Tuple[str, Tuple[Any, ...]]] = None,
    ) -> Event:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now.

        ``handler`` is the optional plain-data descriptor that lets the
        event survive a snapshot (see :mod:`repro.sim.handlers`).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(
            self._now + delay, fn, args,
            priority=priority, label=label, handler=handler, seq=seq,
        )
        event._on_cancel = self._discard
        self._slots[seq] = event
        heapq.heappush(self._queue, (event.time, event.priority, seq))
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
        label: Optional[str] = None,
        handler: Optional[Tuple[str, Tuple[Any, ...]]] = None,
    ) -> Event:
        """Schedule ``fn(*args)`` at the absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(
            time, fn, args,
            priority=priority, label=label, handler=handler, seq=seq,
        )
        event._on_cancel = self._discard
        self._slots[seq] = event
        heapq.heappush(self._queue, (event.time, event.priority, seq))
        return event

    # -------------------------------------------------------------- execution
    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        queue = self._queue
        slots = self._slots
        while queue and queue[0][2] not in slots:
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def step(self) -> Event:
        """Fire exactly one event and return it."""
        queue = self._queue
        slots = self._slots
        event: Optional[Event] = None
        while queue:
            time, _priority, seq = heapq.heappop(queue)
            event = slots.pop(seq, None)
            if event is not None:
                break
        if event is None:
            raise EventQueueEmpty("no pending events")
        self._now = event.time
        if self.pre_event_hooks:
            for hook in self.pre_event_hooks:
                hook(event)
        event.fire()
        self._executed += 1
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time; the
            clock is advanced to ``until``.  ``None`` runs until the queue
            drains or :meth:`stop` is called.
        max_events:
            Safety valve: raise :class:`SimulationError` after this many
            events (guards against accidental event storms in tests).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if self.profiler is not None:
            return self._run_profiled(until, max_events)
        self._running = True
        self._stopped = False
        fired = 0
        # The queue list is mutated in place (never rebound — see _discard),
        # so hoisting these lookups out of the hot loop is safe even across
        # compactions and events that schedule more events.
        queue = self._queue
        slots = self._slots
        heappop = heapq.heappop
        hooks = self.pre_event_hooks
        try:
            if until is None and max_events is None:
                # Run-to-exhaustion fast path: no bound checks per event.
                while not self._stopped:
                    while queue and queue[0][2] not in slots:
                        heappop(queue)
                    if not queue:
                        break
                    event = slots.pop(heappop(queue)[2])
                    self._now = event.time
                    if hooks:
                        for hook in hooks:
                            hook(event)
                    event.fn(*event.args)
                    self._executed += 1
                return
            while not self._stopped:
                while queue and queue[0][2] not in slots:
                    heappop(queue)
                if not queue:
                    break
                if until is not None and queue[0][0] > until:
                    self._now = until
                    break
                event = slots.pop(heappop(queue)[2])
                self._now = event.time
                if hooks:
                    for hook in hooks:
                        hook(event)
                event.fn(*event.args)
                self._executed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_bounded(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Run at most ``max_events`` events (and/or up to ``until``).

        Unlike :meth:`run`, hitting the event budget is a normal return,
        not an error, and the clock is **not** advanced to ``until`` when
        the budget stops execution early — the simulation is left exactly
        between two events, which is what snapshot-at-an-event-index needs.
        Returns the number of events fired.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        queue = self._queue
        slots = self._slots
        heappop = heapq.heappop
        hooks = self.pre_event_hooks
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    return fired
                while queue and queue[0][2] not in slots:
                    heappop(queue)
                if not queue:
                    break
                if until is not None and queue[0][0] > until:
                    self._now = until
                    break
                event = slots.pop(heappop(queue)[2])
                self._now = event.time
                if hooks:
                    for hook in hooks:
                        hook(event)
                event.fn(*event.args)
                self._executed += 1
                fired += 1
            if until is not None and not self._stopped and self._now < until:
                self._now = until
            return fired
        finally:
            self._running = False

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        """The instrumented twin of :meth:`run`: identical semantics, plus
        per-label wall-time accounting and periodic queue gauges."""
        profiler = self.profiler
        assert profiler is not None
        self._running = True
        self._stopped = False
        fired = 0
        queue = self._queue
        slots = self._slots
        heappop = heapq.heappop
        hooks = self.pre_event_hooks
        clock = profiler.clock
        gauge_countdown = 0
        try:
            while not self._stopped:
                while queue and queue[0][2] not in slots:
                    heappop(queue)
                if not queue:
                    break
                if until is not None and queue[0][0] > until:
                    self._now = until
                    break
                event = slots.pop(heappop(queue)[2])
                self._now = event.time
                if hooks:
                    for hook in hooks:
                        hook(event)
                label = event.label
                if label is None:
                    label = getattr(event.fn, "__qualname__", "unlabeled")
                start = clock()
                event.fn(*event.args)
                profiler.record(label, clock() - start)
                self._executed += 1
                fired += 1
                if gauge_countdown <= 0:
                    profiler.sample_gauges(len(queue), len(slots), self._now)
                    gauge_countdown = _GAUGE_PERIOD
                gauge_countdown -= 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            profiler.sample_gauges(len(queue), len(slots), self._now)
            self._running = False

    @contextmanager
    def profiled(
        self, profiler: Optional[EngineProfiler] = None
    ) -> Iterator[EngineProfiler]:
        """Attach a profiler for the duration of a ``with`` block.

        >>> sim = Simulator()
        >>> _ = sim.schedule(1.0, lambda: None, label="tick")
        >>> with sim.profiled() as prof:
        ...     sim.run()
        >>> prof.labels["tick"].count
        1
        """
        active = profiler if profiler is not None else EngineProfiler()
        if self.profiler is not None:
            raise SimulationError("a profiler is already attached")
        self.profiler = active
        try:
            yield active
        finally:
            self.profiler = None

    def stop(self) -> None:
        """Request the current :meth:`run` to return after the active event."""
        self._stopped = True

    # -------------------------------------------------------------- snapshot
    def state_dict(self) -> Dict[str, Any]:
        """Serializable engine state: clock, counters, and the live queue.

        Every live event must carry a handler descriptor; tombstones are
        dropped (reaping them early is a pure performance difference).
        Raises :class:`~repro.sim.handlers.SnapshotError` naming the labels
        of any descriptor-less events, so an unserializable queue fails
        loudly instead of restoring half a simulation.
        """
        events = []
        missing = []
        for entry in sorted(self._queue):
            event = self._slots.get(entry[2])
            if event is None:
                continue  # tombstone
            if event.handler is None:
                missing.append(event.label or repr(event.fn))
                continue
            kind, args = event.handler
            events.append({
                "t": event.time,
                "p": event.priority,
                "seq": event.seq,
                "label": event.label,
                "kind": kind,
                "args": list(args),
            })
        if missing:
            raise SnapshotError(
                "event queue holds events without handler descriptors and "
                f"cannot be serialized: {sorted(set(missing))}; schedule "
                "them with handler=(kind, args) (see repro.sim.handlers)"
            )
        return {
            "now": self._now,
            "executed": self._executed,
            "next_seq": self._next_seq,
            "events": events,
        }

    def load_state(self, state: Dict[str, Any], ctx: RestoreContext) -> None:
        """Restore clock, counters and queue from :meth:`state_dict` output.

        The queue must be empty (restore into a freshly constructed run
        whose initial events were never scheduled).  Each serialized event
        is resolved through the handler registry against ``ctx``, which
        rebinds its callable and re-adopts it into any owning timer or
        periodic process.
        """
        if self._queue or self._slots:
            raise SnapshotError(
                "cannot load engine state into a simulator with pending "
                "events; restore into a freshly constructed (unstarted) run"
            )
        self._now = float(state["now"])
        self._executed = int(state["executed"])
        self._next_seq = int(state["next_seq"])
        entries: List[Tuple[float, int, int]] = []
        for spec in state["events"]:
            event = Event(
                spec["t"],
                _unresolved_handler,
                (),
                priority=spec["p"],
                label=spec["label"],
                handler=(spec["kind"], tuple(spec["args"])),
                seq=spec["seq"],
            )
            ctx.resolve(event)
            event._on_cancel = self._discard
            self._slots[event.seq] = event
            entries.append((event.time, event.priority, event.seq))
        # state_dict wrote events in sorted order, so the entry list is
        # already a valid heap; heapify is a cheap idempotent guard.
        self._queue = entries
        heapq.heapify(self._queue)

    # -------------------------------------------------------------- internals
    def _discard(self, event: Event) -> None:
        """Cancellation hook: free the slot now, compact the heap when the
        tombstone fraction passes one half (amortized O(1) per cancel)."""
        if self._slots.pop(event.seq, None) is None:
            return
        queue = self._queue
        dead = len(queue) - len(self._slots)
        if dead > _MIN_TOMBSTONES and dead * 2 > len(queue):
            slots = self._slots
            # In-place so aliases held by a running event loop stay valid.
            queue[:] = [entry for entry in queue if entry[2] in slots]
            heapq.heapify(queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.3f} pending={len(self._queue)}>"
