"""The RNG-stream catalogue: every named stream the reproduction draws from.

:data:`STREAM_NAMES` is the single source of truth for the
:class:`~repro.sim.rng.RngRegistry` stream vocabulary, mirroring the
``METRIC_NAMES`` design in :mod:`repro.obs.metrics`: a **literal** dict
(keep it statically parseable — the ``W402`` lint rule reads it as AST,
never importing this module) mapping stream names to one-line descriptions
of what draws from them.

Why a catalogue at all: stream names are the seed-derivation keys
(``derive_seed(master, name)``), so a typo'd or drifting name silently
forks the RNG state of whatever component uses it — same master seed,
different draws, no error.  With the catalogue, every
``RngRegistry.stream("...")`` call site anywhere in the tree is
cross-checked statically (``peas-lint`` rule ``W402``) and the registry
self-check test (``tests/unit/test_streams_registry.py``) asserts the
catalogue and the call sites cover each other.

Families: a key ending in ``.*`` declares a dynamically-suffixed family —
``node.*`` covers ``node.0``, ``node.1``, ... — for call sites that build
the name from an f-string with that literal prefix.

Adding a stream: add its name here (alphabetical), then use it.  A name
used but not declared fails lint; a name declared but never used fails the
self-check test.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["STREAM_NAMES", "stream_declared"]

#: name -> what draws from it.  Keys ending in ``.*`` are families.
STREAM_NAMES: Dict[str, str] = {
    "afeca": "AFECA baseline: listen-window delays and adaptive sleeps",
    "analysis.connectivity": "Theorem 3.1 connectivity Monte-Carlo (CLI)",
    "analysis.estimator": "§2.2.1 k-interval estimator accuracy study (CLI)",
    "battery": "per-node initial battery energy draws",
    "channel": "broadcast-channel loss coin flips and RSSI irregularity",
    "deployment": "node placement over the field (all deployment models)",
    "duty": "duty-cycle baseline: initial phase offsets",
    "failures": "ambient §5.3 Poisson crash process (legacy stream name)",
    "faults.*": "per-plan-entry fault model streams (faults.<i>.<kind>)",
    "grab": "GRAB mesh forwarding coin flips",
    "node.*": "per-node protocol streams (probe backoffs, sleeps, phases)",
    "span": "Span baseline: backoff and rotation draws",
    "sweep.retry": "executor retry-backoff jitter (parent process, never in-sim)",
}


def stream_declared(name: str) -> bool:
    """Is ``name`` covered by the catalogue (exact entry or family)?"""
    if name in STREAM_NAMES:
        return True
    for key in STREAM_NAMES:
        if key.endswith(".*") and name.startswith(key[:-1]):
            return True
    return False
