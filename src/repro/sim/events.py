"""Event primitives for the discrete-event simulation kernel.

The kernel (see :mod:`repro.sim.engine`) executes :class:`Event` objects in
nondecreasing timestamp order.  Ties are broken first by an explicit integer
``priority`` (lower runs first) and then by insertion order, which makes every
simulation run fully deterministic for a given seed.

Events support O(1) cancellation: cancelling marks the event dead and the
engine discards it when it is popped from the queue (the standard "lazy
deletion" heap idiom).

Snapshot support: an event may carry a *handler descriptor* — a
``(kind, args)`` pair of plain JSON data naming a registered handler kind
(see :mod:`repro.sim.handlers`).  Descriptors are what lets the engine
serialize its queue: the callable itself is never persisted, only the
descriptor, and restore resolves the descriptor back to a bound callable.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Tuple

__all__ = ["Event", "EventQueueEmpty", "PRIORITY_DEFAULT", "PRIORITY_HIGH", "PRIORITY_LOW"]

#: Priority for events that must run before ordinary events at the same time
#: (e.g. channel bookkeeping that other events observe).
PRIORITY_HIGH = 0
#: Default priority for protocol events.
PRIORITY_DEFAULT = 10
#: Priority for observers (metrics sampling) that should see the post-state
#: of every same-timestamp protocol event.
PRIORITY_LOW = 20

_sequence = itertools.count()


class EventQueueEmpty(Exception):
    """Raised when the engine is asked to step an exhausted event queue."""


class Event:
    """A single scheduled callback.

    Parameters
    ----------
    time:
        Absolute simulation time at which the callback fires.
    fn:
        Callable invoked as ``fn(*args)`` when the event fires.
    args:
        Positional arguments stored with the event.
    priority:
        Tie-break priority among events with equal ``time``; lower fires first.
    label:
        Optional human-readable tag used by tracing.
    handler:
        Optional ``(kind, args)`` descriptor of plain JSON data that names
        a registered handler kind; required for the event to survive a
        snapshot (see :mod:`repro.sim.handlers`).
    seq:
        Explicit insertion-order key; ``None`` (the default) draws from the
        module-global counter.  The engine passes per-simulator sequence
        numbers so a restored queue replays identical tie-breaks.
    """

    __slots__ = (
        "time",
        "fn",
        "args",
        "priority",
        "seq",
        "label",
        "handler",
        "_cancelled",
        "_on_cancel",
    )

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = PRIORITY_DEFAULT,
        label: Optional[str] = None,
        handler: Optional[Tuple[str, Tuple[Any, ...]]] = None,
        seq: Optional[int] = None,
    ) -> None:
        if time != time:  # NaN guard: a NaN timestamp would corrupt heap order.
            raise ValueError("event time must not be NaN")
        self.time = float(time)
        self.fn = fn
        self.args = args
        self.priority = priority
        self.seq = next(_sequence) if seq is None else seq
        self.label = label
        self.handler = handler
        self._cancelled = False
        #: set by the engine when scheduled, so cancellation can be reaped
        #: out of the queue's slot table immediately (amortized compaction).
        self._on_cancel: Optional[Callable[["Event"], None]] = None

    # Heap ordering ---------------------------------------------------------
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    # Lifecycle -------------------------------------------------------------
    def cancel(self) -> None:
        """Mark the event dead; the engine skips it when popped."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._on_cancel is not None:
            self._on_cancel(self)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def fire(self) -> None:
        self.fn(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        name = self.label or getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} p={self.priority} {name} [{state}]>"
