"""Process-style helpers layered on the event engine.

The engine itself is callback-based; these helpers add the two higher-level
idioms the model code uses:

* :class:`Timer` — a restartable one-shot timer (sleep timers, probe-window
  timeouts, REPLY backoffs);
* :class:`PeriodicProcess` — a fixed-interval repeating activity (traffic
  generation, metric sampling);
* :func:`start_process` — generator-based coroutine processes that ``yield``
  delays, for sequential scripts such as scenario warm-ups.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Tuple

from .engine import Simulator
from .events import Event

__all__ = ["Timer", "PeriodicProcess", "start_process"]


class Timer:
    """A restartable one-shot timer bound to a simulator.

    ``start`` (re)arms the timer; starting a running timer cancels the prior
    arming first.  The callback fires at most once per arming.

    ``handler`` is the optional plain-data ``(kind, args)`` descriptor the
    timer attaches to the events it schedules so its arming survives a
    snapshot; the registered resolver re-adopts the restored event via
    :meth:`adopt`.  Descriptor-carrying timers must be armed without extra
    ``start`` arguments (the descriptor's args are fixed at construction).
    """

    def __init__(
        self,
        sim: Simulator,
        fn: Callable[..., Any],
        label: Optional[str] = None,
        handler: Optional[Tuple[str, Tuple[Any, ...]]] = None,
    ) -> None:
        self._sim = sim
        self._fn = fn
        self._label = label
        self._handler = handler
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute fire time if armed, else ``None``."""
        return self._event.time if self.armed else None

    def start(self, delay: float, *args: Any) -> None:
        self.cancel()
        if self._handler is not None and args:
            raise ValueError(
                "a snapshot-serializable Timer must be armed without extra "
                "start() arguments; bake them into the handler descriptor"
            )
        self._event = self._sim.schedule(
            delay, self._fire, *args, label=self._label, handler=self._handler
        )

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def adopt(self, event: Event) -> None:
        """Re-own a restored event: bind its callable and track its arming
        (called by handler resolvers during snapshot restore)."""
        event.fn = self._fire
        event.args = ()
        self._event = event

    def _fire(self, *args: Any) -> None:
        self._event = None
        self._fn(*args)


class PeriodicProcess:
    """Repeats ``fn()`` every ``interval`` seconds until stopped.

    The first invocation happens ``first_delay`` seconds after :meth:`start`
    (defaulting to one full interval).  ``fn`` may call :meth:`stop` to end
    the repetition from within.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[[], Any],
        label: Optional[str] = None,
        handler: Optional[Tuple[str, Tuple[Any, ...]]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self.interval = float(interval)
        self._fn = fn
        self._label = label
        self._handler = handler
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, first_delay: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = self.interval if first_delay is None else first_delay
        self._event = self._sim.schedule(
            delay, self._tick, label=self._label, handler=self._handler
        )

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def adopt(self, event: Event) -> None:
        """Re-own a restored tick event and mark the process running
        (called by handler resolvers during snapshot restore)."""
        event.fn = self._tick
        event.args = ()
        self._event = event
        self._running = True

    def _tick(self) -> None:
        if not self._running:
            return
        self._event = self._sim.schedule(
            self.interval, self._tick, label=self._label, handler=self._handler
        )
        self._fn()


def start_process(
    sim: Simulator,
    generator: Generator[float, None, None],
    label: Optional[str] = None,
) -> None:
    """Run a generator as a coroutine process.

    The generator yields nonnegative delays; the process resumes after each
    delay and ends when the generator returns.

    >>> sim = Simulator()
    >>> log = []
    >>> def script():
    ...     log.append(("start", sim.now))
    ...     yield 5.0
    ...     log.append(("end", sim.now))
    >>> start_process(sim, script())
    >>> sim.run()
    >>> log
    [('start', 0.0), ('end', 5.0)]
    """

    # Generator frames cannot be serialized, so coroutine processes are
    # deliberately outside the snapshot contract (the harness run path never
    # uses them); the lint markers acknowledge the closure captures.
    def advance() -> None:
        try:
            delay = next(generator)
        except StopIteration:
            return
        sim.schedule(delay, advance, label=label)  # peas-lint: snapshot-exempt

    sim.schedule(0.0, advance, label=label)  # peas-lint: snapshot-exempt
