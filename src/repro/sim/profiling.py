"""Engine profiling: per-event-type dispatch counts and wall-time stats.

An :class:`EngineProfiler` attaches to a :class:`~repro.sim.engine.Simulator`
(usually via ``with sim.profiled() as prof:``) and records, per event label:

* dispatch count and total/min/max wall time,
* a log2-bucketed wall-time histogram (microsecond resolution),

plus engine gauges sampled periodically: heap size, live events, tombstone
count.  The instrumented run loop is a *separate* code path — when no
profiler is attached the engine's fast loops are untouched.

Events are keyed by their ``label`` (every scheduling site in the tree
labels its events); unlabeled events fall back to the callback's qualified
name.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["EngineProfiler", "LabelStats"]

#: histogram buckets: [<1us, <2us, <4us, ... <~0.5s, rest]
_HIST_BUCKETS = 30
#: gauge sampling period, in executed events
_GAUGE_PERIOD = 256
#: gauge time-series cap: when reached, every other sample is dropped and
#: the keep-stride doubles, so memory stays bounded while the series keeps
#: covering the whole run at halving resolution
_GAUGE_SERIES_CAP = 2048
#: sparkline cells for the rendered gauge section
_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


class LabelStats:
    """Wall-time accounting for one event label."""

    __slots__ = ("count", "total_s", "min_s", "max_s", "hist")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.hist = [0] * _HIST_BUCKETS

    def record(self, dt: float) -> None:
        self.count += 1
        self.total_s += dt
        if dt < self.min_s:
            self.min_s = dt
        if dt > self.max_s:
            self.max_s = dt
        micros = int(dt * 1e6)
        bucket = micros.bit_length()  # 0us -> 0, 1us -> 1, 2-3us -> 2, ...
        self.hist[bucket if bucket < _HIST_BUCKETS else _HIST_BUCKETS - 1] += 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_ms": round(self.total_s * 1e3, 3),
            "mean_us": round(self.total_s / self.count * 1e6, 2) if self.count else 0.0,
            "min_us": round(self.min_s * 1e6, 2) if self.count else 0.0,
            "max_us": round(self.max_s * 1e6, 2),
            # Trailing empty buckets are elided; bucket i covers
            # [2^(i-1), 2^i) microseconds (bucket 0: sub-microsecond).
            "hist_log2_us": self.hist[: _last_nonzero(self.hist) + 1],
        }


def _last_nonzero(buckets: List[int]) -> int:
    for i in range(len(buckets) - 1, -1, -1):
        if buckets[i]:
            return i
    return 0


class EngineProfiler:
    """Collects per-label dispatch stats and engine gauges for one run."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.labels: Dict[str, LabelStats] = {}
        self.events = 0
        self.wall_s = 0.0
        self.max_heap = 0
        self.max_live = 0
        self.max_tombstones = 0
        #: decimated ``(sim_time, heap_size, live)`` samples across the run
        self.gauge_series: List[Tuple[float, int, int]] = []
        self._gauge_stride = 1
        self._gauge_skip = 0

    # ------------------------------------------------------------ recording
    def record(self, label: str, dt: float) -> None:
        stats = self.labels.get(label)
        if stats is None:
            stats = self.labels[label] = LabelStats()
        stats.record(dt)
        self.events += 1
        self.wall_s += dt

    def sample_gauges(
        self, heap_size: int, live: int, now: Optional[float] = None
    ) -> None:
        """Record queue occupancy; called by the engine every
        ``_GAUGE_PERIOD`` events and at attach/detach.  When the engine
        passes its clock, the sample also extends :attr:`gauge_series`
        (decimated: past ``_GAUGE_SERIES_CAP`` points, every other sample
        is dropped and the keep-stride doubles)."""
        if heap_size > self.max_heap:
            self.max_heap = heap_size
        if live > self.max_live:
            self.max_live = live
        tombstones = heap_size - live
        if tombstones > self.max_tombstones:
            self.max_tombstones = tombstones
        if now is not None:
            if self._gauge_skip > 0:
                self._gauge_skip -= 1
            else:
                series = self.gauge_series
                series.append((now, heap_size, live))
                if len(series) >= _GAUGE_SERIES_CAP:
                    del series[1::2]
                    self._gauge_stride *= 2
                self._gauge_skip = self._gauge_stride - 1

    # ------------------------------------------------------------ reporting
    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible breakdown, labels sorted by total self-time."""
        ordered = sorted(
            self.labels.items(), key=lambda item: -item[1].total_s
        )
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 4),
            "gauges": {
                "max_heap": self.max_heap,
                "max_live": self.max_live,
                "max_tombstones": self.max_tombstones,
                # [sim_time, heap_size, live] triples; JSON has no tuples
                "series": [
                    [round(t, 6), heap, live]
                    for t, heap, live in self.gauge_series
                ],
            },
            "by_label": {label: stats.as_dict() for label, stats in ordered},
        }

    def report(self, limit: Optional[int] = None) -> str:
        """A terminal-friendly self-time breakdown table."""
        return self.render(self.as_dict(), limit=limit)

    @staticmethod
    def _sparkline(values: Sequence[float], width: int = 56) -> str:
        """Resample a series to ``width`` cells (bucket maxima) and render
        each cell as a block character scaled to the series maximum."""
        if not values:
            return ""
        top = max(values)
        if top <= 0:
            return _SPARK_CHARS[0] * min(width, len(values))
        cells = min(width, len(values))
        chars = []
        for cell in range(cells):
            lo = cell * len(values) // cells
            hi = max(lo + 1, (cell + 1) * len(values) // cells)
            peak = max(values[lo:hi])
            index = round(peak / top * (len(_SPARK_CHARS) - 1))
            chars.append(_SPARK_CHARS[index])
        return "".join(chars)

    @staticmethod
    def render_gauges(profile: Dict[str, Any]) -> str:
        """The "gauges" section: queue occupancy over simulated time.

        Three sparklines (heap size, live events, tombstone ratio) over the
        decimated gauge series, or just the high-water summary for profiles
        recorded before the series existed."""
        gauges = profile.get("gauges", {})
        lines = [
            f"gauges: max heap {gauges.get('max_heap', 0)}, "
            f"max live {gauges.get('max_live', 0)}, "
            f"max tombstones {gauges.get('max_tombstones', 0)}",
        ]
        series = gauges.get("series") or []
        if series:
            heaps = [float(s[1]) for s in series]
            lives = [float(s[2]) for s in series]
            ratios = [
                (heap - live) / heap if heap else 0.0
                for heap, live in zip(heaps, lives)
            ]
            span = f"t=[{series[0][0]:.0f}s..{series[-1][0]:.0f}s]"
            spark = EngineProfiler._sparkline
            lines.append(
                f"  heap size  |{spark(heaps)}| peak {int(max(heaps))} {span}"
            )
            lines.append(
                f"  live evts  |{spark(lives)}| peak {int(max(lives))}"
            )
            lines.append(
                f"  tombstone% |{spark(ratios)}| peak {max(ratios) * 100:.0f}%"
            )
        return "\n".join(lines)

    @staticmethod
    def render(profile: Dict[str, Any], limit: Optional[int] = None) -> str:
        """Render an :meth:`as_dict` payload (e.g. ``RunResult.profile``)."""
        wall_ms = profile.get("wall_s", 0.0) * 1e3
        total_ms = wall_ms or 1e-9
        lines = [
            f"engine profile: {profile.get('events', 0)} events, "
            f"{wall_ms:.1f} ms event self-time",
        ]
        lines.extend(
            "  " + line for line in EngineProfiler.render_gauges(profile).splitlines()
        )
        lines.append(
            f"  {'label':<22} {'count':>9} {'total ms':>10} {'mean us':>9} "
            f"{'max us':>9} {'share':>7}"
        )
        by_label = list(profile.get("by_label", {}).items())
        if limit is not None:
            by_label = by_label[:limit]
        for label, stats in by_label:
            lines.append(
                f"  {label:<22} {stats['count']:>9d} {stats['total_ms']:>10.2f} "
                f"{stats['mean_us']:>9.2f} {stats['max_us']:>9.1f} "
                f"{stats['total_ms'] / total_ms * 100:>6.1f}%"
            )
        return "\n".join(lines)
