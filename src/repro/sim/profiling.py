"""Engine profiling: per-event-type dispatch counts and wall-time stats.

An :class:`EngineProfiler` attaches to a :class:`~repro.sim.engine.Simulator`
(usually via ``with sim.profiled() as prof:``) and records, per event label:

* dispatch count and total/min/max wall time,
* a log2-bucketed wall-time histogram (microsecond resolution),

plus engine gauges sampled periodically: heap size, live events, tombstone
count.  The instrumented run loop is a *separate* code path — when no
profiler is attached the engine's fast loops are untouched.

Events are keyed by their ``label`` (every scheduling site in the tree
labels its events); unlabeled events fall back to the callback's qualified
name.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["EngineProfiler", "LabelStats"]

#: histogram buckets: [<1us, <2us, <4us, ... <~0.5s, rest]
_HIST_BUCKETS = 30
#: gauge sampling period, in executed events
_GAUGE_PERIOD = 256


class LabelStats:
    """Wall-time accounting for one event label."""

    __slots__ = ("count", "total_s", "min_s", "max_s", "hist")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.hist = [0] * _HIST_BUCKETS

    def record(self, dt: float) -> None:
        self.count += 1
        self.total_s += dt
        if dt < self.min_s:
            self.min_s = dt
        if dt > self.max_s:
            self.max_s = dt
        micros = int(dt * 1e6)
        bucket = micros.bit_length()  # 0us -> 0, 1us -> 1, 2-3us -> 2, ...
        self.hist[bucket if bucket < _HIST_BUCKETS else _HIST_BUCKETS - 1] += 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_ms": round(self.total_s * 1e3, 3),
            "mean_us": round(self.total_s / self.count * 1e6, 2) if self.count else 0.0,
            "min_us": round(self.min_s * 1e6, 2) if self.count else 0.0,
            "max_us": round(self.max_s * 1e6, 2),
            # Trailing empty buckets are elided; bucket i covers
            # [2^(i-1), 2^i) microseconds (bucket 0: sub-microsecond).
            "hist_log2_us": self.hist[: _last_nonzero(self.hist) + 1],
        }


def _last_nonzero(buckets: List[int]) -> int:
    for i in range(len(buckets) - 1, -1, -1):
        if buckets[i]:
            return i
    return 0


class EngineProfiler:
    """Collects per-label dispatch stats and engine gauges for one run."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.labels: Dict[str, LabelStats] = {}
        self.events = 0
        self.wall_s = 0.0
        self.max_heap = 0
        self.max_live = 0
        self.max_tombstones = 0

    # ------------------------------------------------------------ recording
    def record(self, label: str, dt: float) -> None:
        stats = self.labels.get(label)
        if stats is None:
            stats = self.labels[label] = LabelStats()
        stats.record(dt)
        self.events += 1
        self.wall_s += dt

    def sample_gauges(self, heap_size: int, live: int) -> None:
        """Record queue occupancy; called by the engine every
        ``_GAUGE_PERIOD`` events and at attach/detach."""
        if heap_size > self.max_heap:
            self.max_heap = heap_size
        if live > self.max_live:
            self.max_live = live
        tombstones = heap_size - live
        if tombstones > self.max_tombstones:
            self.max_tombstones = tombstones

    # ------------------------------------------------------------ reporting
    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible breakdown, labels sorted by total self-time."""
        ordered = sorted(
            self.labels.items(), key=lambda item: -item[1].total_s
        )
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 4),
            "gauges": {
                "max_heap": self.max_heap,
                "max_live": self.max_live,
                "max_tombstones": self.max_tombstones,
            },
            "by_label": {label: stats.as_dict() for label, stats in ordered},
        }

    def report(self, limit: Optional[int] = None) -> str:
        """A terminal-friendly self-time breakdown table."""
        return self.render(self.as_dict(), limit=limit)

    @staticmethod
    def render(profile: Dict[str, Any], limit: Optional[int] = None) -> str:
        """Render an :meth:`as_dict` payload (e.g. ``RunResult.profile``)."""
        gauges = profile.get("gauges", {})
        wall_ms = profile.get("wall_s", 0.0) * 1e3
        total_ms = wall_ms or 1e-9
        lines = [
            f"engine profile: {profile.get('events', 0)} events, "
            f"{wall_ms:.1f} ms event self-time",
            f"  gauges: max heap {gauges.get('max_heap', 0)}, "
            f"max live {gauges.get('max_live', 0)}, "
            f"max tombstones {gauges.get('max_tombstones', 0)}",
            f"  {'label':<22} {'count':>9} {'total ms':>10} {'mean us':>9} "
            f"{'max us':>9} {'share':>7}",
        ]
        by_label = list(profile.get("by_label", {}).items())
        if limit is not None:
            by_label = by_label[:limit]
        for label, stats in by_label:
            lines.append(
                f"  {label:<22} {stats['count']:>9d} {stats['total_ms']:>10.2f} "
                f"{stats['mean_us']:>9.2f} {stats['max_us']:>9.1f} "
                f"{stats['total_ms'] / total_ms * 100:>6.1f}%"
            )
        return "\n".join(lines)
