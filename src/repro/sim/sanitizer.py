"""Runtime invariant sanitizer: cheap, toggleable protocol/engine checks.

``SimSanitizer`` is the dynamic counterpart of :mod:`repro.lint`: instead of
reading the source it watches a *running* simulation and raises
:class:`InvariantViolation` the moment reality diverges from the protocol's
contracts:

* **monotonic time** — event timestamps never go backwards;
* **legal transmission** — sleeping/dead nodes never put frames on the air
  (checked by the channel per transmit);
* **energy sanity** — battery charge stays within ``[0, initial]`` and the
  battery's lazy-integration clock never runs ahead of the simulation;
* **estimator well-formedness** — the λ̂ k-interval window keeps
  ``0 <= count < k`` and a window start in the past, and node mode state
  stays coherent (a Working node has a start time and an estimator, a Dead
  node has a cause).

Wiring reuses the engine's existing observer mechanisms — a
``pre_event_hooks`` entry for the per-event checks (the same hook point the
profiled loop uses) and an optional ``channel.sanitizer`` attribute guarded
by one ``is not None`` test, mirroring the tracer normalization idiom.  With
the sanitizer off nothing is installed, so runs are bit-identical to an
unsanitized tree; on, every check is read-only, so results are *also*
bit-identical — only wall time changes.

Usage::

    sanitizer = SimSanitizer()
    sanitizer.install(sim)            # engine-level checks
    sanitizer.attach_network(network) # node/battery/estimator sweeps
    ...run...
    sanitizer.report()                # {"events": ..., "checks": ...}

or simply ``run_scenario(scenario, sanitize=True)`` /
``peas-repro run --sanitize``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .engine import Simulator
from .events import Event

__all__ = ["InvariantViolation", "SimSanitizer", "DEFAULT_SWEEP_PERIOD"]

#: events between full node-state sweeps (same order as the profiler's
#: gauge period: frequent enough to localize a corruption, cheap enough
#: to leave the run usable)
DEFAULT_SWEEP_PERIOD = 256

#: slack for float comparisons (mode integration accumulates rounding)
_EPS = 1e-9


class InvariantViolation(AssertionError):
    """A simulation invariant failed during a sanitized run.

    Subclasses ``AssertionError`` because these are assertions about the
    simulator's own state machine — a violation is a bug in the model (or a
    deliberately corrupted test fixture), never a user input error.
    """


class SimSanitizer:
    """Watches a simulation for invariant violations.

    Parameters
    ----------
    sweep_period:
        Events between full node-state sweeps; the per-event monotonic-time
        check always runs.
    """

    def __init__(self, sweep_period: int = DEFAULT_SWEEP_PERIOD) -> None:
        if sweep_period < 1:
            raise ValueError("sweep_period must be >= 1")
        self.sweep_period = sweep_period
        self.events_checked = 0
        self.transmissions_checked = 0
        self.sweeps = 0
        self.node_checks = 0
        self._last_time = float("-inf")
        self._countdown = sweep_period
        self._sim: Simulator | None = None
        self._networks: List[Any] = []

    # -------------------------------------------------------------- wiring
    def install(self, sim: Simulator) -> None:
        """Register the per-event checks on ``sim``'s pre-event hooks."""
        if self._sim is not None:
            raise RuntimeError("sanitizer is already installed")
        self._sim = sim
        sim.pre_event_hooks.append(self._on_event)

    def uninstall(self) -> None:
        """Remove the hook (used by tests to re-use an engine)."""
        if self._sim is not None:
            try:
                self._sim.pre_event_hooks.remove(self._on_event)
            except ValueError:
                pass
            self._sim = None

    def attach_network(self, network: Any) -> None:
        """Sweep ``network``'s nodes and police its channel's transmissions.

        ``network`` is duck-typed: anything exposing ``nodes`` (mapping of
        node objects with ``assert_invariants``) and optionally ``channel``
        works, so baseline protocols can opt in too.
        """
        self._networks.append(network)
        channel = getattr(network, "channel", None)
        if channel is not None:
            channel.sanitizer = self

    # -------------------------------------------------------------- checks
    def _on_event(self, event: Event) -> None:
        time = event.time
        if time < self._last_time - _EPS:
            raise InvariantViolation(
                f"event timestamps went backwards: {event!r} fires at "
                f"t={time!r} after an event at t={self._last_time!r}"
            )
        self._last_time = time
        self.events_checked += 1
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.sweep_period
            self.sweep(time)

    def on_transmit(self, endpoint: Any, now: float) -> None:
        """Called by the channel for every frame put on the air."""
        self.transmissions_checked += 1
        if not endpoint.is_listening():
            mode = getattr(endpoint, "mode", None)
            mode_name = getattr(mode, "value", mode)
            raise InvariantViolation(
                f"node {endpoint.node_id!r} transmitted at t={now:.6f} while "
                f"not radio-active (mode={mode_name!r}); sleeping/dead nodes "
                "must never put frames on the air"
            )

    def sweep(self, now: float) -> None:
        """Run the full node-state sweep immediately (also used at teardown)."""
        self.sweeps += 1
        for network in self._networks:
            nodes = getattr(network, "nodes", None)
            if not nodes:
                continue
            for node in nodes.values():
                check = getattr(node, "assert_invariants", None)
                if check is not None:
                    check(now)
                    self.node_checks += 1

    # ------------------------------------------------------------ reporting
    def report(self) -> Dict[str, int]:
        """Counts of checks performed (all of which passed)."""
        return {
            "events_checked": self.events_checked,
            "transmissions_checked": self.transmissions_checked,
            "sweeps": self.sweeps,
            "node_checks": self.node_checks,
        }

    @property
    def total_checks(self) -> int:
        return self.events_checked + self.transmissions_checked + self.node_checks
