"""Discrete-event simulation kernel (the reproduction's PARSEC substitute).

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop and virtual clock.
* :class:`~repro.sim.events.Event` — a scheduled, cancellable callback.
* :class:`~repro.sim.rng.RngRegistry` — named deterministic RNG streams.
* :class:`~repro.sim.process.Timer` / :class:`~repro.sim.process.PeriodicProcess`
  / :func:`~repro.sim.process.start_process` — process-style helpers.
* :class:`~repro.sim.trace.CounterSet` and friends — run statistics.
* :class:`~repro.sim.sanitizer.SimSanitizer` — toggleable runtime invariant
  checks (``peas-repro run --sanitize``), off by default and bit-identical
  when off.
* :mod:`~repro.sim.handlers` — the handler-descriptor registry that makes
  the event queue serializable (``peas-snapshot/1`` support).
"""

from .engine import SimulationError, Simulator
from .handlers import (
    HANDLER_KINDS,
    RestoreContext,
    SnapshotError,
    handler_registered,
    register_handler,
)
from .profiling import EngineProfiler
from .sanitizer import InvariantViolation, SimSanitizer
from .events import (
    PRIORITY_DEFAULT,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    Event,
    EventQueueEmpty,
)
from .process import PeriodicProcess, Timer, start_process
from .rng import RngRegistry, derive_seed
from .streams import STREAM_NAMES, stream_declared
from .trace import CounterSet, SeriesRecorder, TimeWeightedValue, TraceLog

__all__ = [
    "Simulator",
    "SimulationError",
    "EngineProfiler",
    "SimSanitizer",
    "InvariantViolation",
    "Event",
    "EventQueueEmpty",
    "SnapshotError",
    "RestoreContext",
    "HANDLER_KINDS",
    "register_handler",
    "handler_registered",
    "PRIORITY_HIGH",
    "PRIORITY_DEFAULT",
    "PRIORITY_LOW",
    "Timer",
    "PeriodicProcess",
    "start_process",
    "RngRegistry",
    "derive_seed",
    "STREAM_NAMES",
    "stream_declared",
    "CounterSet",
    "TimeWeightedValue",
    "SeriesRecorder",
    "TraceLog",
]
