"""Dependency-free metrics registry: counters, gauges, log2 histograms.

This is the quantitative side of the observability layer (traces in
:mod:`repro.obs.tracer` are the qualitative side): named, labeled
instruments a run populates cheaply, snapshotted into picklable samples
that cross process-pool boundaries, merged sweep-wide by the telemetry
bus, and exported in two canonical formats:

* ``peas-metrics/1`` — NDJSON, one header line plus one line per labeled
  sample, byte-stable encoding like the trace pipeline (see
  :func:`save_metrics` / :func:`validate_metrics_file`);
* Prometheus text exposition — what a long-lived ``peas-repro serve``
  daemon will expose on a scrape endpoint (see :func:`render_prometheus`).

Design rules, mirroring the tracer:

* **Off by default and byte-neutral.**  Nothing in the simulation draws
  on this module unless ``RunOptions(metrics=True)``; collection never
  touches an RNG, so results are bit-identical with metrics on or off.
* **Canonical names.**  Every instrument the stack emits is declared in
  :data:`METRIC_NAMES`; the registry rejects undeclared names (and
  kind mismatches) unless built with ``strict=False``, the validator
  flags them in exports, and lint rule S302 flags them statically.
* **Merge semantics.**  Counters add, gauges keep the maximum (they are
  high-water marks here), histograms add bucket-wise — so per-run
  snapshots from pool workers fold into one sweep-level registry.

Histogram buckets are fixed log2: bucket ``i`` covers values in
``(2**(LOW+i-1), 2**(LOW+i)]`` with ``LOW = -10`` (sub-millisecond floor
for wall times) through ``2**17`` seconds (covers coverage lifetimes),
plus one overflow bucket.  Fixed buckets are what make histograms
mergeable across workers without coordination.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "METRICS_SCHEMA",
    "METRIC_NAMES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunMetrics",
    "bucket_bounds",
    "save_metrics",
    "save_prometheus",
    "render_prometheus",
    "load_metrics_file",
    "validate_metrics_file",
]

METRICS_SCHEMA = "peas-metrics/1"

#: log2 histogram layout: bucket i covers (2^(LOW+i-1), 2^(LOW+i)], i in
#: [0, COUNT); index COUNT is the overflow bucket.
BUCKET_LOG2_LOW = -10
BUCKET_COUNT = 28

_NAME_RE = re.compile(r"^peas_[a-z0-9_]+$")

#: The canonical instrument catalogue: name -> (kind, help).  This table
#: *is* the peas-metrics/1 vocabulary: the registry enforces it (strict
#: mode), :func:`validate_metrics_file` checks exports against it, and
#: lint rule S302 cross-checks every ``.counter("...")``-style call site
#: in the tree statically.  Keep it a literal dict of string keys and
#: (kind, help) string tuples — S302 parses it from the AST.
METRIC_NAMES: Dict[str, Tuple[str, str]] = {
    "peas_runs_total": ("counter", "Simulation runs completed, by status."),
    "peas_run_wall_seconds": ("histogram", "Wall-clock seconds per run."),
    "peas_run_rss_mb": ("gauge", "Peak resident set size across runs (MiB)."),
    "peas_run_sim_time_seconds": ("histogram", "Simulated seconds covered per run."),
    "peas_sim_events_total": ("counter", "Engine events executed."),
    "peas_sim_heap_size": ("gauge", "Peak event-heap size (live + tombstones)."),
    "peas_sim_live_events": ("gauge", "Peak live (uncancelled) queued events."),
    "peas_sim_tombstones": ("gauge", "Peak cancelled-but-unreaped heap entries."),
    "peas_channel_frames_total": ("counter", "Channel frames, by outcome (sent/delivered)."),
    "peas_channel_drops_total": ("counter", "Channel frames lost, by reason."),
    "peas_fault_events_total": ("counter", "Fault strikes by model kind (victims for instantaneous models)."),
    "peas_fault_recoveries_total": ("counter", "Stunned nodes restored after transient outages."),
    "peas_failures_injected_total": ("counter", "Node deaths injected (ambient + plan)."),
    "peas_wakeups_total": ("counter", "Protocol wakeups (the Fig 11 metric)."),
    "peas_coverage_lifetime_seconds": ("histogram", "K-coverage lifetime per run, labeled by k."),
    "peas_delivery_lifetime_seconds": ("histogram", "Data-delivery lifetime per run."),
    "peas_energy_joules_total": ("counter", "Energy consumed, by accounting category."),
    "peas_sweep_runs_total": ("counter", "Sweep runs by final status (ok/error)."),
    "peas_sweep_retries_total": ("counter", "Same-seed retries attempted by the sweep."),
    "peas_sweep_heartbeats_total": ("counter", "Worker heartbeats received by the parent."),
    "peas_sweep_workers": ("gauge", "Peak concurrent pool workers observed."),
    "peas_sweep_wall_seconds": ("gauge", "Wall-clock duration of the whole sweep."),
    "peas_sweep_warm_start_burn_ins_total": ("counter", "Shared burn-in prefixes simulated for warm-started sweeps."),
    "peas_sweep_warm_start_forks_total": ("counter", "Variant runs forked from a warm-start burn-in snapshot."),
    "peas_sweep_quarantined_total": ("counter", "Poison runs quarantined after exhausting every retry attempt."),
    "peas_sweep_pool_restarts_total": ("counter", "Process-pool respawns after worker death or run timeout."),
    "peas_store_hits_total": ("counter", "Result-store records replayed instead of simulated."),
    "peas_store_misses_total": ("counter", "Result-store lookups that fell through to a simulation."),
    "peas_store_evictions_total": ("counter", "Result-store records evicted (GC) or quarantined (corrupt)."),
}

_KINDS = ("counter", "gauge", "histogram")

LabelKey = Tuple[Tuple[str, str], ...]


def bucket_bounds() -> List[float]:
    """Upper bounds of every histogram bucket (last is ``+inf``)."""
    return [
        float(2.0 ** (BUCKET_LOG2_LOW + i)) for i in range(BUCKET_COUNT)
    ] + [math.inf]


def _bucket_index(value: float) -> int:
    """The log2 bucket for one observation (exact at power-of-two edges)."""
    if value <= 2.0 ** BUCKET_LOG2_LOW:
        return 0
    if value > 2.0 ** (BUCKET_LOG2_LOW + BUCKET_COUNT - 1):
        return BUCKET_COUNT
    # frexp is exact: value = m * 2**e with 0.5 <= m < 1, so
    # ceil(log2(value)) is e-1 iff value is itself a power of two.
    m, e = math.frexp(value)
    exp = e - 1 if m == 0.5 else e
    return exp - BUCKET_LOG2_LOW


class Counter:
    """A monotonically increasing count (float-valued: energy sums too)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:  # perf: one add per call
        if amount < 0:
            raise ValueError(f"counters only go up (amount={amount})")
        self.value += amount


class Gauge:
    """A point-in-time value; merges (and :meth:`set_max`) keep the peak."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed log2-bucket distribution with sum/count (mergeable)."""

    __slots__ = ("buckets", "count", "sum")

    def __init__(self) -> None:
        self.buckets: List[int] = [0] * (BUCKET_COUNT + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.buckets[_bucket_index(value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None


_Instrument = Union[Counter, Gauge, Histogram]
_CLASSES: Dict[str, type] = {
    "counter": Counter, "gauge": Gauge, "histogram": Histogram,
}


class MetricsRegistry:
    """Labeled instruments addressed by ``(name, labels)``.

    ``registry.counter("peas_runs_total", protocol="peas")`` returns the
    one Counter for that label set, creating it on first use.  Callers on
    hot-ish paths should hold the returned handle rather than re-resolve.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self._metrics: Dict[Tuple[str, LabelKey], _Instrument] = {}
        #: kind per name actually registered (validated against the table)
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------ access
    def _get(self, kind: str, name: str, labels: Dict[str, Any]) -> _Instrument:
        declared = METRIC_NAMES.get(name)
        if declared is None:
            if self.strict:
                raise ValueError(
                    f"undeclared metric name {name!r}; add it to "
                    "repro.obs.metrics.METRIC_NAMES or use strict=False"
                )
            if not _NAME_RE.match(name):
                raise ValueError(
                    f"metric name {name!r} must match {_NAME_RE.pattern}"
                )
        elif declared[0] != kind:
            raise ValueError(
                f"metric {name!r} is declared as a {declared[0]}, not a {kind}"
            )
        known = self._kinds.setdefault(name, kind)
        if known != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {known}, not a {kind}"
            )
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = self._metrics[key] = _CLASSES[kind]()
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        instrument = self._get("counter", name, labels)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        instrument = self._get("gauge", name, labels)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        instrument = self._get("histogram", name, labels)
        assert isinstance(instrument, Histogram)
        return instrument

    def __len__(self) -> int:
        return len(self._metrics)

    # --------------------------------------------------------- snapshots
    def snapshot(self) -> List[Dict[str, Any]]:
        """Picklable, JSON-compatible samples in canonical order."""
        samples: List[Dict[str, Any]] = []
        for (name, label_key) in sorted(self._metrics):
            instrument = self._metrics[(name, label_key)]
            sample: Dict[str, Any] = {
                "name": name,
                "labels": dict(label_key),
            }
            if isinstance(instrument, Counter):
                sample["type"] = "counter"
                sample["value"] = instrument.value
            elif isinstance(instrument, Gauge):
                sample["type"] = "gauge"
                sample["value"] = instrument.value
            else:
                sample["type"] = "histogram"
                sample["count"] = instrument.count
                sample["sum"] = instrument.sum
                sample["buckets"] = list(instrument.buckets)
            samples.append(sample)
        return samples

    def merge(self, samples: Iterable[Dict[str, Any]]) -> None:
        """Fold a snapshot in: counters add, gauges max, histograms add."""
        for sample in samples:
            kind = sample["type"]
            labels = dict(sample.get("labels", {}))
            instrument = self._get(kind, sample["name"], labels)
            if isinstance(instrument, Counter):
                instrument.inc(sample["value"])
            elif isinstance(instrument, Gauge):
                instrument.set_max(sample["value"])
            else:
                assert isinstance(instrument, Histogram)
                buckets = sample["buckets"]
                if len(buckets) != len(instrument.buckets):
                    raise ValueError(
                        f"histogram {sample['name']!r} has {len(buckets)} "
                        f"buckets, expected {len(instrument.buckets)} "
                        "(incompatible bucket layout)"
                    )
                for i, n in enumerate(buckets):
                    instrument.buckets[i] += n
                instrument.count += sample["count"]
                instrument.sum += sample["sum"]


# --------------------------------------------------------------------------
# peas-metrics/1 NDJSON export / load / validation
# --------------------------------------------------------------------------
def _encode(obj: Dict[str, Any]) -> str:
    """Canonical byte-stable encoding (same discipline as the tracer)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def metrics_header(meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The export's first line: schema id + bucket layout + caller meta."""
    header: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "bucket_log2_low": BUCKET_LOG2_LOW,
        "bucket_count": BUCKET_COUNT,
    }
    if meta:
        header.update(meta)
    return header


def save_metrics(
    registry: MetricsRegistry,
    path: Union[str, Path],
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a ``peas-metrics/1`` NDJSON export (header + one sample/line).

    The write is atomic (:func:`repro.obs.atomic.atomic_write_text`): a
    crash mid-export never leaves a truncated file for ``inspect --diff``
    or the validator to trip over.
    """
    from .atomic import atomic_write_text

    lines = [_encode(metrics_header(meta))]
    lines.extend(_encode(sample) for sample in registry.snapshot())
    atomic_write_text(path, "\n".join(lines) + "\n")


def load_metrics_file(
    path: Union[str, Path]
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read back an export as ``(header, samples)``, checking the schema id."""
    header: Optional[Dict[str, Any]] = None
    samples: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if header is None:
                if obj.get("schema") != METRICS_SCHEMA:
                    raise ValueError(
                        f"unsupported metrics schema {obj.get('schema')!r}"
                    )
                header = obj
            else:
                samples.append(obj)
    if header is None:
        raise ValueError(f"{path}: empty metrics export")
    return header, samples


def _validate_sample(obj: object) -> Optional[str]:
    """First problem with one decoded sample line, or ``None``."""
    if not isinstance(obj, dict):
        return f"sample must be an object, got {type(obj).__name__}"
    name = obj.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        return f"'name' must match {_NAME_RE.pattern}, got {name!r}"
    kind = obj.get("type")
    if kind not in _KINDS:
        return f"{name}: 'type' must be one of {_KINDS}, got {kind!r}"
    declared = METRIC_NAMES.get(name)
    if declared is None:
        return f"{name}: not a canonical metric (see METRIC_NAMES)"
    if declared[0] != kind:
        return f"{name}: declared as {declared[0]}, exported as {kind}"
    labels = obj.get("labels", {})
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        return f"{name}: 'labels' must be a string-to-string object"
    if kind in ("counter", "gauge"):
        value = obj.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"{name}: 'value' must be a number, got {value!r}"
        if kind == "counter" and value < 0:
            return f"{name}: counter value must be >= 0, got {value!r}"
        extras = set(obj) - {"name", "type", "labels", "value"}
    else:
        buckets = obj.get("buckets")
        if (
            not isinstance(buckets, list)
            or len(buckets) != BUCKET_COUNT + 1
            or not all(isinstance(b, int) and b >= 0 for b in buckets)
        ):
            return (
                f"{name}: 'buckets' must be {BUCKET_COUNT + 1} nonnegative "
                "integers"
            )
        count = obj.get("count")
        if not isinstance(count, int) or count != sum(buckets):
            return f"{name}: 'count' must equal the bucket total"
        total = obj.get("sum")
        if isinstance(total, bool) or not isinstance(total, (int, float)):
            return f"{name}: 'sum' must be a number"
        extras = set(obj) - {"name", "type", "labels", "count", "sum", "buckets"}
    if extras:
        return f"{name}: unexpected fields {sorted(extras)}"
    return None


def validate_metrics_file(
    path: Union[str, Path], max_errors: int = 20
) -> List[str]:
    """Validate a ``peas-metrics/1`` export line by line.

    Returns ``"line N: problem"`` strings (empty = fully valid), truncated
    at ``max_errors`` like the trace validator.
    """
    errors: List[str] = []
    saw_header = False
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not valid JSON ({exc})")
            else:
                if not saw_header:
                    saw_header = True
                    if not isinstance(obj, dict) or obj.get("schema") != METRICS_SCHEMA:
                        errors.append(
                            f"line {lineno}: header must declare schema "
                            f"{METRICS_SCHEMA!r}"
                        )
                    elif (
                        obj.get("bucket_log2_low") != BUCKET_LOG2_LOW
                        or obj.get("bucket_count") != BUCKET_COUNT
                    ):
                        errors.append(
                            f"line {lineno}: incompatible bucket layout "
                            f"(expected low={BUCKET_LOG2_LOW}, "
                            f"count={BUCKET_COUNT})"
                        )
                else:
                    problem = _validate_sample(obj)
                    if problem is not None:
                        errors.append(f"line {lineno}: {problem}")
            if len(errors) >= max_errors:
                errors.append(f"(stopped after {max_errors} errors)")
                break
    if not saw_header and not errors:
        errors.append("line 1: missing peas-metrics/1 header")
    return errors


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return format(value, ".10g")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    by_name: Dict[str, List[Tuple[Dict[str, str], _Instrument]]] = {}
    for (name, label_key), instrument in sorted(registry._metrics.items()):
        by_name.setdefault(name, []).append((dict(label_key), instrument))
    bounds = bucket_bounds()
    lines: List[str] = []
    for name, entries in by_name.items():
        declared = METRIC_NAMES.get(name)
        kind = registry._kinds[name]
        help_text = declared[1] if declared else ""
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, instrument in entries:
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(
                    f"{name}{_label_str(labels)} "
                    f"{_format_number(instrument.value)}"
                )
            else:
                assert isinstance(instrument, Histogram)
                cumulative = 0
                for bound, count in zip(bounds, instrument.buckets):
                    cumulative += count
                    le = _label_str(labels, ("le", _format_number(bound)))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(
                    f"{name}_sum{_label_str(labels)} "
                    f"{_format_number(instrument.sum)}"
                )
                lines.append(
                    f"{name}_count{_label_str(labels)} {instrument.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def save_prometheus(registry: MetricsRegistry, path: Union[str, Path]) -> None:
    """Write the Prometheus text-exposition dump next to the NDJSON export
    (atomically, like :func:`save_metrics`)."""
    from .atomic import atomic_write_text

    atomic_write_text(path, render_prometheus(registry))


# --------------------------------------------------------------------------
# The per-run collector the harness drives
# --------------------------------------------------------------------------
#: channel CounterSet key -> peas_channel_frames_total{outcome=...}
_FRAME_OUTCOMES = {"frames_sent": "sent", "frames_delivered": "delivered"}
#: channel CounterSet key -> peas_channel_drops_total{reason=...}
_DROP_REASONS = {
    "collisions": "collision",
    "half_duplex_losses": "half_duplex",
    "random_losses": "random",
    "bursty_losses": "bursty",
    "aborted_receptions": "aborted",
}


class RunMetrics:
    """One run's metrics collection, labeled by protocol and backend.

    Built by the harness when ``RunOptions(metrics=True)``; everything it
    records happens *outside* the event loop (between run chunks and after
    the run), so the simulation's RNG draw sequence — and therefore every
    result and trace byte — is untouched.  Gauges are sampled with
    :meth:`sample_engine` between chunks; the per-subsystem counters fold
    in at the end via ``publish_metrics`` hooks on the channel and fault
    engine plus :meth:`finish`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        protocol: str,
        backend: str,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels: Dict[str, str] = {"protocol": protocol, "backend": backend}
        labels = self.labels
        # Pre-resolved gauge handles: sample_engine runs once per chunk.
        self._heap = self.registry.gauge("peas_sim_heap_size", **labels)
        self._live = self.registry.gauge("peas_sim_live_events", **labels)
        self._tombstones = self.registry.gauge("peas_sim_tombstones", **labels)

    # ------------------------------------------------------------ sampling
    def sample_engine(self, sim: Any) -> None:
        """High-water engine queue gauges (called between run chunks)."""
        self._heap.set_max(sim.pending_events)
        self._live.set_max(sim.live_events)
        self._tombstones.set_max(sim.tombstones)

    # ----------------------------------------------------------- subsystem
    def record_channel(self, counters: Dict[str, int]) -> None:
        """Fold the broadcast channel's per-run counter set in."""
        registry = self.registry
        labels = self.labels
        for key, outcome in _FRAME_OUTCOMES.items():
            value = counters.get(key, 0)
            if value:
                registry.counter(
                    "peas_channel_frames_total", outcome=outcome, **labels
                ).inc(value)
        for key, reason in _DROP_REASONS.items():
            value = counters.get(key, 0)
            if value:
                registry.counter(
                    "peas_channel_drops_total", reason=reason, **labels
                ).inc(value)

    def record_faults(
        self,
        *,
        injected: int,
        events_by_kind: Dict[str, int],
        recoveries: int = 0,
    ) -> None:
        """Fold the fault engine's per-run accounting in."""
        registry = self.registry
        labels = self.labels
        if injected:
            registry.counter(
                "peas_failures_injected_total", **labels
            ).inc(injected)
        for kind, count in sorted(events_by_kind.items()):
            if count:
                registry.counter(
                    "peas_fault_events_total", kind=kind, **labels
                ).inc(count)
        if recoveries:
            registry.counter(
                "peas_fault_recoveries_total", **labels
            ).inc(recoveries)

    # -------------------------------------------------------------- finish
    def finish(
        self,
        sim: Any,
        result: Any,
        *,
        wall_s: float,
        rss_mb: Optional[float] = None,
        status: str = "ok",
    ) -> None:
        """Record the run-level outcomes once the result is assembled."""
        registry = self.registry
        labels = self.labels
        self.sample_engine(sim)
        registry.counter("peas_runs_total", status=status, **labels).inc()
        registry.histogram(
            "peas_run_wall_seconds", phase="run", **labels
        ).observe(wall_s)
        if rss_mb is not None:
            registry.gauge("peas_run_rss_mb", **labels).set_max(rss_mb)
        registry.counter("peas_sim_events_total", **labels).inc(
            sim.events_executed
        )
        registry.histogram(
            "peas_run_sim_time_seconds", phase="run", **labels
        ).observe(result.end_time)
        for k, lifetime in sorted(result.coverage_lifetimes.items()):
            if lifetime is not None:
                registry.histogram(
                    "peas_coverage_lifetime_seconds", k=str(k), **labels
                ).observe(lifetime)
        if result.delivery_lifetime is not None:
            registry.histogram(
                "peas_delivery_lifetime_seconds", **labels
            ).observe(result.delivery_lifetime)
        for cat, joules in sorted(result.energy_by_category.items()):
            if joules:
                registry.counter(
                    "peas_energy_joules_total", cat=cat, **labels
                ).inc(joules)
        if result.total_wakeups:
            registry.counter("peas_wakeups_total", **labels).inc(
                result.total_wakeups
            )
