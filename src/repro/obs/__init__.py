"""Unified observability layer: structured tracing, manifests, inspection.

``repro.obs`` is the always-available instrumentation subsystem threaded
through the kernel and protocol layers:

* :mod:`repro.obs.events` — typed trace-event constructors (node state
  transitions, PROBE/REPLY/collision, lambda-hat updates, failure
  injections, energy category deltas);
* :mod:`repro.obs.schema` — the published JSON schema every NDJSON trace
  line conforms to, plus a dependency-free validator;
* :mod:`repro.obs.sinks` — pluggable sinks: :class:`NullSink` (near-zero
  cost no-op), :class:`RingBufferSink` (bounded in-memory, with a
  ``dropped`` counter), :class:`NdjsonSink` (file writer with rotation);
* :mod:`repro.obs.tracer` — the :class:`Tracer` handle components emit
  through;
* :mod:`repro.obs.manifest` — run provenance (git SHA, config hash, seed,
  RNG streams, package versions, wall time, peak RSS);
* :mod:`repro.obs.metrics` — the quantitative side: a dependency-free
  registry of labeled counters/gauges/histograms, the ``peas-metrics/1``
  NDJSON export, and a Prometheus text-exposition renderer;
* :mod:`repro.obs.diff` — the cross-run comparator behind
  ``peas-repro inspect --diff``;
* :mod:`repro.obs.inspect` — trace summarization behind
  ``peas-repro inspect``.

Engine profiling lives beside the engine in :mod:`repro.sim.profiling`
(re-exported here) so the kernel stays import-independent of this package.
"""

from ..sim.profiling import EngineProfiler
from . import events
from .inspect import TraceSummary, render_summary, summarize_trace
from .diff import RunDiff, RunRecord, diff_runs, load_run, render_diff
from .manifest import build_manifest, config_hash, git_sha, load_manifest, save_manifest
from .metrics import (
    METRIC_NAMES,
    METRICS_SCHEMA,
    MetricsRegistry,
    RunMetrics,
    load_metrics_file,
    render_prometheus,
    save_metrics,
    save_prometheus,
    validate_metrics_file,
)
from .schema import SCHEMA_VERSION, TRACE_EVENT_SCHEMA, validate_event, validate_trace_file
from .sinks import NdjsonSink, NullSink, RingBufferSink, TraceSink
from .tracer import Tracer, null_tracer

__all__ = [
    "events",
    "Tracer",
    "null_tracer",
    "TraceSink",
    "NullSink",
    "RingBufferSink",
    "NdjsonSink",
    "SCHEMA_VERSION",
    "TRACE_EVENT_SCHEMA",
    "validate_event",
    "validate_trace_file",
    "build_manifest",
    "config_hash",
    "git_sha",
    "save_manifest",
    "load_manifest",
    "TraceSummary",
    "summarize_trace",
    "render_summary",
    "EngineProfiler",
    "METRICS_SCHEMA",
    "METRIC_NAMES",
    "MetricsRegistry",
    "RunMetrics",
    "save_metrics",
    "load_metrics_file",
    "validate_metrics_file",
    "render_prometheus",
    "save_prometheus",
    "RunRecord",
    "RunDiff",
    "load_run",
    "diff_runs",
    "render_diff",
]
