"""The tracer handle instrumented components emit through.

Components accept an ``Optional[Tracer]`` and normalize it once at
construction with :meth:`Tracer.active`: a missing tracer *and* a tracer
wrapping a :class:`~repro.obs.sinks.NullSink` both normalize to ``None``,
so every hot-path guard is a single ``if self._tracer is not None`` —
tracing off costs nothing measurable (the <3 % null-sink budget of the
observability bench).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .sinks import NullSink, TraceSink

__all__ = ["Tracer", "null_tracer"]


class Tracer:
    """Routes event dicts to a sink and keeps aggregate stats."""

    __slots__ = ("sink",)

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink = sink if sink is not None else NullSink()

    @property
    def enabled(self) -> bool:
        """False when emitting can have no observable effect."""
        return not isinstance(self.sink, NullSink)

    def active(self) -> Optional["Tracer"]:
        """``self`` when enabled, else ``None`` — the normalization every
        instrumented component applies to its ``tracer`` argument."""
        return self if self.enabled else None

    def emit(self, event: Dict[str, Any]) -> None:
        self.sink.emit(event)

    def close(self) -> None:
        self.sink.close()

    def stats(self) -> Dict[str, int]:
        """Sink-side accounting for manifests: events kept vs dropped."""
        return {"emitted": self.sink.emitted, "dropped": self.sink.dropped}


def null_tracer() -> Tracer:
    """A fresh disabled tracer (``active()`` is ``None``)."""
    return Tracer(NullSink())
