"""Atomic file writes: the one write-then-rename helper the stack shares.

Every durable artifact the reproduction emits — ``peas-snapshot/1``
checkpoints, ``peas-metrics/1`` exports, Prometheus text, run and sweep
manifests, ``peas-result/1`` store records — must never be observable in a
half-written state: a checkpoint is what a crashed sweep resumes from, and
a truncated JSON file at the target path is strictly worse than no file.

The recipe is the standard POSIX one: write the full payload to a
temporary file *in the target directory* (same filesystem, so the rename
is atomic), flush and fsync it, then ``os.replace`` it over the target.
Readers see either the old complete file or the new complete file, never a
mix — including readers in other processes, which is what lets pooled
sweep workers publish result-store records concurrently without locks.

The temporary name embeds the PID so concurrent writers from a process
pool never collide on the scratch file either; last rename wins, which is
correct for content-addressed records (both writers hold identical bytes).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text"]


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically; create parent dirs as needed.

    Returns the target as a :class:`~pathlib.Path`.  On any failure the
    target is left untouched (the scratch file is best-effort removed).
    """
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return target
