"""Run manifests: enough provenance to reconstruct any figure row.

A manifest is a plain JSON object serialized alongside experiment output
(``<trace>.manifest.json`` from the CLI, ``RunResult.manifest`` in memory)
recording *how* a result was produced: source revision, configuration
hash, seed and RNG stream ids, package versions, wall time and peak RSS.

Determinism note: the ``timing`` block (wall time, RSS, creation stamp) is
inherently volatile across runs; everything else is reproducible for a
fixed tree + scenario.  Consumers comparing runs for bit-identity should
drop ``timing`` (see ``tests/integration/test_perf_invariants.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

__all__ = [
    "MANIFEST_SCHEMA",
    "code_fingerprint",
    "config_hash",
    "git_sha",
    "package_versions",
    "peak_rss_mb",
    "wall_clock_s",
    "build_manifest",
    "save_manifest",
    "load_manifest",
]

MANIFEST_SCHEMA = "peas-manifest/1"


def wall_clock_s() -> float:  # peas-lint: wallclock-boundary
    """Monotonic wall-clock reading for manifest ``timing`` provenance.

    The single audited host-clock read the simulation stack is allowed to
    reach: harness and CLI code time *runs* (never simulated events)
    through this helper, and its value only ever lands in the volatile
    ``timing`` block that bit-identity comparisons drop.  The marker on
    the ``def`` line tells the whole-program lint rule (``W401``) not to
    traverse it; calling it from event-driven code would still be caught
    at any un-audited ``time.*`` site.
    """
    return time.perf_counter()


def _canonical(obj: Any) -> Any:
    """Reduce arbitrary config values to a canonical JSON-compatible form."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def config_hash(config: Any) -> str:
    """A stable short hash of a configuration object (e.g. a Scenario).

    Dataclasses are walked field by field, so two scenarios hash equal iff
    every parameter matches — the hash is the figure-row identity.
    """
    payload = json.dumps(_canonical(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """A stable digest of the installed ``repro`` source tree.

    The result-store cache key must change whenever the *code* that
    produces results changes — a git SHA alone misses dirty working trees
    (exactly the state a development sweep runs in) and is unavailable in
    an installed wheel.  So the fingerprint hashes the actual bytes of
    every ``.py`` file under the package, keyed by package-relative path:
    any edit anywhere in ``repro`` yields a new fingerprint, and an
    unchanged tree yields the same one regardless of mtimes, checkout
    path, or git state.

    Memoized per process (the tree cannot change under a running sweep
    without invalidating far more than this cache).
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.blake2b(digest_size=16)
        for source in sorted(package_root.rglob("*.py")):
            rel = source.relative_to(package_root).as_posix()
            digest.update(rel.encode("utf-8"))
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def git_sha() -> Optional[str]:
    """The HEAD commit of the repository this package runs from, or ``None``
    outside a git checkout (e.g. an installed wheel)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def package_versions() -> Dict[str, str]:
    """Versions of the interpreter and the packages results depend on."""
    versions = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }
    try:
        from .. import __version__

        versions["repro"] = __version__
    except ImportError:  # pragma: no cover - package always importable here
        pass
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except ImportError:
        pass
    return versions


def peak_rss_mb() -> Optional[float]:
    """Peak resident set size of this process in MiB (``None`` where the
    ``resource`` module is unavailable, e.g. Windows)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only module
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    divisor = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return round(rss / divisor, 1)


def build_manifest(
    *,
    seed: int,
    config: Any,
    protocol: Optional[str] = None,
    rng_streams: Iterable[str] = (),
    wall_time_s: Optional[float] = None,
    events_executed: Optional[int] = None,
    sim_end_time_s: Optional[float] = None,
    trace: Optional[Dict[str, Any]] = None,
    mac: Optional[Dict[str, Any]] = None,
    argv: Optional[Iterable[str]] = None,
) -> Dict[str, Any]:
    """Assemble the provenance block for one run.

    ``protocol`` names the registered protocol that produced the run (see
    :mod:`repro.protocols`); ``trace`` carries sink accounting (path,
    emitted, dropped); ``mac`` the control-plane window layout (see
    :func:`repro.net.mac.window_layout`).
    """
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "git_sha": git_sha(),
        "config_hash": config_hash(config),
        "seed": seed,
        "protocol": protocol,
        "rng_streams": sorted(rng_streams),
        "packages": package_versions(),
        "platform": platform.platform(),
        "timing": {
            "wall_time_s": None if wall_time_s is None else round(wall_time_s, 4),
            "peak_rss_mb": peak_rss_mb(),
        },
    }
    if events_executed is not None:
        manifest["events_executed"] = events_executed
    if sim_end_time_s is not None:
        manifest["sim_end_time_s"] = sim_end_time_s
    if trace is not None:
        manifest["trace"] = dict(trace)
    if mac is not None:
        manifest["mac"] = dict(mac)
    if argv is not None:
        manifest["argv"] = list(argv)
    return manifest


def save_manifest(manifest: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write a manifest next to its experiment output (atomically)."""
    from .atomic import atomic_write_text

    atomic_write_text(path, json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read back a manifest, checking the schema marker."""
    manifest: Dict[str, Any] = json.loads(Path(path).read_text())
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(f"unsupported manifest schema {manifest.get('schema')!r}")
    return manifest
