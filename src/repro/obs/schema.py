"""The published trace-event schema and a dependency-free validator.

:data:`TRACE_EVENT_SCHEMA` is a standard JSON Schema (draft 2020-12
vocabulary subset) describing every line of an NDJSON trace; CI validates
smoke-run traces against it and external tooling can consume it directly.
:func:`validate_event` is a hand-rolled structural check implementing the
same contract so validation needs no third-party ``jsonschema`` package.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from . import events as ev

__all__ = [
    "SCHEMA_VERSION",
    "TRACE_EVENT_SCHEMA",
    "validate_event",
    "validate_trace_file",
    "iter_trace_file",
]

SCHEMA_VERSION = "peas-trace/1"

#: (field name, allowed python types) per event type, beyond the common
#: ``t``/``ev``/``node`` envelope.  ``node`` is an int for sensors and a
#: string for anchored stations.
_NUMBER = (int, float)
_NODE = (int, str)
_REQUIRED: Dict[str, Tuple[Tuple[str, tuple], ...]] = {
    ev.STATE: (("from", (str,)), ("to", (str,))),
    ev.PROBE_TX: (("wakeup", (int,)), ("idx", (int,))),
    ev.REPLY_TX: (("lam", _NUMBER + (type(None),)), ("tw", _NUMBER)),
    ev.COLLISION: (("frames", (int,)),),
    ev.DROP: (("why", (str,)),),
    ev.LAMBDA_HAT: (("lam", _NUMBER), ("window", (int,))),
    ev.RATE: (("old_hz", _NUMBER), ("new_hz", _NUMBER), ("lam", _NUMBER)),
    ev.FAIL: (),
    ev.ENERGY: (("cat", (str,)), ("j", _NUMBER)),
    ev.FAULT_ARM: (("kind", (str,)),),
    ev.FAULT_FIRE: (("kind", (str,)), ("victims", (int,))),
    ev.FAULT_CLEAR: (("kind", (str,)),),
}

_STATE_NAMES = ("sleeping", "probing", "working", "stunned", "dead")
_DROP_REASONS = ("half_duplex", "random", "bursty", "aborted")
#: the registered fault models (``kind`` of every fault lifecycle event)
_FAULT_KINDS = (
    "crash", "region_kill", "transient_outage", "bursty_loss", "clock_drift"
)


def _variant(ev_type: str, extra: Dict[str, Any]) -> Dict[str, Any]:
    """One ``oneOf`` arm of the published schema."""
    properties = {
        "t": {"type": "number", "minimum": 0},
        "ev": {"const": ev_type},
        "node": {"type": ["integer", "string"]},
    }
    properties.update(extra)
    return {
        "type": "object",
        "properties": properties,
        "required": ["t", "ev", "node"] + [k for k in extra if k != "cause" and k != "rate_hz"],
        "additionalProperties": False,
    }


TRACE_EVENT_SCHEMA: Dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": SCHEMA_VERSION,
    "title": "PEAS reproduction trace event",
    "description": "One line of a peas-repro NDJSON trace.",
    "oneOf": [
        _variant(ev.STATE, {
            "from": {"enum": list(_STATE_NAMES)},
            "to": {"enum": list(_STATE_NAMES)},
            "cause": {"type": "string"},
            "rate_hz": {"type": "number"},
        }),
        _variant(ev.PROBE_TX, {
            "wakeup": {"type": "integer", "minimum": 0},
            "idx": {"type": "integer", "minimum": 0},
        }),
        _variant(ev.REPLY_TX, {
            "lam": {"type": ["number", "null"]},
            "tw": {"type": "number", "minimum": 0},
        }),
        _variant(ev.COLLISION, {"frames": {"type": "integer", "minimum": 1}}),
        _variant(ev.DROP, {"why": {"enum": list(_DROP_REASONS)}}),
        _variant(ev.LAMBDA_HAT, {
            "lam": {"type": "number", "exclusiveMinimum": 0},
            "window": {"type": "integer", "minimum": 1},
        }),
        _variant(ev.RATE, {
            "old_hz": {"type": "number", "exclusiveMinimum": 0},
            "new_hz": {"type": "number", "exclusiveMinimum": 0},
            "lam": {"type": "number", "exclusiveMinimum": 0},
        }),
        _variant(ev.FAIL, {}),
        _variant(ev.ENERGY, {
            "cat": {"type": "string"},
            "j": {"type": "number", "minimum": 0},
        }),
        _variant(ev.FAULT_ARM, {"kind": {"enum": list(_FAULT_KINDS)}}),
        _variant(ev.FAULT_FIRE, {
            "kind": {"enum": list(_FAULT_KINDS)},
            "victims": {"type": "integer", "minimum": 0},
        }),
        _variant(ev.FAULT_CLEAR, {"kind": {"enum": list(_FAULT_KINDS)}}),
    ],
}


def validate_event(event: object) -> Optional[str]:
    """Structurally validate one decoded event.

    Returns ``None`` when the event conforms to the published schema, or a
    human-readable description of the first violation found.
    """
    if not isinstance(event, dict):
        return f"event must be an object, got {type(event).__name__}"
    ev_type = event.get("ev")
    if ev_type not in _REQUIRED:
        return f"unknown event type {ev_type!r}"
    t = event.get("t")
    if not isinstance(t, _NUMBER) or isinstance(t, bool) or t < 0:
        return f"'t' must be a nonnegative number, got {t!r}"
    node = event.get("node")
    if not isinstance(node, _NODE) or isinstance(node, bool):
        return f"'node' must be an integer or string, got {node!r}"
    fields = _REQUIRED[ev_type]
    for name, types in fields:
        if name not in event:
            return f"{ev_type}: missing field {name!r}"
        value = event[name]
        if isinstance(value, bool) or not isinstance(value, types):
            return f"{ev_type}: field {name!r} has bad type {type(value).__name__}"
    if ev_type == ev.STATE:
        for key in ("from", "to"):
            if event[key] not in _STATE_NAMES:
                return f"state: {key!r} must be one of {_STATE_NAMES}, got {event[key]!r}"
    elif ev_type == ev.DROP and event["why"] not in _DROP_REASONS:
        return f"drop: 'why' must be one of {_DROP_REASONS}, got {event['why']!r}"
    elif ev_type in (ev.FAULT_ARM, ev.FAULT_FIRE, ev.FAULT_CLEAR):
        if event["kind"] not in _FAULT_KINDS:
            return (
                f"{ev_type}: 'kind' must be one of {_FAULT_KINDS}, "
                f"got {event['kind']!r}"
            )
    allowed = {"t", "ev", "node"} | {name for name, _ in fields}
    if ev_type == ev.STATE:
        allowed |= {"cause", "rate_hz"}
    extras = set(event) - allowed
    if extras:
        return f"{ev_type}: unexpected fields {sorted(extras)}"
    return None


def iter_trace_file(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Stream the decoded events of an NDJSON trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                event: Dict[str, Any] = json.loads(line)
                yield event


def validate_trace_file(path: Union[str, Path], max_errors: int = 20) -> List[str]:
    """Validate every line of an NDJSON trace.

    Returns a list of ``"line N: problem"`` strings (empty = fully valid),
    truncated at ``max_errors`` so a systematically broken trace does not
    produce megabytes of diagnostics.
    """
    errors: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not valid JSON ({exc})")
            else:
                problem = validate_event(event)
                if problem is not None:
                    errors.append(f"line {lineno}: {problem}")
            if len(errors) >= max_errors:
                errors.append(f"(stopped after {max_errors} errors)")
                break
    return errors
