"""Trace summarization: the engine behind ``peas-repro inspect``.

Folds an NDJSON event stream into a :class:`TraceSummary` — per-node state
timelines, top talkers, lambda-hat convergence series, energy by category —
and renders it as a one-screen terminal report.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple, Union

from . import events as ev
from .schema import iter_trace_file

__all__ = ["TraceSummary", "summarize_trace", "summarize_trace_file", "render_summary"]

#: single-letter mode tags for compact timelines
_MODE_TAGS = {
    "sleeping": "S",
    "probing": "P",
    "working": "W",
    "stunned": "X",
    "dead": "D",
}


@dataclass
class TraceSummary:
    """Aggregates of one trace (all derived, no raw event retention)."""

    n_events: int = 0
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    by_type: Dict[str, int] = field(default_factory=dict)
    #: node -> [(t, from, to, cause)] in emission order
    transitions: Dict[Hashable, List[Tuple[float, str, str, Optional[str]]]] = field(
        default_factory=dict
    )
    probes: Dict[Hashable, int] = field(default_factory=dict)
    replies: Dict[Hashable, int] = field(default_factory=dict)
    #: (t, lambda-hat) from completed worker measurement windows
    lambda_series: List[Tuple[float, float]] = field(default_factory=list)
    #: (t, new rate) from sleeper eq. (2) adaptations
    rate_series: List[Tuple[float, float]] = field(default_factory=list)
    energy_by_cat: Dict[str, float] = field(default_factory=dict)
    collisions: int = 0
    drops: Dict[str, int] = field(default_factory=dict)
    failures: List[Tuple[float, Hashable]] = field(default_factory=list)
    #: fault id -> model kind, from ``fault_arm`` events
    fault_arms: Dict[str, str] = field(default_factory=dict)
    #: (t, fault id, kind, victims) per ``fault_fire``, in emission order
    fault_fires: List[Tuple[float, str, str, int]] = field(default_factory=list)
    fault_clears: int = 0

    @property
    def nodes(self) -> List[Hashable]:
        """Every node that emitted anything, sensors first, sorted."""
        seen = set(self.transitions) | set(self.probes) | set(self.replies)
        return sorted(seen, key=lambda n: (isinstance(n, str), n))

    def mode_durations(self, node: Hashable) -> Dict[str, float]:
        """Seconds the node spent in each mode, from its transition log.

        Nodes start Sleeping at t=0 (anchors hop straight through Probing);
        the last mode extends to the trace's final timestamp.
        """
        transitions = self.transitions.get(node, [])
        durations: Dict[str, float] = defaultdict(float)
        mode, since = "sleeping", 0.0
        for t, _src, dst, _cause in transitions:
            durations[mode] += t - since
            mode, since = dst, t
        if self.t_max is not None and self.t_max > since:
            durations[mode] += self.t_max - since
        return dict(durations)

    def top_talkers(self, limit: int = 5) -> List[Tuple[Hashable, int, int]]:
        """Nodes ranked by control frames sent: (node, probes, replies)."""
        totals = Counter(self.probes)
        totals.update(self.replies)
        return [
            (node, self.probes.get(node, 0), self.replies.get(node, 0))
            for node, _ in totals.most_common(limit)
        ]

    def fault_recoveries(self) -> List[Tuple[float, Optional[float]]]:
        """Empirical §3 replacement delay per fault strike.

        For each ``fault_fire`` instant, the delay until *any* node next
        enters Working — the trace-level counterpart of the analytical
        replacement-delay bound (``None``: no working start followed).
        """
        if not self.fault_fires:
            return []
        working_starts = sorted(
            t
            for transitions in self.transitions.values()
            for t, _src, dst, _cause in transitions
            if dst == "working"
        )
        recoveries: List[Tuple[float, Optional[float]]] = []
        for t0, _fid, _kind, _victims in self.fault_fires:
            delay = next((t - t0 for t in working_starts if t > t0), None)
            recoveries.append((t0, delay))
        return recoveries


def summarize_trace(events: Iterable[Dict[str, Any]]) -> TraceSummary:
    """Single-pass fold of decoded events into a :class:`TraceSummary`."""
    summary = TraceSummary()
    by_type: Counter[str] = Counter()
    for event in events:
        summary.n_events += 1
        t = event.get("t", 0.0)
        if summary.t_min is None or t < summary.t_min:
            summary.t_min = t
        if summary.t_max is None or t > summary.t_max:
            summary.t_max = t
        ev_type = event.get("ev")
        by_type[ev_type] += 1
        node = event.get("node")
        if ev_type == ev.STATE:
            summary.transitions.setdefault(node, []).append(
                (t, event["from"], event["to"], event.get("cause"))
            )
        elif ev_type == ev.PROBE_TX:
            summary.probes[node] = summary.probes.get(node, 0) + 1
        elif ev_type == ev.REPLY_TX:
            summary.replies[node] = summary.replies.get(node, 0) + 1
        elif ev_type == ev.LAMBDA_HAT:
            summary.lambda_series.append((t, event["lam"]))
        elif ev_type == ev.RATE:
            summary.rate_series.append((t, event["new_hz"]))
        elif ev_type == ev.ENERGY:
            cat = event["cat"]
            summary.energy_by_cat[cat] = summary.energy_by_cat.get(cat, 0.0) + event["j"]
        elif ev_type == ev.COLLISION:
            summary.collisions += event.get("frames", 1)
        elif ev_type == ev.DROP:
            why = event["why"]
            summary.drops[why] = summary.drops.get(why, 0) + 1
        elif ev_type == ev.FAIL:
            summary.failures.append((t, node))
        elif ev_type == ev.FAULT_ARM:
            summary.fault_arms[node] = event["kind"]
        elif ev_type == ev.FAULT_FIRE:
            summary.fault_fires.append(
                (t, node, event["kind"], event["victims"])
            )
        elif ev_type == ev.FAULT_CLEAR:
            summary.fault_clears += 1
    summary.by_type = dict(by_type)
    return summary


def summarize_trace_file(path: Union[str, Path]) -> TraceSummary:
    """Summarize an NDJSON trace file without holding it in memory."""
    return summarize_trace(iter_trace_file(path))


def _timeline_line(
    summary: TraceSummary, node: Hashable, max_hops: int = 8
) -> str:
    """One node's compact state timeline: mode budget + transition hops."""
    durations = summary.mode_durations(node)
    budget = " ".join(
        f"{_MODE_TAGS[mode]}:{durations[mode]:.0f}s"
        for mode in ("sleeping", "probing", "working", "stunned", "dead")
        if durations.get(mode, 0.0) > 0.0
    )
    transitions = summary.transitions.get(node, [])
    hops: List[str] = []
    shown = transitions if len(transitions) <= max_hops else transitions[-max_hops:]
    if len(transitions) > max_hops:
        hops.append(f"... {len(transitions) - max_hops} earlier ...")
    for t, src, dst, cause in shown:
        hop = f"{_MODE_TAGS[src]}>{_MODE_TAGS[dst]}@{t:.0f}"
        if cause:
            hop += f"({cause})"
        hops.append(hop)
    return f"  node {node!s:>8}  [{budget}]  {' '.join(hops) or '(no transitions)'}"


def render_summary(
    summary: TraceSummary, max_nodes: int = 20, width: int = 60
) -> str:
    """The full ``peas-repro inspect`` report as a string."""
    lines: List[str] = []
    span = (
        f"{summary.t_min:.1f}s .. {summary.t_max:.1f}s"
        if summary.n_events
        else "(empty)"
    )
    lines.append(f"trace: {summary.n_events} events over {span}")
    if summary.by_type:
        counts = "  ".join(f"{k}={v}" for k, v in sorted(summary.by_type.items()))
        lines.append(f"  {counts}")
    if summary.collisions or summary.drops:
        drops = "  ".join(f"{k}={v}" for k, v in sorted(summary.drops.items()))
        lines.append(f"  collisions={summary.collisions}  drops: {drops or 'none'}")
    if summary.failures:
        first = summary.failures[0]
        lines.append(
            f"  failures injected: {len(summary.failures)} "
            f"(first: node {first[1]} @ {first[0]:.0f}s)"
        )

    if summary.fault_arms or summary.fault_fires:
        lines.append("")
        lines.append("fault plan:")
        for fault_id in sorted(summary.fault_arms):
            lines.append(f"  {fault_id}: {summary.fault_arms[fault_id]} armed")
        recoveries = summary.fault_recoveries()
        max_fires = 12
        shown_fires = summary.fault_fires[:max_fires]
        for (t, fault_id, kind, victims), (_t0, delay) in zip(
            shown_fires, recoveries
        ):
            recovered = (
                f"next working start +{delay:.1f}s"
                if delay is not None
                else "no working start after"
            )
            lines.append(
                f"  {fault_id} fired @ {t:.0f}s ({kind}, victims={victims}; "
                f"{recovered})"
            )
        if len(summary.fault_fires) > max_fires:
            lines.append(
                f"  ... {len(summary.fault_fires) - max_fires} more fires "
                f"elided ..."
            )
        if summary.fault_clears:
            lines.append(f"  fault clears (restores): {summary.fault_clears}")

    talkers = summary.top_talkers()
    if talkers:
        lines.append("")
        lines.append("top talkers (control frames):")
        for node, probes, replies in talkers:
            lines.append(
                f"  node {node!s:>8}  probes={probes:<6d} replies={replies:<6d} "
                f"total={probes + replies}"
            )

    # Lazy import: repro.experiments imports the runner (which imports this
    # package), so pulling the chart helpers in at module scope would cycle.
    from ..experiments.report import timeline_chart

    if summary.lambda_series:
        lines.append("")
        lines.append(
            timeline_chart(
                summary.lambda_series,
                "lambda-hat convergence (completed worker windows, Hz)",
                width=width,
                value_format=".4f",
            )
        )
    if summary.rate_series:
        lines.append("")
        lines.append(
            timeline_chart(
                summary.rate_series,
                "sleeper wakeup rates after eq. (2) adaptation (Hz)",
                width=width,
                value_format=".4f",
            )
        )

    if summary.energy_by_cat:
        lines.append("")
        lines.append("energy by category:")
        total = sum(summary.energy_by_cat.values())
        for cat, joules in sorted(
            summary.energy_by_cat.items(), key=lambda item: -item[1]
        ):
            share = (joules / total * 100.0) if total > 0 else 0.0
            lines.append(f"  {cat:>12}  {joules:12.4f} J  ({share:5.1f}%)")

    nodes = summary.nodes
    if nodes:
        lines.append("")
        shown = nodes[:max_nodes]
        lines.append(
            f"per-node state timelines ({len(shown)} of {len(nodes)} nodes):"
        )
        for node in shown:
            lines.append(_timeline_line(summary, node))
        if len(nodes) > max_nodes:
            lines.append(f"  ... {len(nodes) - max_nodes} more nodes elided ...")
    return "\n".join(lines)
