"""Cross-run comparison: the review tool behind ``peas-repro inspect --diff``.

Every telemetry-enabled sweep leaves a self-describing record behind — a
``peas-sweep-manifest/1`` provenance file plus a ``peas-metrics/1``
export.  :func:`diff_runs` loads two such records and reports what moved:

* **provenance drift** — git SHA, config digest, protocols, run counts
  (the first thing to check before trusting any metric delta: a lifetime
  "regression" against a different config is not a regression);
* **metric deltas** — every instrument present in either export, matched
  by ``(name, labels)``: counters and gauges by value, histograms by
  mean (sum/count), each with absolute and relative change.

:func:`render_diff` turns that into the terminal report perf/protocol PRs
paste into review: lifetime and coverage movement first, then energy by
category, then the biggest counter movers, then one-sided metrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import load_metrics_file

__all__ = ["RunRecord", "MetricDelta", "RunDiff", "load_run", "diff_runs", "render_diff"]

#: manifest fields compared for drift, in report order
_DRIFT_FIELDS = (
    "git_sha", "config_digest", "label", "protocols", "runs", "ok", "errors",
)

#: counters excluded from the "top movers" table (reported elsewhere or
#: meta-level bookkeeping that moves with every run)
_MOVER_EXCLUDES = (
    "peas_energy_joules_total",
    "peas_sweep_heartbeats_total",
    "peas_sweep_wall_seconds",
)


@dataclass
class RunRecord:
    """One recorded run: its manifest, export header, and samples."""

    path: Path
    manifest: Dict[str, Any]
    header: Dict[str, Any]
    #: (name, sorted label items) -> sample dict
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Dict[str, Any]]

    @property
    def label(self) -> str:
        return str(
            self.manifest.get("label") or self.header.get("label") or self.path
        )


def load_run(path: Union[str, Path]) -> RunRecord:
    """Load one recorded run for diffing.

    ``path`` may be a telemetry output directory (containing
    ``metrics.ndjson`` and ``manifest.json``) or the ``metrics.ndjson``
    file itself (the manifest is looked up next to it; a missing manifest
    degrades to provenance-free diffing rather than failing).
    """
    path = Path(path)
    if path.is_dir():
        metrics_path = path / "metrics.ndjson"
        manifest_path = path / "manifest.json"
    else:
        metrics_path = path
        manifest_path = path.parent / "manifest.json"
    if not metrics_path.exists():
        raise FileNotFoundError(
            f"{path}: no metrics export found (expected {metrics_path})"
        )
    header, raw_samples = load_metrics_file(metrics_path)
    manifest: Dict[str, Any] = {}
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    samples = {
        (
            sample["name"],
            tuple(sorted(sample.get("labels", {}).items())),
        ): sample
        for sample in raw_samples
    }
    return RunRecord(
        path=path, manifest=manifest, header=header, samples=samples
    )


@dataclass
class MetricDelta:
    """One matched instrument's movement between two runs."""

    name: str
    labels: Dict[str, str]
    kind: str
    value_a: float
    value_b: float
    #: histogram deltas compare means; observation counts ride along
    count_a: Optional[int] = None
    count_b: Optional[int] = None

    @property
    def delta(self) -> float:
        return self.value_b - self.value_a

    @property
    def pct(self) -> Optional[float]:
        """Relative change in percent (``None`` when A is zero)."""
        if self.value_a == 0:
            return None
        return (self.value_b - self.value_a) / abs(self.value_a) * 100.0

    def describe(self) -> str:
        label_str = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        name = f"{self.name}{{{label_str}}}" if label_str else self.name
        pct = self.pct
        pct_str = f"{pct:+.1f}%" if pct is not None else "new" if self.value_b else "—"
        return (
            f"{name}: {_fmt(self.value_a)} -> {_fmt(self.value_b)} "
            f"({self.delta:+.4g}, {pct_str})"
        )


@dataclass
class RunDiff:
    """Everything that moved between two recorded runs."""

    a: RunRecord
    b: RunRecord
    #: (field, value_a, value_b) for manifest fields that differ
    drift: List[Tuple[str, Any, Any]] = field(default_factory=list)
    #: matched instruments whose value/mean moved
    changed: List[MetricDelta] = field(default_factory=list)
    #: matched instruments with identical values
    unchanged: int = 0
    #: sample keys present only in A / only in B (rendered names)
    only_a: List[str] = field(default_factory=list)
    only_b: List[str] = field(default_factory=list)


def _sample_value(sample: Dict[str, Any]) -> Tuple[float, Optional[int]]:
    """Comparable scalar for one sample: value, or mean for histograms."""
    if sample["type"] == "histogram":
        count = int(sample["count"])
        mean = float(sample["sum"]) / count if count else 0.0
        return mean, count
    return float(sample["value"]), None


def _key_name(key: Tuple[str, Tuple[Tuple[str, str], ...]]) -> str:
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def diff_runs(a: RunRecord, b: RunRecord) -> RunDiff:
    """Match the two exports instrument by instrument and diff them."""
    diff = RunDiff(a=a, b=b)
    for field_name in _DRIFT_FIELDS:
        value_a = a.manifest.get(field_name)
        value_b = b.manifest.get(field_name)
        if value_a != value_b:
            diff.drift.append((field_name, value_a, value_b))
    keys_a = set(a.samples)
    keys_b = set(b.samples)
    diff.only_a = sorted(_key_name(k) for k in keys_a - keys_b)
    diff.only_b = sorted(_key_name(k) for k in keys_b - keys_a)
    for key in sorted(keys_a & keys_b):
        sample_a = a.samples[key]
        sample_b = b.samples[key]
        value_a, count_a = _sample_value(sample_a)
        value_b, count_b = _sample_value(sample_b)
        if value_a == value_b and count_a == count_b:
            diff.unchanged += 1
            continue
        diff.changed.append(
            MetricDelta(
                name=key[0],
                labels=dict(key[1]),
                kind=sample_a["type"],
                value_a=value_a,
                value_b=value_b,
                count_a=count_a,
                count_b=count_b,
            )
        )
    return diff


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def _section(
    lines: List[str], title: str, deltas: List[MetricDelta], limit: Optional[int] = None
) -> None:
    if not deltas:
        return
    lines.append(f"  {title}:")
    shown = deltas if limit is None else deltas[:limit]
    for delta in shown:
        lines.append(f"    {delta.describe()}")
    if limit is not None and len(deltas) > limit:
        lines.append(f"    ... and {len(deltas) - limit} more")


def render_diff(diff: RunDiff, movers_limit: int = 10) -> str:
    """The terminal report: drift first, then grouped metric movement."""
    a, b = diff.a, diff.b
    lines = [f"run diff: A={a.label} ({a.path})  vs  B={b.label} ({b.path})"]
    if diff.drift:
        lines.append("  provenance drift:")
        for field_name, value_a, value_b in diff.drift:
            lines.append(f"    {field_name}: {value_a!r} -> {value_b!r}")
    else:
        lines.append("  provenance: identical (same git SHA + config digest)")

    lifetimes = [
        d for d in diff.changed
        if d.name in (
            "peas_coverage_lifetime_seconds",
            "peas_delivery_lifetime_seconds",
            "peas_run_sim_time_seconds",
        )
    ]
    energy = [d for d in diff.changed if d.name == "peas_energy_joules_total"]
    gauges = [
        d for d in diff.changed
        if d.kind == "gauge" and d not in lifetimes
    ]
    movers = sorted(
        (
            d for d in diff.changed
            if d.kind == "counter" and d.name not in _MOVER_EXCLUDES
        ),
        key=lambda d: -abs(d.pct if d.pct is not None else 100.0),
    )
    shown = set(map(id, lifetimes + energy + movers + gauges))
    other = [d for d in diff.changed if id(d) not in shown]
    _section(lines, "lifetime / coverage (histogram means)", lifetimes)
    _section(lines, "energy by category (J)", energy)
    _section(lines, "top counter movers", movers, limit=movers_limit)
    _section(lines, "gauges", gauges, limit=movers_limit)
    _section(lines, "other", other, limit=movers_limit)
    if diff.only_a:
        lines.append(f"  only in A: {', '.join(diff.only_a[:6])}"
                     + (f" (+{len(diff.only_a) - 6} more)" if len(diff.only_a) > 6 else ""))
    if diff.only_b:
        lines.append(f"  only in B: {', '.join(diff.only_b[:6])}"
                     + (f" (+{len(diff.only_b) - 6} more)" if len(diff.only_b) > 6 else ""))
    lines.append(
        f"  {len(diff.changed)} metrics moved, {diff.unchanged} unchanged"
    )
    return "\n".join(lines)
