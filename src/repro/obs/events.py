"""Typed trace-event constructors.

Every event is a plain JSON-compatible dict with two mandatory keys —
``t`` (simulation time, seconds) and ``ev`` (the event type) — plus
type-specific fields.  Dicts rather than classes keep the hot emit path a
single allocation and make the NDJSON encoding trivial and byte-stable
(:func:`encode_event` sorts keys).

Event types (see :data:`repro.obs.schema.TRACE_EVENT_SCHEMA` for the
published contract):

================  ======================================================
``state``         node state transition (Sleeping/Probing/Working/Dead)
``probe_tx``      a PROBE frame put on the air
``reply_tx``      a REPLY frame put on the air (carries lambda-hat)
``collision``     receiver-side frame overlap destroyed frames there
``drop``          frame lost at a receiver (half duplex / random / abort)
``lambda_hat``    a working node completed a k-interval measurement
``rate``          a sleeper applied eq. (2) to its wakeup rate
``fail``          the failure injector killed a node
``energy``        an energy-accounting category was charged
``fault_arm``     a fault-plan entry was armed (scheduled) by the engine
``fault_fire``    a fault-plan entry struck (victims = nodes affected)
``fault_clear``   a fired fault ended (e.g. a transient outage restored)
================  ======================================================

Fault lifecycle events carry the plan-entry id (``"fault0"``,
``"fault1"``, ...) in the ``node`` envelope slot — the acting entity is
the fault, not any one sensor — plus the entry's model ``kind``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, Optional

__all__ = [
    "STATE",
    "PROBE_TX",
    "REPLY_TX",
    "COLLISION",
    "DROP",
    "LAMBDA_HAT",
    "RATE",
    "FAIL",
    "ENERGY",
    "FAULT_ARM",
    "FAULT_FIRE",
    "FAULT_CLEAR",
    "EVENT_TYPES",
    "state",
    "probe_tx",
    "reply_tx",
    "collision",
    "drop",
    "lambda_hat",
    "rate",
    "fail",
    "energy",
    "fault_arm",
    "fault_fire",
    "fault_clear",
    "encode_event",
]

STATE = "state"
PROBE_TX = "probe_tx"
REPLY_TX = "reply_tx"
COLLISION = "collision"
DROP = "drop"
LAMBDA_HAT = "lambda_hat"
RATE = "rate"
FAIL = "fail"
ENERGY = "energy"
FAULT_ARM = "fault_arm"
FAULT_FIRE = "fault_fire"
FAULT_CLEAR = "fault_clear"

EVENT_TYPES = (
    STATE,
    PROBE_TX,
    REPLY_TX,
    COLLISION,
    DROP,
    LAMBDA_HAT,
    RATE,
    FAIL,
    ENERGY,
    FAULT_ARM,
    FAULT_FIRE,
    FAULT_CLEAR,
)


def state(
    t: float,
    node: Hashable,
    src: str,
    dst: str,
    cause: Optional[str] = None,
    rate_hz: Optional[float] = None,
) -> Dict[str, Any]:
    """A node moved between protocol modes; ``cause`` qualifies deaths and
    turnoffs, ``rate_hz`` snapshots the wakeup rate on entry to Sleeping."""
    event: Dict[str, Any] = {"t": t, "ev": STATE, "node": node, "from": src, "to": dst}
    if cause is not None:
        event["cause"] = cause
    if rate_hz is not None:
        event["rate_hz"] = rate_hz
    return event


def probe_tx(t: float, node: Hashable, wakeup: int, idx: int) -> Dict[str, Any]:
    """PROBE ``idx`` of the burst belonging to wakeup number ``wakeup``."""
    return {"t": t, "ev": PROBE_TX, "node": node, "wakeup": wakeup, "idx": idx}


def reply_tx(
    t: float, node: Hashable, lam: Optional[float], tw: float
) -> Dict[str, Any]:
    """A REPLY left ``node``: ``lam`` is the lambda-hat feedback it carries
    (null before the first usable measurement), ``tw`` its working duration."""
    return {"t": t, "ev": REPLY_TX, "node": node, "lam": lam, "tw": tw}


def collision(t: float, node: Hashable, frames: int) -> Dict[str, Any]:
    """``frames`` newly corrupted frames overlapped at receiver ``node``."""
    return {"t": t, "ev": COLLISION, "node": node, "frames": frames}


def drop(t: float, node: Hashable, why: str) -> Dict[str, Any]:
    """A frame was lost at receiver ``node``; ``why`` is one of
    ``half_duplex`` / ``random`` / ``aborted``."""
    return {"t": t, "ev": DROP, "node": node, "why": why}


def lambda_hat(t: float, node: Hashable, lam: float, window: int) -> Dict[str, Any]:
    """Working node ``node`` completed full measurement window ``window``
    with aggregate-rate estimate ``lam`` (eq. 3)."""
    return {"t": t, "ev": LAMBDA_HAT, "node": node, "lam": lam, "window": window}


def rate(
    t: float, node: Hashable, old_hz: float, new_hz: float, lam: float
) -> Dict[str, Any]:
    """Sleeper ``node`` rescaled its rate ``old_hz`` -> ``new_hz`` against
    the REPLY feedback ``lam`` (eq. 2)."""
    return {"t": t, "ev": RATE, "node": node, "old_hz": old_hz, "new_hz": new_hz, "lam": lam}


def fail(t: float, node: Hashable) -> Dict[str, Any]:
    """The failure injector destroyed ``node`` (a non-energy death)."""
    return {"t": t, "ev": FAIL, "node": node}


def energy(t: float, node: Hashable, cat: str, joules: float) -> Dict[str, Any]:
    """``joules`` were charged to accounting category ``cat`` at ``node``."""
    return {"t": t, "ev": ENERGY, "node": node, "cat": cat, "j": joules}


def fault_arm(t: float, fault: str, kind: str) -> Dict[str, Any]:
    """Fault-plan entry ``fault`` (of model ``kind``) armed its process."""
    return {"t": t, "ev": FAULT_ARM, "node": fault, "kind": kind}


def fault_fire(t: float, fault: str, kind: str, victims: int) -> Dict[str, Any]:
    """Entry ``fault`` struck, affecting ``victims`` nodes at once."""
    return {"t": t, "ev": FAULT_FIRE, "node": fault, "kind": kind, "victims": victims}


def fault_clear(t: float, fault: str, kind: str) -> Dict[str, Any]:
    """A fired instance of entry ``fault`` ended (outage restored, window
    closed); instantaneous models never emit this."""
    return {"t": t, "ev": FAULT_CLEAR, "node": fault, "kind": kind}


def encode_event(event: Dict[str, Any]) -> str:
    """Canonical single-line JSON: sorted keys, no whitespace.

    The sorted, compact form is what makes golden traces byte-stable: two
    runs that emit equal event dicts produce equal NDJSON bytes.
    """
    return json.dumps(event, sort_keys=True, separators=(",", ":"))
