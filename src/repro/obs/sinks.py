"""Trace sinks: where emitted events go.

All sinks share a tiny duck-typed surface — ``emit(event)``, ``close()``,
and the ``emitted`` / ``dropped`` counters — so the tracer, the manifest
and tests treat them interchangeably:

* :class:`NullSink` — discards everything.  Components additionally treat
  a tracer wrapping a null sink as *no tracer at all* (see
  :class:`~repro.obs.tracer.Tracer.active`), so the disabled default costs
  one ``is not None`` check per site — the PR-1 fast path keeps its
  numbers.
* :class:`RingBufferSink` — bounded in-memory buffer keeping the newest
  events.  Unlike the legacy ``sim.trace.TraceLog`` (which silently
  stopped recording at capacity) evictions are counted and exposed via
  ``dropped``.
* :class:`NdjsonSink` — streams canonical NDJSON lines to a file, with
  optional size-based rotation for long runs.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Protocol, Union

from .events import encode_event

__all__ = ["TraceSink", "NullSink", "RingBufferSink", "NdjsonSink"]


class TraceSink(Protocol):
    """What the tracer needs from a sink."""

    emitted: int
    dropped: int

    def emit(self, event: Dict[str, Any]) -> None: ...

    def close(self) -> None: ...


class NullSink:
    """Discards every event (the default: tracing off)."""

    __slots__ = ("emitted", "dropped")

    def __init__(self) -> None:
        self.emitted = 0
        self.dropped = 0

    def emit(self, event: Dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the newest ``capacity`` events in memory.

    When full, the oldest event is evicted and ``dropped`` is incremented —
    the buffer never lies about completeness the way the superseded
    ``TraceLog`` capacity cap did.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.emitted = 0
        self.dropped = 0
        self._buffer: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def emit(self, event: Dict[str, Any]) -> None:
        self.emitted += 1
        if self.capacity is not None and len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def close(self) -> None:
        pass

    def events(self, ev_type: Optional[str] = None) -> List[Dict[str, Any]]:
        """Snapshot of the retained events, optionally filtered by type."""
        if ev_type is None:
            return list(self._buffer)
        return [event for event in self._buffer if event.get("ev") == ev_type]

    def __len__(self) -> int:
        return len(self._buffer)


class NdjsonSink:
    """Writes one canonical JSON line per event to ``path``.

    Parameters
    ----------
    path:
        Output file; truncated on open.
    rotate_bytes:
        When set, the stream rotates once the current file would exceed
        this size: the active file is closed and the next one opens as
        ``<stem>.1<suffix>``, ``<stem>.2<suffix>``, ...  ``path`` always
        holds the *first* chunk so downstream tooling finds the run start.
    """

    def __init__(
        self, path: Union[str, Path], rotate_bytes: Optional[int] = None
    ) -> None:
        if rotate_bytes is not None and rotate_bytes < 1024:
            raise ValueError("rotate_bytes must be at least 1 KiB")
        self.path = Path(path)
        self.rotate_bytes = rotate_bytes
        self.emitted = 0
        self.dropped = 0
        self.rotations = 0
        self._written = 0
        self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, event: Dict[str, Any]) -> None:
        line = encode_event(event) + "\n"
        if (
            self.rotate_bytes is not None
            and self._written > 0
            and self._written + len(line) > self.rotate_bytes
        ):
            self._rotate()
        self._handle.write(line)
        self._written += len(line)
        self.emitted += 1

    def _rotate(self) -> None:
        self._handle.close()
        self.rotations += 1
        chunk = self.path.with_name(
            f"{self.path.stem}.{self.rotations}{self.path.suffix}"
        )
        self._handle = open(chunk, "w", encoding="utf-8")
        self._written = 0

    def chunk_paths(self) -> List[Path]:
        """Every file this sink has written, in emission order."""
        return [self.path] + [
            self.path.with_name(f"{self.path.stem}.{i}{self.path.suffix}")
            for i in range(1, self.rotations + 1)
        ]

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
