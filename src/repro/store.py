"""``repro.store``: a content-addressed, crash-safe run-result store.

Sweeps are the expensive artifact of this reproduction: a fig-12-style
battery is hundreds of multi-minute simulations, and losing them to a
killed pool or a poison seed is exactly the fragility the PEAS paper's
*protocol* is designed to avoid.  The store makes completed runs durable
and addressable the moment they finish:

* **Key** — each record is keyed by a digest over ``(scenario
  config_hash, seed, code fingerprint, payload-affecting options,
  warm-start marker)``.  The config hash is the figure-row identity the
  manifests already carry; the code fingerprint (see
  :func:`repro.obs.manifest.code_fingerprint`) hashes the actual source
  bytes so editing *any* simulation code invalidates the cache even in a
  dirty working tree where a git SHA would lie.
* **Durability** — records are single JSON documents written via the
  shared :func:`repro.obs.atomic.atomic_write_text` write-then-rename
  helper: a record either exists completely or not at all, and pooled
  workers may publish concurrently without locks.
* **Honesty** — every record embeds a SHA-256 digest of its canonical
  result payload.  :meth:`ResultStore.get` recomputes the digest on every
  read; a mismatch (bit rot, torn copy, hand editing) quarantines the
  file and reports a miss — a corrupt record is *recomputed, never
  trusted*.
* **Audit** — every hit / miss / put / evict / quarantine appends one
  NDJSON line to ``journal.ndjson``, so ``peas-repro store stats`` can
  answer "how much did the cache actually save" after the fact and CI can
  assert a second sweep pass was 100% hits.

Layout under the store root::

    store.json            peas-store/1 marker + creating fingerprint
    journal.ndjson        append-only operation audit trail
    results/<key>.json    peas-result/1 records (atomic, content-keyed)
    snapshots/*.json      warm-start burn-in snapshots (peas-snapshot/1)
    quarantine/           corrupt files moved aside, never deleted

The full contract (key derivation, journal format, GC, retry policy of
the executor that sits on top) is specified in ``docs/STORE.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from .obs.atomic import atomic_write_text
from .obs.manifest import code_fingerprint, config_hash

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from .experiments.metrics import RunResult
    from .experiments.scenario import Scenario
    from .harness.options import RunOptions

__all__ = [
    "RESULT_SCHEMA",
    "STORE_SCHEMA",
    "StoreError",
    "ResultStore",
    "store_eligible",
    "options_signature",
]

STORE_SCHEMA = "peas-store/1"

#: Schema marker of one stored run record (the document wrapping the
#: serialized :class:`~repro.experiments.metrics.RunResult` payload).
RESULT_SCHEMA = "peas-result/1"

#: Journal operations the store will ever append (anything else in a
#: journal line means a foreign writer; ``stats`` reports it as unknown).
JOURNAL_OPS = ("hit", "miss", "put", "evict", "quarantine")


class StoreError(RuntimeError):
    """Raised on store misuse: missing root on attach, foreign layout."""


def store_eligible(options: Optional["RunOptions"]) -> bool:
    """Whether a run under ``options`` may be served from / saved to the store.

    Only side-effect-free runs are cacheable: a run asked to emit a trace
    file or snapshot produces artifacts a cache replay would silently
    skip, and ``stop_after_s`` prefix runs exist to *be* interrupted.
    ``None`` options (the harness default) are eligible.
    """
    if options is None:
        return True
    return (
        options.trace_path is None
        and options.snapshot_path is None
        and options.checkpoint_every_s is None
        and options.stop_after_s is None
    )


def options_signature(options: Optional["RunOptions"]) -> Dict[str, bool]:
    """The payload-affecting subset of :class:`RunOptions`, for the cache key.

    ``profile`` and ``metrics`` change the result object (extra blocks on
    it); ``sanitize`` is documented bit-identical but is included anyway —
    a sanitized run vouches for more than an unsanitized one, and the
    cache must never launder that distinction.
    """
    if options is None:
        return {"profile": False, "sanitize": False, "metrics": False}
    return {
        "profile": bool(options.profile),
        "sanitize": bool(options.sanitize),
        "metrics": bool(options.metrics),
    }


def _canonical_json(payload: Any) -> str:
    """The canonical encoding digests are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _payload_digest(result_payload: Dict[str, Any]) -> str:
    """SHA-256 over the canonical encoding of a serialized result."""
    return hashlib.sha256(_canonical_json(result_payload).encode("utf-8")).hexdigest()


class ResultStore:
    """A directory-backed store of ``peas-result/1`` records.

    Parameters
    ----------
    root:
        Store directory.  Created (with the ``peas-store/1`` marker) when
        ``create=True``; with ``create=False`` the directory must already
        be a store — that is what ``--resume`` uses to refuse typos.
    """

    def __init__(self, root: Union[str, Path], *, create: bool = True) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.snapshots_dir = self.root / "snapshots"
        self.quarantine_dir = self.root / "quarantine"
        self.journal_path = self.root / "journal.ndjson"
        self.marker_path = self.root / "store.json"
        self.code_fingerprint = code_fingerprint()
        #: Per-process counters for telemetry; the journal is the durable
        #: cross-process record, these feed ``peas_store_*`` gauges for
        #: *this* sweep only.
        self.session: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "evictions": 0,
            "quarantined": 0,
        }
        if self.marker_path.exists():
            marker = json.loads(self.marker_path.read_text(encoding="utf-8"))
            if marker.get("schema") != STORE_SCHEMA:
                raise StoreError(
                    f"{self.root}: not a {STORE_SCHEMA} store "
                    f"(schema={marker.get('schema')!r})"
                )
        elif create:
            for directory in (
                self.root,
                self.results_dir,
                self.snapshots_dir,
                self.quarantine_dir,
            ):
                directory.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                self.marker_path,
                json.dumps(
                    {
                        "schema": STORE_SCHEMA,
                        "created_by_fingerprint": self.code_fingerprint,
                    },
                    sort_keys=True,
                )
                + "\n",
            )
        else:
            raise StoreError(f"{self.root}: no {STORE_SCHEMA} store here")
        # An attached pre-existing store may predate a subdirectory.
        for directory in (self.results_dir, self.snapshots_dir, self.quarantine_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------
    def key_for(
        self,
        scenario: "Scenario",
        options: Optional["RunOptions"] = None,
        *,
        warm_burn_in_s: Optional[float] = None,
    ) -> str:
        """The content-address of one ``(scenario, seed)`` run.

        The digest covers the scenario's full ``config_hash`` (seed
        included), the source-tree fingerprint, the payload-affecting
        options signature, and the warm-start burn-in marker — a
        warm-started run's result is *not* interchangeable with a cold
        one (the fault surface arms mid-run), so the two must never share
        a cache slot.
        """
        from .experiments.serialize import scenario_to_dict

        payload = {
            "config_hash": config_hash(scenario_to_dict(scenario)),
            "seed": int(scenario.seed),
            "code_fingerprint": self.code_fingerprint,
            "options": options_signature(options),
            "warm_burn_in_s": warm_burn_in_s,
        }
        return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()[:32]

    def record_path(self, key: str) -> Path:
        """Where the record for ``key`` lives (whether or not it exists)."""
        return self.results_dir / f"{key}.json"

    def snapshot_target(self, digest: str) -> Path:
        """Where a warm-start burn-in snapshot for config ``digest`` lives.

        The current code fingerprint is part of the file name: a snapshot
        taken by different source code is simply never *found*, so stale
        burn-ins age out to the GC instead of poisoning forked variants.
        """
        return (
            self.snapshots_dir
            / f"burn-in-{digest}-{self.code_fingerprint[:12]}.json"
        )

    # ------------------------------------------------------------------
    # record operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional["RunResult"]:
        """The stored result for ``key``, or ``None``.

        Verifies the embedded payload digest on every read.  Undecodable
        documents, schema/key mismatches, digest mismatches, and payloads
        that fail deserialization are all quarantined (moved aside and
        journaled) and reported as a miss — never trusted, never deleted.
        A verified hit is journaled here; callers journal misses via
        :meth:`note_miss` only when they go on to recompute, so a probe
        that merely checks for work does not inflate the miss count.
        """
        from .experiments.serialize import result_from_dict

        path = self.record_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None
        try:
            record = json.loads(text)
        except ValueError:
            self._quarantine(path, reason="undecodable")
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema") != RESULT_SCHEMA
            or record.get("key") != key
        ):
            self._quarantine(path, reason="schema-mismatch")
            return None
        result_payload = record.get("result")
        if (
            not isinstance(result_payload, dict)
            or _payload_digest(result_payload) != record.get("digest")
        ):
            self._quarantine(path, reason="digest-mismatch")
            return None
        try:
            result = result_from_dict(result_payload)
        except (KeyError, TypeError, ValueError):
            self._quarantine(path, reason="payload-invalid")
            return None
        self.session["hits"] += 1
        self._journal("hit", key=key)
        return result

    def put(
        self,
        key: str,
        result: "RunResult",
        scenario: "Scenario",
        options: Optional["RunOptions"] = None,
        *,
        warm_burn_in_s: Optional[float] = None,
    ) -> Path:
        """Persist ``result`` under ``key`` (atomic; safe from pool workers).

        Concurrent writers of the same key both hold a valid record for
        the same deterministic run, so last-rename-wins is correct.
        """
        from .experiments.serialize import result_to_dict, scenario_to_dict

        result_payload = result_to_dict(result)
        record = {
            "schema": RESULT_SCHEMA,
            "key": key,
            "config_hash": config_hash(scenario_to_dict(scenario)),
            "seed": int(scenario.seed),
            "protocol": scenario.protocol,
            "code_fingerprint": self.code_fingerprint,
            "options": options_signature(options),
            "warm_burn_in_s": warm_burn_in_s,
            "digest": _payload_digest(result_payload),
            "result": result_payload,
        }
        path = atomic_write_text(
            self.record_path(key), json.dumps(record, sort_keys=True) + "\n"
        )
        self.session["puts"] += 1
        self._journal("put", key=key)
        return path

    def note_miss(self, key: str) -> None:
        """Journal that ``key`` was absent and is being recomputed."""
        self.session["misses"] += 1
        self._journal("miss", key=key)

    def note_snapshot(self, op: str, name: str) -> None:
        """Journal a warm-start snapshot operation (``hit``/``miss``/``put``)."""
        if op not in ("hit", "miss", "put"):
            raise StoreError(f"invalid snapshot journal op {op!r}")
        self._journal(op, name=name, what="snapshot")

    def snapshot_valid(self, path: Path) -> bool:
        """Whether ``path`` holds a structurally sound burn-in snapshot.

        A file that exists but does not parse as a ``peas-snapshot/1``
        document is quarantined (same corrupt-record contract as results)
        so the caller re-runs the burn-in instead of crashing on restore.
        """
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return False
        try:
            document = json.loads(text)
        except ValueError:
            document = None
        if not isinstance(document, dict) or document.get("format") != "peas-snapshot/1":
            self._quarantine(path, reason="snapshot-invalid")
            return False
        return True

    # ------------------------------------------------------------------
    # maintenance: stats / verify / gc
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Occupancy, staleness, and the journal's lifetime tallies."""
        records = sorted(self.results_dir.glob("*.json"))
        snapshots = sorted(self.snapshots_dir.glob("*.json"))
        stale = 0
        for path in records:
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                stale += 1
                continue
            if record.get("code_fingerprint") != self.code_fingerprint:
                stale += 1
        return {
            "schema": "peas-store-stats/1",
            "root": str(self.root),
            "code_fingerprint": self.code_fingerprint,
            "records": len(records),
            "record_bytes": sum(p.stat().st_size for p in records),
            "stale_records": stale,
            "snapshots": len(snapshots),
            "snapshot_bytes": sum(p.stat().st_size for p in snapshots),
            "quarantined_files": sum(
                1 for p in self.quarantine_dir.iterdir() if p.is_file()
            ),
            "journal": self._journal_tallies(),
            "session": dict(self.session),
        }

    def verify(self) -> Dict[str, Any]:
        """Re-verify every record and snapshot; quarantine what fails.

        Runs the exact read-side checks of :meth:`get` over the whole
        store.  Returns counts plus the quarantined file names; a nonzero
        ``quarantined`` count is the CLI's exit-1 signal.
        """
        quarantined: List[str] = []
        checked = 0
        for path in sorted(self.results_dir.glob("*.json")):
            checked += 1
            before = self.session["quarantined"]
            key = path.stem
            hits_before = self.session["hits"]
            if self.get(key) is None and self.session["quarantined"] > before:
                quarantined.append(path.name)
            # verify() is an audit, not a lookup: undo the hit accounting.
            self.session["hits"] = hits_before
        for path in sorted(self.snapshots_dir.glob("*.json")):
            checked += 1
            before = self.session["quarantined"]
            if not self.snapshot_valid(path) and self.session["quarantined"] > before:
                quarantined.append(path.name)
        return {
            "schema": "peas-store-verify/1",
            "checked": checked,
            "ok": checked - len(quarantined),
            "quarantined": quarantined,
        }

    def gc(
        self,
        *,
        stale: bool = True,
        max_age_days: Optional[float] = None,
        drop_all: bool = False,
    ) -> Dict[str, Any]:
        """Evict records and snapshots that can no longer serve a hit.

        The default policy evicts records whose ``code_fingerprint`` does
        not match the current source tree (they are unreachable — no key
        computed today can find them) and snapshots whose file name
        carries a foreign fingerprint.  ``max_age_days`` additionally
        evicts by file age; ``drop_all`` clears the store.  Quarantined
        files are never touched: they are the corruption evidence.
        """
        evicted: List[str] = []
        now = time.time()
        for path in sorted(self.results_dir.glob("*.json")):
            evict = drop_all
            if not evict and stale:
                try:
                    record = json.loads(path.read_text(encoding="utf-8"))
                    fingerprint = record.get("code_fingerprint")
                except (OSError, ValueError):
                    fingerprint = None
                evict = fingerprint != self.code_fingerprint
            if not evict and max_age_days is not None:
                evict = (now - path.stat().st_mtime) > max_age_days * 86400.0
            if evict:
                path.unlink()
                evicted.append(path.name)
                self.session["evictions"] += 1
                self._journal("evict", key=path.stem)
        marker = f"-{self.code_fingerprint[:12]}.json"
        for path in sorted(self.snapshots_dir.glob("*.json")):
            evict = drop_all
            if not evict and stale:
                evict = not path.name.endswith(marker)
            if not evict and max_age_days is not None:
                evict = (now - path.stat().st_mtime) > max_age_days * 86400.0
            if evict:
                path.unlink()
                evicted.append(path.name)
                self.session["evictions"] += 1
                self._journal("evict", name=path.name, what="snapshot")
        return {
            "schema": "peas-store-gc/1",
            "evicted": len(evicted),
            "files": evicted,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, *, reason: str) -> None:
        """Move a corrupt file aside (never delete it) and journal why."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        destination = self.quarantine_dir / path.name
        suffix = 0
        while destination.exists():
            suffix += 1
            destination = self.quarantine_dir / f"{path.name}.{suffix}"
        try:
            os.replace(path, destination)
        except OSError:
            return  # a concurrent reader already moved it
        self.session["quarantined"] += 1
        self._journal("quarantine", name=path.name, reason=reason)

    def _journal(self, op: str, **fields: Optional[str]) -> None:
        """Append one audit line; fsynced so a crash cannot lose the tail.

        A torn final line (crash mid-append) is tolerated by the reader:
        :meth:`_journal_tallies` counts it as ``torn`` and moves on.
        """
        entry: Dict[str, Any] = {"op": op}
        entry.update({k: v for k, v in fields.items() if v is not None})
        line = json.dumps(entry, sort_keys=True) + "\n"
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def _journal_tallies(self) -> Dict[str, int]:
        """Lifetime operation counts parsed back out of the journal."""
        tallies: Dict[str, int] = {op: 0 for op in JOURNAL_OPS}
        tallies["torn"] = 0
        for op in JOURNAL_OPS:
            tallies[f"snapshot_{op}"] = 0
        try:
            text = self.journal_path.read_text(encoding="utf-8")
        except OSError:
            return tallies
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                tallies["torn"] += 1
                continue
            op = entry.get("op") if isinstance(entry, dict) else None
            if isinstance(entry, dict) and entry.get("what") == "snapshot":
                name = f"snapshot_{op}"
                if name in tallies:
                    tallies[name] += 1
                else:
                    tallies["torn"] += 1
            elif op in tallies:
                tallies[op] += 1
            else:
                tallies["torn"] += 1
        return tallies
