"""K-coverage computation and coverage-lifetime tracking (§5.1 metrics)."""

from .grid import CoverageGrid
from .tracker import CoverageTracker, lifetime_from_series

__all__ = ["CoverageGrid", "CoverageTracker", "lifetime_from_series"]
