"""Coverage lifetime tracking over a running PEAS network.

Couples a :class:`~repro.coverage.grid.CoverageGrid` to the protocol's
working-set observer stream and samples K-coverage fractions periodically.
The *lifetime of K-coverage* follows §5.1: the time from the beginning until
K-coverage drops below the threshold (90 % in the paper) — measured after
the boot-up ramp has first reached the threshold, since the network starts
with zero working nodes and acquires them during the boot phase (§2.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from ..sim import PeriodicProcess, SeriesRecorder, Simulator, register_handler
from ..sim.handlers import RestoreContext
from .grid import CoverageGrid
from ..net.field import Point

__all__ = ["CoverageTracker", "lifetime_from_series"]


def lifetime_from_series(
    samples: Sequence, threshold: float
) -> Optional[float]:
    """First time the series drops below ``threshold`` after having reached it.

    Returns ``None`` when the threshold was never reached (the network never
    booted to the required coverage) and the last sample time when coverage
    never dropped (censored observation).
    """
    achieved = False
    last_time = None
    for time, value in samples:
        last_time = time
        if not achieved:
            if value >= threshold:
                achieved = True
            continue
        if value < threshold:
            return time
    if not achieved:
        return None
    return last_time


class CoverageTracker:
    """Samples K-coverage of the working set over time.

    Usage: construct, then ``network.working_observers.append(tracker.on_working_change)``
    and ``tracker.start()``; after the run query :meth:`lifetime`.
    """

    def __init__(
        self,
        sim: Simulator,
        grid: CoverageGrid,
        ks: Sequence[int] = (3, 4, 5),
        sample_interval_s: float = 10.0,
        threshold: float = 0.90,
    ) -> None:
        if not ks:
            raise ValueError("ks must be non-empty")
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        self.sim = sim
        self.grid = grid
        self.ks = tuple(ks)
        self.threshold = threshold
        self.series = SeriesRecorder()
        self._sampler = PeriodicProcess(
            sim,
            sample_interval_s,
            self._sample,
            label="coverage-sample",
            handler=("coverage.sample", ()),
        )
        self.working_count = 0

    # ------------------------------------------------------------- plumbing
    def on_working_change(self, time: float, node, started: bool) -> None:
        """Observer for :class:`~repro.core.protocol.PEASNetwork`."""
        if started:
            self.grid.add_node(node.position)
            self.working_count += 1
        else:
            self.grid.remove_node(node.position)
            self.working_count -= 1

    def start(self) -> None:
        self._sample()  # t = 0 baseline
        self._sampler.start()

    def stop(self) -> None:
        self._sampler.stop()

    # -------------------------------------------------------------- queries
    def current_fractions(self) -> Dict[int, float]:
        return self.grid.fractions(self.ks)

    def lifetime(self, k: int) -> Optional[float]:
        """K-coverage lifetime at this tracker's threshold (§5.1)."""
        return lifetime_from_series(
            self.series.samples(self._series_name(k)), self.threshold
        )

    def lifetimes(self) -> Dict[int, Optional[float]]:
        return {k: self.lifetime(k) for k in self.ks}

    # ------------------------------------------------------------- snapshot
    def state_dict(self) -> dict:
        """Serializable sampling state; the coverage lattice itself is
        derived (a pure function of the working set) and rebuilt on load."""
        return {
            "series": self.series.state_dict(),
            "working_count": self.working_count,
        }

    def load_state(self, state: dict, working_positions: Iterable[Point]) -> None:
        """Restore sampling state and rebuild the lattice by re-covering
        every currently-working position (counts are additive, so the
        iteration order does not matter).  The pending sample event comes
        back through the engine queue — do not call :meth:`start` after a
        restore."""
        self.series.load_state(state["series"])
        self.working_count = int(state["working_count"])
        for position in working_positions:
            self.grid.add_node(position)

    # ------------------------------------------------------------ internals
    @staticmethod
    def _series_name(k: int) -> str:
        return f"coverage_{k}"

    def _sample(self) -> None:
        now = self.sim.now
        for k in self.ks:
            self.series.record(self._series_name(k), now, self.grid.fraction(k))
        self.series.record("working_count", now, float(self.working_count))


@register_handler("coverage.sample")
def _resolve_coverage_sample(ctx: RestoreContext, event) -> None:
    ctx.component("coverage")._sampler.adopt(event)
