"""Incremental K-coverage computation on a sampling lattice.

§5.1 of the paper: "The sensing coverage is defined as the percentage of the
field monitored by working nodes.  An application may require that each
point in the field be monitored by at least K working nodes ... We define
K-coverage as the percentage of the field size monitored by at least K
working nodes."

The field is sampled on a regular lattice (default 1 m).  Each sample point
keeps the count of working nodes whose sensing disk covers it; adding or
removing a working node touches only the points inside its disk (a numpy
boolean mask over the disk's bounding box).  Cumulative counters
``points with count >= K`` are maintained via threshold-crossing counts so
that coverage fractions are O(1) to read.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..net.field import Field, Point

__all__ = ["CoverageGrid"]


class CoverageGrid:
    """Exact K-coverage over lattice sample points.

    Parameters
    ----------
    field:
        The deployment area.
    sensing_range:
        Radius of each working node's sensing disk (paper: 10 m).
    resolution:
        Lattice spacing in meters (1 m default; 2500+ points on the paper's
        50 x 50 field).
    max_k:
        Largest K for which the ``fraction`` query is O(1).
    """

    def __init__(
        self,
        field: Field,
        sensing_range: float = 10.0,
        resolution: float = 1.0,
        max_k: int = 6,
    ) -> None:
        if sensing_range <= 0:
            raise ValueError("sensing_range must be positive")
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        if max_k < 1:
            raise ValueError("max_k must be >= 1")
        self.field = field
        self.sensing_range = float(sensing_range)
        self.resolution = float(resolution)
        self.max_k = max_k

        nx = int(np.floor(field.width / resolution)) + 1
        ny = int(np.floor(field.height / resolution)) + 1
        self._xs = np.arange(nx, dtype=np.float64) * resolution
        self._ys = np.arange(ny, dtype=np.float64) * resolution
        self._counts = np.zeros((nx, ny), dtype=np.int32)
        #: row-major view over the same buffer; disk index arrays address it
        self._counts_flat = self._counts.reshape(-1)
        self.num_points = nx * ny
        #: number of sample points covered by at least K nodes, K = 1..max_k
        self._num_ge = np.zeros(max_k + 1, dtype=np.int64)
        self._num_ge[0] = self.num_points
        #: position -> flat lattice indices of its sensing disk.  Nodes are
        #: stationary, so each position's disk geometry is computed exactly
        #: once and every later add/remove is a pure gather/scatter.  The
        #: index order equals the row-major order of the old mask gather,
        #: keeping the bincount inputs (and so all counters) byte-identical.
        self._disk_index: Dict[Point, np.ndarray] = {}

    # -------------------------------------------------------------- queries
    def fraction(self, k: int) -> float:
        """Fraction of the field covered by at least ``k`` working nodes."""
        if k <= 0:
            return 1.0
        if k > self.max_k:
            # Rare path (beyond the maintained counters): compute directly.
            return float(np.count_nonzero(self._counts >= k)) / self.num_points
        return self._num_ge[k] / self.num_points

    def fractions(self, ks: Tuple[int, ...]) -> Dict[int, float]:
        return {k: self.fraction(k) for k in ks}

    def count_at(self, point: Point) -> int:
        """Coverage count at the lattice point nearest ``point``."""
        ix = int(round(point[0] / self.resolution))
        iy = int(round(point[1] / self.resolution))
        ix = min(max(ix, 0), self._counts.shape[0] - 1)
        iy = min(max(iy, 0), self._counts.shape[1] - 1)
        return int(self._counts[ix, iy])

    # ------------------------------------------------------------- mutation
    def add_node(self, position: Point) -> None:
        """A node at ``position`` started working: cover its sensing disk."""
        self._apply(position, +1)

    def remove_node(self, position: Point) -> None:
        """A node at ``position`` stopped working: uncover its disk."""
        self._apply(position, -1)

    # ------------------------------------------------------------ internals
    def _disk_slice(self, position: Point):
        px, py = position
        r = self.sensing_range
        res = self.resolution
        x_lo = max(0, int(np.ceil((px - r) / res)))
        x_hi = min(len(self._xs) - 1, int(np.floor((px + r) / res)))
        y_lo = max(0, int(np.ceil((py - r) / res)))
        y_hi = min(len(self._ys) - 1, int(np.floor((py + r) / res)))
        if x_lo > x_hi or y_lo > y_hi:
            return None
        dx = self._xs[x_lo : x_hi + 1, None] - px
        dy = self._ys[None, y_lo : y_hi + 1] - py
        mask = dx * dx + dy * dy <= r * r
        return (slice(x_lo, x_hi + 1), slice(y_lo, y_hi + 1)), mask

    def _disk_flat_index(self, position: Point) -> np.ndarray:
        """Flat (row-major) lattice indices inside ``position``'s disk."""
        index = self._disk_index.get(position)
        if index is None:
            located = self._disk_slice(position)
            if located is None:
                index = np.empty(0, dtype=np.int64)
            else:
                (x_win, y_win), mask = located
                xi, yi = np.nonzero(mask)
                ny = len(self._ys)
                index = (xi + x_win.start) * ny + (yi + y_win.start)
            self._disk_index[position] = index
        return index

    def _apply(self, position: Point, delta: int) -> None:
        flat = self._disk_flat_index(position)
        if flat.size == 0:
            return
        counts = self._counts_flat
        before = counts[flat]
        if delta < 0 and before.min() <= 0:
            raise ValueError(
                f"removing node at {position} would drive a coverage count negative"
            )
        # Threshold crossings: adding moves points with count K-1 into the
        # ">= K" bucket; removing moves points with count K out of it.
        # ``minlength`` guarantees bins[0..max_k] exist, so both updates are
        # single vectorized slice operations.
        bins = np.bincount(before, minlength=self.max_k + 1)
        if delta > 0:
            self._num_ge[1:] += bins[: self.max_k]
        else:
            self._num_ge[1:] -= bins[1 : self.max_k + 1]
        counts[flat] = before + delta
