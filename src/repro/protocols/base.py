"""The generic protocol interface the run harness composes against.

The paper's §5 comparisons are meaningful only because every protocol runs
under an identical substrate — same deployment, channel, coverage tracker,
failure injector, traffic generator and metrics.  A :class:`ProtocolRun`
is the narrow adapter between that shared substrate (assembled once, in
:mod:`repro.harness`) and one protocol's machinery: it owns the network
object and answers the few protocol-specific questions the harness has
(how to start, how to build a routing topology, which energy counts as
control overhead, ...).

A :class:`ProtocolSpec` is the registry entry: a name plus a builder that
instantiates the adapter for a scenario.  PEAS itself is just the default
entry (see :mod:`repro.protocols.peas`); the six baseline schemes register
through :mod:`repro.protocols.baseline`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, FrozenSet, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..energy import EnergyReport
    from ..experiments.scenario import Scenario
    from ..obs.tracer import Tracer
    from ..routing import WorkingTopology
    from ..sim import RngRegistry, Simulator

__all__ = ["ProtocolRun", "ProtocolSpec"]

#: Signature of a per-report forwarding hook (see ReportTraffic.path_hook).
PathHook = Callable[[list], None]


class ProtocolRun(ABC):
    """One instantiated protocol, ready to run under the shared harness.

    Concrete adapters expose ``network`` — anything with the observer
    surface of :class:`~repro.core.protocol.PEASNetwork` (``start``,
    ``kill``, ``alive_ids``, ``all_dead``, ``counters``,
    ``working_observers``, ``energy_report``, ``nodes``, ``field``) — plus
    the protocol-specific answers below.  Everything else (coverage,
    gaps, traffic, failures, tracing, profiling, sanitizing, manifests)
    is shared harness code.
    """

    #: The population container; observers and the failure injector attach here.
    network: Any

    @abstractmethod
    def start(self) -> None:
        """Start the network and any protocol coordination processes."""

    @abstractmethod
    def topology(self, scenario: "Scenario") -> "WorkingTopology":
        """A working-set topology for GRAB routing over this network."""

    def total_wakeups(self) -> int:
        """Protocol wakeup count (§5's Fig 11 metric; 0 where undefined)."""
        return 0

    def energy_overhead_j(self, energy: "EnergyReport") -> float:
        """Joules charged to protocol coordination (Table 1's numerator)."""
        return 0.0

    def channel_counters(self) -> Dict[str, int]:
        """Radio-channel accounting, empty for protocols without a channel."""
        return {}

    def report_path_hook(self, scenario: "Scenario") -> Optional[PathHook]:
        """Optional per-report forwarding-energy hook (``None``: uncharged)."""
        return None

    def mac_layout(self, scenario: "Scenario") -> Optional[Dict[str, Any]]:
        """Control-plane MAC window layout for the manifest (``None``: n/a)."""
        return None

    def state_dict(self) -> Dict[str, Any]:
        """Protocol-layer snapshot state (peas-snapshot/1).

        The default refuses: a protocol is snapshottable only when every
        event it schedules carries a handler descriptor and its mutable
        state round-trips.  Adapters that support it override both methods.
        """
        from ..sim.handlers import SnapshotError

        raise SnapshotError(
            f"protocol adapter {type(self).__name__} does not support "
            "snapshots"
        )

    def load_state(self, state: Dict[str, Any]) -> None:
        from ..sim.handlers import SnapshotError

        raise SnapshotError(
            f"protocol adapter {type(self).__name__} does not support "
            "snapshots"
        )

    def fault_capabilities(self) -> FrozenSet[str]:
        """Fault-plan model kinds this protocol can run under.

        Every network exposes ``kill``/``alive_ids``, so crashes and
        region kills always apply; the radio-level and timer-level models
        (bursty loss, transient outage, clock drift) need a channel and
        stun/skew-capable nodes, which only some protocols have.  The
        fault engine rejects unsupported plan entries at construction.
        """
        return frozenset({"crash", "region_kill"})


#: Builds an adapter for one scenario on a fresh simulator/RNG registry.
ProtocolBuilder = Callable[
    ["Scenario", "Simulator", "RngRegistry", Optional["Tracer"]], ProtocolRun
]


@dataclass(frozen=True)
class ProtocolSpec:
    """A named, registrable protocol: what ``Scenario.protocol`` points at."""

    name: str
    #: "peas" for the paper's protocol, "baseline" for §6-style comparisons.
    kind: str
    description: str
    build: ProtocolBuilder
