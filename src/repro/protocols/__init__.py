"""Protocol registry: PEAS and the baseline schemes behind one interface.

Every runnable protocol — PEAS itself and the six §6-style baselines — is a
:class:`~repro.protocols.base.ProtocolSpec` in one registry, so
``Scenario.protocol`` selects a protocol declaratively and the shared run
harness (:mod:`repro.harness`) composes the identical substrate around any
of them.  ``run_sweep`` can therefore sweep protocols exactly like
populations or failure rates.

>>> from repro.protocols import protocol_names
>>> protocol_names()  # doctest: +NORMALIZE_WHITESPACE
['afeca', 'always_on', 'duty_cycle', 'gaf', 'peas', 'span', 'synchronized']
"""

from .base import ProtocolRun, ProtocolSpec
from .baseline import BaselineRun, baseline_spec, register_baseline_factories
from .peas import PEAS_SPEC, PeasRun, build_network
from .registry import PROTOCOLS, get_protocol, protocol_names, register_protocol

__all__ = [
    "ProtocolRun",
    "ProtocolSpec",
    "PeasRun",
    "BaselineRun",
    "build_network",
    "baseline_spec",
    "register_protocol",
    "get_protocol",
    "protocol_names",
    "PROTOCOLS",
    "PEAS_SPEC",
]

if PEAS_SPEC.name not in PROTOCOLS:
    register_protocol(PEAS_SPEC)
register_baseline_factories()
