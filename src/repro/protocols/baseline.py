"""The §6 baseline schemes as registry entries.

:class:`BaselineRun` adapts a :class:`~repro.baselines.base.BaselineNetwork`
plus one concrete scheduling protocol (from
:data:`~repro.baselines.runner.BASELINE_FACTORIES`, or any custom
``factory(network, rngs)``) to the generic harness interface.  Because the
substrate is shared harness code, every baseline automatically supports
tracing, profiling, sanitizing, manifests and sweeps — the capabilities
only PEAS used to have.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from ..net import DEPLOYMENTS, Field, NeighborCache, make_spatial_grid
from ..routing import WorkingTopology
from .base import ProtocolRun, ProtocolSpec
from .registry import register_protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..energy import EnergyReport
    from ..experiments.scenario import Scenario
    from ..obs.tracer import Tracer
    from ..sim import RngRegistry, Simulator

__all__ = ["BaselineRun", "baseline_spec", "register_baseline_factories"]

#: Energy categories charged by baseline coordination logic (the analogue
#: of PEAS's probe/reply control-plane overhead in Table 1 comparisons).
OVERHEAD_CATEGORIES = frozenset({"election"})


class BaselineRun(ProtocolRun):
    """A baseline scheduling protocol behind the generic harness interface."""

    def __init__(
        self,
        scenario: "Scenario",
        sim: "Simulator",
        rngs: "RngRegistry",
        factory: Callable,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        from ..baselines.base import BaselineNetwork

        field = Field(*scenario.field_size)
        self.positions = DEPLOYMENTS[scenario.deployment](
            field, scenario.num_nodes, rngs.stream("deployment")
        )
        self.network = BaselineNetwork(
            sim,
            field,
            self.positions,
            profile=scenario.profile,
            battery_rng=rngs.stream("battery"),
        )
        self.protocol = factory(self.network, rngs)

    def start(self) -> None:
        self.network.start()
        self.protocol.start()

    def topology(self, scenario: "Scenario") -> WorkingTopology:
        # Baselines have no control-plane spatial index; build one over the
        # full deployment so GRAB sees the same geometry as under PEAS.
        spatial = make_spatial_grid(
            self.network.field, cell_size=scenario.config.probe_range_m
        )
        cache = NeighborCache(spatial)
        spatial.bulk_insert((i, p) for i, p in enumerate(self.positions))
        return WorkingTopology(
            spatial, comm_range=scenario.comm_range_m, neighbors=cache
        )

    def energy_overhead_j(self, energy: "EnergyReport") -> float:
        return sum(
            joules
            for category, joules in energy.by_category.items()
            if category in OVERHEAD_CATEGORIES
        )

    def state_dict(self) -> Dict[str, Any]:
        # The population state covers stateless schedulers (always_on,
        # duty_cycle — their pending events live in the engine queue).
        # Schedulers whose events lack handler descriptors (gaf, span, ...)
        # fail at queue serialization with a SnapshotError naming them.
        return {"network": self.network.state_dict()}

    def load_state(self, state: Dict[str, Any]) -> None:
        self.network.load_state(state["network"])


def baseline_spec(name: str, factory: Callable, description: str) -> ProtocolSpec:
    """Wrap a ``factory(network, rngs)`` baseline into a registrable spec."""

    def build(
        scenario: "Scenario",
        sim: "Simulator",
        rngs: "RngRegistry",
        tracer: Optional["Tracer"] = None,
    ) -> BaselineRun:
        return BaselineRun(scenario, sim, rngs, factory=factory, tracer=tracer)

    return ProtocolSpec(
        name=name, kind="baseline", description=description, build=build
    )


_DESCRIPTIONS: Dict[str, str] = {
    "always_on": "no conservation: every node works until its battery dies",
    "duty_cycle": "randomized independent sleeping (statistical redundancy)",
    "gaf": "GAF-style grid leader election by predicted leader lifetime",
    "synchronized": "synchronized round-based rotation (the Fig 4/5 strawman)",
    "span": "SPAN-style connectivity-driven coordinator election",
    "afeca": "AFECA-style density-scaled sleep intervals",
}


def register_baseline_factories() -> None:
    """Register every stock baseline factory (idempotent)."""
    from ..baselines.runner import BASELINE_FACTORIES
    from .registry import PROTOCOLS

    for name, factory in BASELINE_FACTORIES.items():
        if name in PROTOCOLS:
            continue
        register_protocol(
            baseline_spec(name, factory, _DESCRIPTIONS.get(name, name))
        )
