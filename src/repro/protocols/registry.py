"""Name -> :class:`~repro.protocols.base.ProtocolSpec` registry.

``Scenario.protocol`` names an entry here; the harness resolves it at run
time, so sweeps can cross protocols exactly like populations or failure
rates.  Registration is open: extensions register their own spec once and
every entry point (``run_scenario``, ``run_sweep``, the CLI) can run it.
"""

from __future__ import annotations

from typing import Dict, List

from .base import ProtocolSpec

__all__ = ["register_protocol", "get_protocol", "protocol_names", "PROTOCOLS"]

#: The live registry; mutate only through :func:`register_protocol`.
PROTOCOLS: Dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec, replace: bool = False) -> ProtocolSpec:
    """Register ``spec`` under its name; duplicates need ``replace=True``."""
    if not replace and spec.name in PROTOCOLS:
        raise ValueError(f"protocol {spec.name!r} is already registered")
    PROTOCOLS[spec.name] = spec
    return spec


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a registered protocol (KeyError lists the choices)."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; registered: {sorted(PROTOCOLS)}"
        ) from None


def protocol_names() -> List[str]:
    """Sorted names of every registered protocol."""
    return sorted(PROTOCOLS)
