"""PEAS as a registry entry: the default protocol under the run harness.

:func:`build_network` (moved here from ``repro.experiments.runner``, which
re-exports it) constructs the deployed :class:`~repro.core.PEASNetwork`;
:class:`PeasRun` adapts it to the generic :class:`ProtocolRun` surface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, FrozenSet, Optional

from ..core import PEASNetwork
from ..net import PACKET_SIZE_BYTES, DEPLOYMENTS, Field, RadioModel
from ..net.mac import window_layout
from ..routing import WorkingTopology
from .base import ProtocolRun, ProtocolSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..energy import EnergyReport
    from ..experiments.scenario import Scenario
    from ..obs.tracer import Tracer
    from ..sim import RngRegistry, Simulator

__all__ = ["build_network", "PeasRun", "PEAS_SPEC"]


def build_network(
    scenario: "Scenario",
    sim: "Simulator",
    rngs: "RngRegistry",
    tracer: Optional["Tracer"] = None,
) -> PEASNetwork:
    """Construct the deployed PEAS network for a scenario (no metrics wiring)."""
    field = Field(*scenario.field_size)
    deploy = DEPLOYMENTS[scenario.deployment]
    positions = deploy(field, scenario.num_nodes, rngs.stream("deployment"))
    radio = RadioModel(
        bitrate_bps=scenario.bitrate_bps,
        max_range_m=scenario.comm_range_m,
        irregularity=scenario.rssi_irregularity,
    )
    # With traffic enabled, the source and sink stations participate as
    # anchored permanent workers (they are nodes of the network, §5.2);
    # their REPLYs keep nearby sleepers in reserve for later generations.
    anchors = (scenario.source, scenario.sink) if scenario.with_traffic else ()
    return PEASNetwork(
        sim,
        field,
        positions,
        scenario.config,
        rngs,
        radio=radio,
        profile=scenario.profile,
        loss_rate=scenario.loss_rate,
        anchors=anchors,
        tracer=tracer,
    )


class PeasRun(ProtocolRun):
    """The paper's protocol behind the generic harness interface."""

    def __init__(
        self,
        scenario: "Scenario",
        sim: "Simulator",
        rngs: "RngRegistry",
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.network = build_network(scenario, sim, rngs, tracer=tracer)

    def start(self) -> None:
        self.network.start()

    def topology(self, scenario: "Scenario") -> WorkingTopology:
        # Reuse the protocol's own spatial index and neighbor cache so
        # routing shares the stationary-topology fast path.
        return WorkingTopology(
            self.network.grid,
            comm_range=scenario.comm_range_m,
            neighbors=self.network.neighbors,
        )

    def total_wakeups(self) -> int:
        return self.network.counters.get("wakeups")

    def energy_overhead_j(self, energy: "EnergyReport") -> float:
        return energy.overhead_j

    def channel_counters(self) -> Dict[str, int]:
        return self.network.channel.counters.as_dict()

    def report_path_hook(
        self, scenario: "Scenario"
    ) -> Optional[Callable[[list], None]]:
        if not scenario.charge_data_energy:
            return None
        network = self.network
        airtime = network.radio.airtime(scenario.report_size_bytes)

        def path_hook(path: list, _network: Any = network, _airtime: float = airtime) -> None:
            # Each hop: the forwarder transmits, the next node receives.
            # Anchors are externally powered; skip their batteries.
            now = _network.sim.now
            for sender, receiver in zip(path, path[1:] + [None]):
                node = _network.nodes[sender]
                if not node.anchor and node.alive:
                    left = node.battery.charge_frame(now, "tx", _airtime, "data_tx")
                    node.on_energy_charged(left)
                if receiver is None:
                    continue
                peer = _network.nodes[receiver]
                if not peer.anchor and peer.alive:
                    left = peer.battery.charge_frame(now, "rx", _airtime, "data_rx")
                    peer.on_energy_charged(left)

        return path_hook

    def state_dict(self) -> Dict[str, Any]:
        return {"network": self.network.state_dict()}

    def load_state(self, state: Dict[str, Any]) -> None:
        self.network.load_state(state["network"])

    def fault_capabilities(self) -> FrozenSet[str]:
        # PEAS nodes are stun/skew-capable and own a broadcast channel:
        # every registered fault model applies.
        from ..faults.plan import FAULT_KINDS

        return frozenset(FAULT_KINDS)

    def mac_layout(self, scenario: "Scenario") -> Dict[str, Any]:
        config = scenario.config
        airtime = self.network.radio.airtime(PACKET_SIZE_BYTES)
        return window_layout(
            config.num_probes,
            airtime,
            config.probe_gap_s,
            config.probe_window_s,
            config.reply_guard_s,
        )


PEAS_SPEC = ProtocolSpec(
    name="peas",
    kind="peas",
    description="Probing Environment and Adaptive Sleeping (the paper's protocol)",
    build=PeasRun,
)
