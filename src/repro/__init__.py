"""PEAS reproduction: a robust energy-conserving protocol for long-lived
sensor networks (Ye, Zhong, Cheng, Lu, Zhang — ICDCS 2003).

The package builds the full system described in the paper:

* :mod:`repro.sim` — discrete-event simulation kernel (PARSEC substitute);
* :mod:`repro.net` — field, deployment, radio, broadcast channel, MAC timing;
* :mod:`repro.energy` — Berkeley-Motes-like power model and batteries;
* :mod:`repro.failures` — random unexpected-failure injection;
* :mod:`repro.core` — the PEAS protocol (Probing Environment + Adaptive
  Sleeping, plus the §4 extensions);
* :mod:`repro.routing` — GRAB-like gradient data forwarding substrate;
* :mod:`repro.coverage` — K-coverage tracking and coverage lifetimes;
* :mod:`repro.baselines` — AlwaysOn / duty-cycle / GAF-like / SPAN-like /
  AFECA-like / synchronized sleeping comparators;
* :mod:`repro.sensing` — target events and detection latency (the mission
  K-coverage proxies);
* :mod:`repro.analysis` — §3 connectivity results, the §2.2.1
  measurement-accuracy study and an analytic lifetime model;
* :mod:`repro.experiments` — scenario runner, sweeps and the paper's
  tables/figures.

Quickstart
----------
>>> from repro.experiments import Scenario, run_scenario   # doctest: +SKIP
>>> result = run_scenario(Scenario(num_nodes=160, seed=1)) # doctest: +SKIP
>>> result.coverage_lifetimes[4]                           # doctest: +SKIP
"""

from .core import PEASConfig, PEASNetwork, PEASNode
from .net import Field
from .sim import RngRegistry, Simulator

__version__ = "1.0.0"

__all__ = [
    "PEASConfig",
    "PEASNetwork",
    "PEASNode",
    "Field",
    "Simulator",
    "RngRegistry",
    "__version__",
]
