"""Working-node topology and GRAB-style cost field.

The paper delivers data reports with GRAB [11], a gradient ("cost field")
forwarding protocol: the sink floods a cost field over the network; each
node remembers its cumulative cost to the sink, and reports flow down the
gradient.  PEAS's evaluation only needs the substrate's end-to-end outcome
— whether the current *working* topology sustains delivery — so this module
maintains:

* :class:`WorkingTopology` — the graph of working nodes with edges between
  pairs within communication range, updated incrementally from the
  protocol's working-set observer stream;
* :class:`CostField` — hop-count costs to the sink, recomputed lazily
  (breadth-first from the sink's attachment nodes) whenever the topology
  changed since the last query.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set

from typing import Mapping

from ..net.field import Point, distance_sq
from ..net.neighbors import NeighborCache
from ..net.spatial import SpatialGrid

__all__ = ["WorkingTopology", "CostField"]


class WorkingTopology:
    """Incremental graph over the currently working nodes.

    Parameters
    ----------
    grid:
        Spatial index over *alive* node positions (shared with the channel);
        used to find communication-range neighbor candidates in O(1).
    comm_range:
        Maximum transmission range R_t (paper: 10 m).
    neighbors:
        Optional shared :class:`NeighborCache` over ``grid`` (the channel's
        memo); candidate neighborhoods then come from the stationary-topology
        cache instead of a fresh range query per working-set change.
    """

    def __init__(
        self,
        grid: SpatialGrid,
        comm_range: float,
        neighbors: Optional[NeighborCache] = None,
    ) -> None:
        if comm_range <= 0:
            raise ValueError("comm_range must be positive")
        self.grid = grid
        self.comm_range = float(comm_range)
        self.neighbor_cache = neighbors
        self._positions: Dict[Hashable, Point] = {}
        self._adjacency: Dict[Hashable, Set[Hashable]] = {}
        #: bumped on every change; cost fields compare against it
        self.version = 0

    # ------------------------------------------------------------- mutation
    def add_working(self, node_id: Hashable, position: Point) -> None:
        if node_id in self._positions:
            raise KeyError(f"{node_id!r} is already in the working topology")
        self._positions[node_id] = position
        cache = self.neighbor_cache
        if cache is not None and node_id in self.grid:
            candidates = cache.neighbors(node_id, self.comm_range)
        else:
            candidates = self.grid.within(position, self.comm_range)
        neighbors: Set[Hashable] = set()
        for candidate in candidates:
            if candidate != node_id and candidate in self._positions:
                neighbors.add(candidate)
                self._adjacency[candidate].add(node_id)
        self._adjacency[node_id] = neighbors
        self.version += 1

    def remove_working(self, node_id: Hashable) -> None:
        neighbors = self._adjacency.pop(node_id)
        del self._positions[node_id]
        for neighbor in neighbors:
            self._adjacency[neighbor].discard(node_id)
        self.version += 1

    # ------------------------------------------------------------- snapshot
    def state_dict(self) -> dict:
        """Membership *in insertion order* plus the version counter; edges
        and positions are derived (recomputed by replaying ``add_working``
        against the restored grid)."""
        return {"order": list(self._positions), "version": self.version}

    def load_state(self, state: dict, positions: Mapping[Hashable, Point]) -> None:
        """Rebuild the graph into a freshly constructed topology by
        re-adding members in their original insertion order (dict order is
        behavior: ``connected_components`` and the gradient walk read it)."""
        if self._positions:
            raise ValueError("load_state requires an empty topology")
        for node_id in state["order"]:
            self.add_working(node_id, positions[node_id])
        self.version = int(state["version"])

    # -------------------------------------------------------------- queries
    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def nodes(self) -> List[Hashable]:
        return list(self._positions)

    def position(self, node_id: Hashable) -> Point:
        return self._positions[node_id]

    def neighbors(self, node_id: Hashable) -> Set[Hashable]:
        return self._adjacency[node_id]

    def working_within(self, point: Point, radius: float) -> List[Hashable]:
        """Working nodes within ``radius`` of an arbitrary point (used to
        attach the source and sink stations to the network)."""
        r_sq = radius * radius
        return [
            node_id
            for node_id in self.grid.within(point, radius)
            if node_id in self._positions
            and distance_sq(self._positions[node_id], point) <= r_sq
        ]

    def connected_components(self) -> List[Set[Hashable]]:
        """All connected components (used by the §3 connectivity analysis)."""
        seen: Set[Hashable] = set()
        components: List[Set[Hashable]] = []
        for start in self._positions:
            if start in seen:
                continue
            component = {start}
            queue = deque([start])
            while queue:
                current = queue.popleft()
                for neighbor in self._adjacency[current]:
                    if neighbor not in component:
                        component.add(neighbor)
                        queue.append(neighbor)
            seen |= component
            components.append(component)
        return components


class CostField:
    """Hop-count gradient to the sink over the working topology.

    The sink is a station at a fixed point; every working node within its
    attachment radius is a zero-cost field origin (GRAB's sink broadcast).
    The field is rebuilt lazily when the topology version moved.
    """

    def __init__(self, topology: WorkingTopology, sink: Point, attach_radius: float):
        if attach_radius <= 0:
            raise ValueError("attach_radius must be positive")
        self.topology = topology
        self.sink = sink
        self.attach_radius = float(attach_radius)
        self._costs: Dict[Hashable, int] = {}
        self._built_version = -1
        self.rebuild_count = 0

    def costs(self) -> Dict[Hashable, int]:
        """Current cost table (hops to the sink attachment ring)."""
        if self._built_version != self.topology.version:
            self._rebuild()
        return self._costs

    def cost(self, node_id: Hashable) -> Optional[int]:
        """Hop cost of a node, or ``None`` if it cannot reach the sink."""
        return self.costs().get(node_id)

    def _rebuild(self) -> None:
        origins = self.topology.working_within(self.sink, self.attach_radius)
        costs: Dict[Hashable, int] = {node_id: 0 for node_id in origins}
        queue = deque(origins)
        while queue:
            current = queue.popleft()
            next_cost = costs[current] + 1
            for neighbor in self.topology.neighbors(current):
                if neighbor not in costs:
                    costs[neighbor] = next_cost
                    queue.append(neighbor)
        self._costs = costs
        self._built_version = self.topology.version
        self.rebuild_count += 1
