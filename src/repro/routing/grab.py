"""GRAB-style report delivery over the working topology.

GRAB [11] forwards each report down the sink's cost field inside a
*forwarding mesh* whose width is controlled by a credit: intermediate nodes
with smaller cost than the custodian rebroadcast, so a report survives
individual link losses as long as the mesh stays connected.

Substitution note (see DESIGN.md): we do not bit-simulate the mesh.  A
report is delivered iff (a) a gradient path exists from one of the source's
attachment nodes to the sink's attachment ring, and (b) an independent
per-hop Bernoulli survival test — with the mesh width amplifying each hop's
success probability to ``1 - loss^width`` — passes along the minimum-cost
path.  With the default lossless links this reduces to path existence, which
is exactly what the paper's delivery-lifetime metric measures: whether PEAS
maintains a routable working set between the corners (§5.2).
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional  # noqa: F401 (Hashable in hints)

from ..net.field import Point
from .costfield import CostField, WorkingTopology

__all__ = ["GrabRouter", "DeliveryOutcome"]


class DeliveryOutcome:
    """Result of one report's delivery attempt (diagnostic detail)."""

    __slots__ = ("delivered", "hops", "reason", "path")

    def __init__(
        self,
        delivered: bool,
        hops: Optional[int],
        reason: str,
        path: Optional[List[Hashable]] = None,
    ) -> None:
        self.delivered = delivered
        self.hops = hops
        self.reason = reason
        #: node ids of the gradient path actually used (entry -> sink ring),
        #: present when a path existed; used for data-plane energy charging.
        self.path = path

    def __bool__(self) -> bool:
        return self.delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DeliveryOutcome {self.reason} hops={self.hops}>"


class GrabRouter:
    """Delivers reports from a source station to a sink station.

    Parameters
    ----------
    topology:
        The live working-node graph.
    source / sink:
        Station positions (the paper places them in opposite corners).
    attach_radius:
        Radius within which stations reach working nodes (R_t).
    link_loss:
        Per-hop, per-report loss probability before mesh amplification.
    mesh_width:
        GRAB credit expressed as the number of parallel custodians per hop.
    rng:
        Stream for the per-hop survival draws.
    """

    def __init__(
        self,
        topology: WorkingTopology,
        source: Point,
        sink: Point,
        attach_radius: float,
        link_loss: float = 0.0,
        mesh_width: int = 2,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= link_loss < 1.0:
            raise ValueError("link_loss must be in [0, 1)")
        if mesh_width < 1:
            raise ValueError("mesh_width must be >= 1")
        self.topology = topology
        self.source = source
        self.sink = sink
        self.attach_radius = float(attach_radius)
        self.link_loss = link_loss
        self.mesh_width = mesh_width
        self.rng = rng if rng is not None else random.Random(0)
        self.cost_field = CostField(topology, sink, attach_radius)

    # -------------------------------------------------------------- queries
    def source_attachments(self) -> List[Hashable]:
        return self.topology.working_within(self.source, self.attach_radius)

    def best_entry(self) -> Optional[Hashable]:
        """The source attachment node with the lowest cost to the sink."""
        costs = self.cost_field.costs()
        reachable = [n for n in self.source_attachments() if n in costs]
        if not reachable:
            return None
        return min(reachable, key=lambda n: costs[n])

    def path_hops(self) -> Optional[int]:
        """Minimum gradient path length source->sink, or ``None``."""
        entry = self.best_entry()
        if entry is None:
            return None
        return self.cost_field.costs()[entry] + 1  # +1 for the entry hop

    def gradient_path(self) -> Optional[List[Hashable]]:
        """One minimum-cost gradient path from the entry node to the sink
        attachment ring (greedy descent over the cost field)."""
        entry = self.best_entry()
        if entry is None:
            return None
        costs = self.cost_field.costs()
        path = [entry]
        current = entry
        while costs[current] > 0:
            # Tie-break on a canonical id key: neighbors() is a set whose
            # iteration order depends on its mutation history, which a
            # snapshot restore cannot replay.
            next_hop = min(
                (n for n in self.topology.neighbors(current) if n in costs),
                key=lambda n: (costs[n], str(n)),
                default=None,
            )
            if next_hop is None or costs[next_hop] >= costs[current]:
                return None  # cost field stale relative to topology: no path
            path.append(next_hop)
            current = next_hop
        return path

    # ------------------------------------------------------------- delivery
    def deliver(self) -> DeliveryOutcome:
        """Attempt to deliver one report right now."""
        path = self.gradient_path()
        if path is None:
            if not self.source_attachments():
                return DeliveryOutcome(False, None, "no working node near source")
            return DeliveryOutcome(False, None, "source disconnected from sink")
        hops = len(path)
        if self.link_loss > 0.0:
            hop_success = 1.0 - self.link_loss**self.mesh_width
            for _ in range(hops):
                if self.rng.random() >= hop_success:
                    return DeliveryOutcome(False, hops, "lost in forwarding mesh",
                                           path=path)
        return DeliveryOutcome(True, hops, "delivered", path=path)
