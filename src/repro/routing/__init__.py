"""GRAB-like data forwarding substrate (cost field + report delivery).

Wires into a PEAS network via the working-set observer stream:

>>> topology = WorkingTopology(network.grid, comm_range=10.0)   # doctest: +SKIP
>>> network.working_observers.append(
...     lambda t, node, started: topology.add_working(node.node_id, node.position)
...     if started else topology.remove_working(node.node_id))  # doctest: +SKIP
"""

from .costfield import CostField, WorkingTopology
from .grab import DeliveryOutcome, GrabRouter
from .traffic import ReportTraffic

__all__ = [
    "WorkingTopology",
    "CostField",
    "GrabRouter",
    "DeliveryOutcome",
    "ReportTraffic",
]
