"""Target events: the phenomena the sensor network exists to observe.

The paper's motivating applications (animal tracking, monitoring in harsh
environments) watch for *events* that appear at field positions and persist
for some dwell time.  K-coverage is the paper's proxy metric; this module
provides the direct one: generate events and measure whether and how fast
the working set detects them.

An event is detected the moment at least ``min_detectors`` working nodes
have it within sensing range — either immediately on arrival (the area was
covered) or later, when replacement workers wake up (the latency PEAS's
λ_d knob is chosen to bound, §2.2).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..net.field import Field, Point

__all__ = ["TargetEvent", "EventOutcome", "generate_events"]

_event_ids = itertools.count()


@dataclass
class TargetEvent:
    """One observable phenomenon in the field."""

    position: Point
    start_time: float
    dwell_s: float
    uid: int = field(default_factory=lambda: next(_event_ids))

    def __post_init__(self) -> None:
        if self.dwell_s <= 0:
            raise ValueError("dwell_s must be positive")
        if self.start_time < 0:
            raise ValueError("start_time must be nonnegative")

    @property
    def end_time(self) -> float:
        return self.start_time + self.dwell_s


@dataclass
class EventOutcome:
    """How the network handled one event."""

    event: TargetEvent
    detected_at: Optional[float]

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def latency_s(self) -> Optional[float]:
        """Seconds from event arrival to first detection (None if missed)."""
        if self.detected_at is None:
            return None
        return self.detected_at - self.event.start_time


def generate_events(
    field: Field,
    rate_hz: float,
    horizon_s: float,
    dwell_s: float,
    rng: random.Random,
    dwell_jitter: float = 0.5,
) -> List[TargetEvent]:
    """A Poisson stream of events uniform over the field.

    ``dwell_jitter`` scales a uniform multiplicative spread around
    ``dwell_s`` (0 disables it).
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    if not 0.0 <= dwell_jitter < 1.0:
        raise ValueError("dwell_jitter must be in [0, 1)")
    events: List[TargetEvent] = []
    time = 0.0
    while True:
        time += rng.expovariate(rate_hz)
        if time >= horizon_s:
            break
        dwell = dwell_s
        if dwell_jitter > 0:
            dwell *= rng.uniform(1.0 - dwell_jitter, 1.0 + dwell_jitter)
        events.append(
            TargetEvent(position=field.random_point(rng), start_time=time,
                        dwell_s=dwell)
        )
    return events
