"""Event-detection monitor over a live working set.

Subscribes to the network's working-set observer stream (the same interface
the coverage tracker and routing topology use) and resolves each target
event to an :class:`~repro.sensing.events.EventOutcome`:

* if enough working nodes already sense the event's position when it
  starts, it is detected immediately;
* otherwise the monitor waits for working-set changes; a replacement worker
  waking inside the sensing range detects the event with the corresponding
  latency;
* events whose dwell expires undetected are missed — the "gaps" of
  Figures 4/5 made concrete.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from ..net.field import Point, distance
from ..sim import Simulator
from .events import EventOutcome, TargetEvent

__all__ = ["DetectionMonitor"]


class DetectionMonitor:
    """Tracks detection of target events by the working set.

    Parameters
    ----------
    sim:
        The simulation engine (events are scheduled against it).
    events:
        The full event schedule (generated up front).
    sensing_range:
        Detection radius of a working node (paper: 10 m).
    min_detectors:
        Number of simultaneous working observers required (the K of
        K-coverage; 1 detects, higher values give confident detection).
    """

    def __init__(
        self,
        sim: Simulator,
        events: List[TargetEvent],
        sensing_range: float = 10.0,
        min_detectors: int = 1,
    ) -> None:
        if sensing_range <= 0:
            raise ValueError("sensing_range must be positive")
        if min_detectors < 1:
            raise ValueError("min_detectors must be >= 1")
        self.sim = sim
        self.sensing_range = float(sensing_range)
        self.min_detectors = min_detectors
        self.outcomes: Dict[int, EventOutcome] = {}
        #: active events: uid -> (event, set of observing worker ids)
        self._active: Dict[int, tuple] = {}
        #: current working set: id -> position
        self._workers: Dict[Hashable, Point] = {}
        for event in events:
            sim.schedule(event.start_time - sim.now, self._event_starts, event,
                         label="event-start")

    # ------------------------------------------------------------- plumbing
    def on_working_change(self, time: float, node, started: bool) -> None:
        """Observer for PEAS or baseline networks."""
        if started:
            self._workers[node.node_id] = node.position
            for uid in list(self._active):
                event, observers = self._active[uid]
                if distance(node.position, event.position) <= self.sensing_range:
                    observers.add(node.node_id)
                    self._maybe_detect(uid)
        else:
            self._workers.pop(node.node_id, None)
            for uid in list(self._active):
                self._active[uid][1].discard(node.node_id)

    # ------------------------------------------------------------ internals
    def _event_starts(self, event: TargetEvent) -> None:
        observers = {
            worker_id
            for worker_id, position in self._workers.items()
            if distance(position, event.position) <= self.sensing_range
        }
        self._active[event.uid] = (event, observers)
        self._maybe_detect(event.uid)
        if event.uid in self._active:
            self.sim.schedule(event.dwell_s, self._event_expires, event.uid,
                              label="event-end")

    def _maybe_detect(self, uid: int) -> None:
        entry = self._active.get(uid)
        if entry is None:
            return
        event, observers = entry
        if len(observers) >= self.min_detectors:
            self.outcomes[event.uid] = EventOutcome(
                event=event, detected_at=self.sim.now
            )
            del self._active[uid]

    def _event_expires(self, uid: int) -> None:
        entry = self._active.pop(uid, None)
        if entry is not None:
            event, _ = entry
            self.outcomes[event.uid] = EventOutcome(event=event, detected_at=None)

    # -------------------------------------------------------------- queries
    def resolved(self) -> List[EventOutcome]:
        return list(self.outcomes.values())

    def detection_ratio(self) -> float:
        """Fraction of resolved events that were detected."""
        resolved = self.resolved()
        if not resolved:
            return 1.0
        return sum(1 for outcome in resolved if outcome.detected) / len(resolved)

    def latencies(self) -> List[float]:
        """Detection latencies of detected events (0 for instant detection)."""
        return [
            outcome.latency_s
            for outcome in self.resolved()
            if outcome.latency_s is not None
        ]

    def mean_latency(self) -> float:
        values = self.latencies()
        return sum(values) / len(values) if values else 0.0

    def delayed_detections(self) -> int:
        """Events detected only after a replacement worker woke up."""
        return sum(1 for value in self.latencies() if value > 0.0)
