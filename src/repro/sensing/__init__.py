"""Event-detection substrate: the network's actual sensing mission.

K-coverage (§5.1) is the paper's proxy for sensing quality; this package
measures the mission directly — generate target events, resolve whether the
working set detected them and how fast:

>>> events = generate_events(field, rate_hz=0.01, horizon_s=5000,
...                          dwell_s=300, rng=rng)            # doctest: +SKIP
>>> monitor = DetectionMonitor(sim, events)                    # doctest: +SKIP
>>> network.working_observers.append(monitor.on_working_change)  # doctest: +SKIP
"""

from .detector import DetectionMonitor
from .events import EventOutcome, TargetEvent, generate_events

__all__ = ["TargetEvent", "EventOutcome", "generate_events", "DetectionMonitor"]
