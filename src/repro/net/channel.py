"""Shared broadcast wireless channel with collisions and random loss.

This is the packet-level substrate beneath PEAS's control plane.  The model
captures the phenomena the paper's design explicitly reacts to:

* **broadcast within a chosen range** — PROBE/REPLY are local broadcasts
  whose reach is the probing range R_p (variable power, §2) or the maximum
  range R_t (fixed power, §4);
* **receiver-side collisions** — two frames overlapping in time at a
  listening receiver destroy each other there (no capture), which is why
  working nodes randomize their REPLY backoff (§2.1) and probing nodes
  spread repeated PROBEs (§4);
* **half duplex** — a node transmitting a frame cannot simultaneously
  receive one;
* **i.i.d. random loss** — the §4 loss-compensation experiments inject
  loss rates up to ~10-20 %.

Energy is charged through an optional hook so the energy model can attribute
per-frame costs to overhead categories (Table 1 accounting).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Protocol

from ..sim import CounterSet, Simulator
from ..sim.events import PRIORITY_HIGH
from .field import Point, distance
from .packet import Packet
from .radio import RadioModel
from .spatial import SpatialGrid

__all__ = ["BroadcastChannel", "RadioEndpoint", "Reception"]

#: energy hook signature: (node_id, "tx" | "rx", airtime_seconds, packet)
EnergyHook = Callable[[Hashable, str, float, Packet], None]


class RadioEndpoint(Protocol):
    """What the channel needs to know about an attached node."""

    @property
    def node_id(self) -> Hashable: ...

    @property
    def position(self) -> Point: ...

    def is_listening(self) -> bool:
        """True iff the node's radio is on and able to receive right now."""
        ...

    def on_packet(self, packet: Packet, rssi: float, dist: float) -> None:
        """Deliver a successfully received frame."""
        ...


@dataclass
class Reception:
    """An in-flight frame as observed by one receiver."""

    packet: Packet
    end_time: float
    dist: float
    corrupted: bool = False


class BroadcastChannel:
    """The shared medium connecting all node radios.

    Parameters
    ----------
    sim:
        The simulation engine.
    grid:
        Spatial index over *all* node positions (nodes are stationary).
    radio:
        Physical-layer model (airtime, RSSI).
    loss_rate:
        Independent per-link frame loss probability in [0, 1).
    rng:
        Stream for loss draws and RSSI irregularity.
    energy_hook:
        Optional callback charging tx/rx energy per frame.
    """

    def __init__(
        self,
        sim: Simulator,
        grid: SpatialGrid,
        radio: RadioModel,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        energy_hook: Optional[EnergyHook] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.grid = grid
        self.radio = radio
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random(0)
        self.energy_hook = energy_hook
        self.counters = CounterSet()
        self._endpoints: Dict[Hashable, RadioEndpoint] = {}
        #: receiver id -> list of in-flight receptions at that receiver
        self._incoming: Dict[Hashable, List[Reception]] = {}
        #: node id -> absolute time its own transmission ends (half duplex)
        self._transmitting_until: Dict[Hashable, float] = {}

    # ---------------------------------------------------------- attachment
    def attach(self, endpoint: RadioEndpoint) -> None:
        node_id = endpoint.node_id
        if node_id in self._endpoints:
            raise KeyError(f"endpoint {node_id!r} already attached")
        self._endpoints[node_id] = endpoint
        if node_id not in self.grid:
            self.grid.insert(node_id, endpoint.position)

    def detach(self, node_id: Hashable) -> None:
        """Remove a (dead) node from the medium entirely."""
        self._endpoints.pop(node_id, None)
        self._incoming.pop(node_id, None)
        if node_id in self.grid:
            self.grid.remove(node_id)

    def endpoint(self, node_id: Hashable) -> RadioEndpoint:
        return self._endpoints[node_id]

    # ------------------------------------------------------- carrier sense
    def busy_until(self, node_id: Hashable) -> float:
        """Latest end time of any activity this node can sense: its own
        transmissions plus every frame currently arriving at it.  Returns a
        time in the past when the medium is locally idle."""
        busy = self._transmitting_until.get(node_id, 0.0)
        for reception in self._incoming.get(node_id, ()):
            busy = max(busy, reception.end_time)
        return busy

    def is_busy(self, node_id: Hashable, now: float) -> bool:
        """CSMA carrier sense: is the medium busy as heard by this node?"""
        return self.busy_until(node_id) > now

    # -------------------------------------------------------- transmission
    def transmit(self, sender_id: Hashable, packet: Packet, tx_range: float) -> None:
        """Broadcast ``packet`` from ``sender_id`` reaching ``tx_range`` meters.

        Delivery (or corruption) is resolved when the frame's airtime ends.
        """
        tx_range = self.radio.validate_tx_range(tx_range)
        sender = self._endpoints.get(sender_id)
        if sender is None:
            raise KeyError(f"unknown sender {sender_id!r}")
        airtime = self.radio.airtime(packet.size_bytes)
        now = self.sim.now
        end = now + airtime
        self.counters.incr("frames_sent")

        # Half duplex: transmitting corrupts anything the sender was receiving
        # and blocks reception until the transmission ends.
        self._transmitting_until[sender_id] = max(
            end, self._transmitting_until.get(sender_id, 0.0)
        )
        for reception in self._incoming.get(sender_id, ()):
            reception.corrupted = True

        if self.energy_hook is not None:
            self.energy_hook(sender_id, "tx", airtime, packet)

        origin = sender.position
        receivers: List[Hashable] = []
        for node_id in self.grid.within(origin, tx_range):
            if node_id == sender_id:
                continue
            endpoint = self._endpoints.get(node_id)
            if endpoint is None or not endpoint.is_listening():
                continue
            if self._transmitting_until.get(node_id, 0.0) > now:
                # Receiver is itself on the air: frame is lost to it.
                self.counters.incr("half_duplex_losses")
                continue
            reception = Reception(
                packet=packet,
                end_time=end,
                dist=distance(origin, endpoint.position),
            )
            active = self._incoming.setdefault(node_id, [])
            if active:
                # Overlap at this receiver: everything involved is corrupted.
                reception.corrupted = True
                for other in active:
                    if not other.corrupted:
                        other.corrupted = True
                        self.counters.incr("collisions")
                self.counters.incr("collisions")
            active.append(reception)
            receivers.append(node_id)

        self.sim.schedule(
            airtime,
            self._complete,
            sender_id,
            packet,
            receivers,
            priority=PRIORITY_HIGH,
            label=f"rx:{packet.kind}",
        )

    # ---------------------------------------------------------- completion
    def _complete(
        self, sender_id: Hashable, packet: Packet, receivers: List[Hashable]
    ) -> None:
        for node_id in receivers:
            active = self._incoming.get(node_id)
            reception = None
            if active:
                for candidate in active:
                    if candidate.packet.uid == packet.uid:
                        reception = candidate
                        break
                if reception is not None:
                    active.remove(reception)
                if not active:
                    self._incoming.pop(node_id, None)
            if reception is None:
                continue
            endpoint = self._endpoints.get(node_id)
            if endpoint is None or not endpoint.is_listening():
                # Receiver died or slept mid-frame.
                self.counters.incr("aborted_receptions")
                continue
            if self.energy_hook is not None:
                self.energy_hook(
                    node_id, "rx", self.radio.airtime(packet.size_bytes), packet
                )
            if reception.corrupted:
                continue
            if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
                self.counters.incr("random_losses")
                continue
            rssi = self.radio.rssi(reception.dist, self.rng)
            self.counters.incr("frames_delivered")
            endpoint.on_packet(packet, rssi, reception.dist)
