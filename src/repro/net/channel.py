"""Shared broadcast wireless channel with collisions and random loss.

This is the packet-level substrate beneath PEAS's control plane.  The model
captures the phenomena the paper's design explicitly reacts to:

* **broadcast within a chosen range** — PROBE/REPLY are local broadcasts
  whose reach is the probing range R_p (variable power, §2) or the maximum
  range R_t (fixed power, §4);
* **receiver-side collisions** — two frames overlapping in time at a
  listening receiver destroy each other there (no capture), which is why
  working nodes randomize their REPLY backoff (§2.1) and probing nodes
  spread repeated PROBEs (§4);
* **half duplex** — a node transmitting a frame cannot simultaneously
  receive one;
* **i.i.d. random loss** — the §4 loss-compensation experiments inject
  loss rates up to ~10-20 %;
* **bursty loss** — an optional Gilbert–Elliott overlay
  (:mod:`repro.net.loss`), attached by the fault-injection subsystem via
  ``channel.loss_process``, models time-correlated interference on top of
  the i.i.d. floor.

Energy is charged through an optional hook so the energy model can attribute
per-frame costs to overhead categories (Table 1 accounting).

Nodes are stationary, so the set of potential receivers of a broadcast is a
function of ``(sender, range)`` alone; lookups go through a
:class:`~repro.net.neighbors.NeighborCache` (memoized, sorted by distance,
invalidated on node death) instead of re-running the grid range query per
frame.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Protocol

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs pulls net)
    from ..obs.tracer import Tracer

from ..obs import events as trace_events
from ..sim import CounterSet, Simulator, register_handler
from ..sim.events import PRIORITY_HIGH
from ..sim.handlers import RestoreContext
from .field import Point
from .neighbors import NeighborCache
from .packet import Packet, ensure_uid_floor, packet_from_dict, packet_to_dict
from .radio import RadioModel
from .spatial import SpatialGrid

__all__ = ["BroadcastChannel", "RadioEndpoint", "Reception"]

#: energy hook signature: (node_id, "tx" | "rx", airtime_seconds, packet)
EnergyHook = Callable[[Hashable, str, float, Packet], None]

class RadioEndpoint(Protocol):
    """What the channel needs to know about an attached node.

    Endpoints that keep the columnar store's ``listening`` column current
    (by calling :meth:`BroadcastChannel.note_listening` on every radio
    state change) declare ``publishes_listening = True``; the channel then
    filters broadcast audiences with one vectorized mask instead of one
    ``is_listening()`` call per candidate.  Endpoints without the attribute
    are handled via the per-candidate path.
    """

    @property
    def node_id(self) -> Hashable: ...

    @property
    def position(self) -> Point: ...

    def is_listening(self) -> bool:
        """True iff the node's radio is on and able to receive right now."""
        ...

    def on_packet(self, packet: Packet, rssi: float, dist: float) -> None:
        """Deliver a successfully received frame."""
        ...


@dataclass(slots=True)
class Reception:
    """An in-flight frame as observed by one receiver."""

    packet: Packet
    end_time: float
    dist: float
    corrupted: bool = False


class BroadcastChannel:
    """The shared medium connecting all node radios.

    Parameters
    ----------
    sim:
        The simulation engine.
    grid:
        Spatial index over *all* node positions (nodes are stationary).
    radio:
        Physical-layer model (airtime, RSSI).
    loss_rate:
        Independent per-link frame loss probability in [0, 1).
    rng:
        Stream for loss draws and RSSI irregularity.
    energy_hook:
        Optional callback charging tx/rx energy per frame.
    neighbor_cache:
        Memoized neighborhoods over ``grid``; constructed locally when not
        supplied (pass a shared instance so routing reuses the same memo).
    tracer:
        Optional :class:`repro.obs.Tracer` receiving ``collision`` and
        ``drop`` events; normalized so a disabled tracer costs one ``is
        not None`` check per frame.
    """

    def __init__(
        self,
        sim: Simulator,
        grid: SpatialGrid,
        radio: RadioModel,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        energy_hook: Optional[EnergyHook] = None,
        neighbor_cache: Optional[NeighborCache] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.grid = grid
        self.radio = radio
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random(0)
        self.energy_hook = energy_hook
        self.neighbors = (
            neighbor_cache if neighbor_cache is not None else NeighborCache(grid)
        )
        #: normalized: None unless a real (non-null-sink) tracer was given
        self.tracer = tracer.active() if tracer is not None else None
        #: optional :class:`repro.sim.sanitizer.SimSanitizer`; same idiom as
        #: the tracer — one ``is not None`` test per transmit when attached,
        #: nothing at all otherwise
        self.sanitizer = None
        #: optional correlated-loss overlay (:class:`repro.net.loss.
        #: GilbertElliottLoss`), layered *on top of* the i.i.d. model and
        #: consulted after it; ``None`` (the default) costs one ``is not
        #: None`` test per delivered frame and keeps the channel's own RNG
        #: draw sequence untouched — the overlay owns its stream.
        self.loss_process = None
        self.counters = CounterSet()
        self._endpoints: Dict[Hashable, RadioEndpoint] = {}
        #: packet uid -> (sender_id, packet, receivers, airtime) for every
        #: completion event still in flight; this is what the ``channel.rx``
        #: snapshot descriptor resolves against (the completion's own args
        #: are live objects, so the event carries just the uid)
        self._pending_tx: Dict[int, tuple] = {}
        #: receiver id -> {packet uid: in-flight reception at that receiver}
        self._incoming: Dict[Hashable, Dict[int, Reception]] = {}
        #: node id -> absolute time its own transmission ends (half duplex)
        self._transmitting_until: Dict[Hashable, float] = {}
        #: the grid's columnar store (None on the scalar backend).  The
        #: half-duplex deadline is dual-written to ``store.tx_until`` so the
        #: vectorized audience mask can read it as a column; the dict above
        #: stays authoritative for the per-candidate paths, keeping both
        #: backends on byte-identical bookkeeping.
        self._store = getattr(grid, "store", None)
        #: True while every attached endpoint keeps ``store.listening``
        #: current via :meth:`note_listening`; one legacy endpoint flips
        #: this off and large broadcasts fall back to per-candidate checks.
        self._all_publish = True
        #: per-transmit memos (ranges are validated and airtimes computed
        #: once per distinct value, not once per frame)
        self._valid_ranges: Dict[float, float] = {}
        self._airtimes: Dict[int, float] = {}
        self._rx_labels: Dict[str, str] = {}

    # ---------------------------------------------------------- attachment
    def attach(self, endpoint: RadioEndpoint) -> None:
        node_id = endpoint.node_id
        if node_id in self._endpoints:
            raise KeyError(f"endpoint {node_id!r} already attached")
        self._endpoints[node_id] = endpoint
        if node_id not in self.grid:
            self.grid.insert(node_id, endpoint.position)
        store = self._store
        if store is not None:
            if getattr(endpoint, "publishes_listening", False):
                row = store.row_of[node_id]
                flag = endpoint.is_listening()
                store.listening[row] = flag
                store.listening_py[row] = flag
            else:
                self._all_publish = False

    def note_listening(self, node_id: Hashable, flag: bool) -> None:
        """Endpoint radio-state publication (columnar backend).

        Publishing endpoints call this on every ``is_listening()``
        transition; the channel mirrors it into the store's ``listening``
        column, which is what lets :meth:`transmit` mask whole audiences in
        one vectorized step.  A no-op on the scalar backend.
        """
        store = self._store
        if store is not None:
            row = store.row_of.get(node_id)
            if row is not None:
                store.listening[row] = flag
                store.listening_py[row] = flag

    def detach(self, node_id: Hashable) -> None:
        """Remove a (dead) node from the medium entirely.

        Dropping it from the grid also invalidates every cached neighborhood
        that contained it (see :class:`NeighborCache`).
        """
        self._endpoints.pop(node_id, None)
        self._incoming.pop(node_id, None)
        if node_id in self.grid:
            self.grid.remove(node_id)

    def endpoint(self, node_id: Hashable) -> RadioEndpoint:
        return self._endpoints[node_id]

    # ----------------------------------------------------------- reporting
    def publish_metrics(self, metrics) -> None:
        """Fold this run's frame/drop counters into a
        :class:`repro.obs.metrics.RunMetrics` collector.  Cold path: called
        once per run by the harness, never per frame."""
        metrics.record_channel(self.counters.as_dict())

    # ------------------------------------------------------- carrier sense
    def busy_until(self, node_id: Hashable) -> float:
        """Latest end time of any activity this node can sense: its own
        transmissions plus every frame currently arriving at it.  Returns a
        time in the past when the medium is locally idle."""
        busy = self._transmitting_until.get(node_id, 0.0)
        active = self._incoming.get(node_id)
        if active:
            for reception in active.values():
                if reception.end_time > busy:
                    busy = reception.end_time
        return busy

    def is_busy(self, node_id: Hashable, now: float) -> bool:
        """CSMA carrier sense: is the medium busy as heard by this node?"""
        return self.busy_until(node_id) > now

    # -------------------------------------------------------- transmission
    def transmit(self, sender_id: Hashable, packet: Packet, tx_range: float) -> None:
        """Broadcast ``packet`` from ``sender_id`` reaching ``tx_range`` meters.

        Delivery (or corruption) is resolved when the frame's airtime ends.
        """
        validated = self._valid_ranges.get(tx_range)
        if validated is None:
            validated = self._valid_ranges[tx_range] = self.radio.validate_tx_range(
                tx_range
            )
        tx_range = validated
        sender = self._endpoints.get(sender_id)
        if sender is None:
            raise KeyError(f"unknown sender {sender_id!r}")
        if self.sanitizer is not None:
            self.sanitizer.on_transmit(sender, self.sim.now)
        size = packet.size_bytes
        airtime = self._airtimes.get(size)
        if airtime is None:
            airtime = self._airtimes[size] = self.radio.airtime(size)
        now = self.sim.now
        end = now + airtime
        incr = self.counters.incr
        incr("frames_sent")

        # Half duplex: transmitting corrupts anything the sender was receiving
        # and blocks reception until the transmission ends.
        store = self._store
        transmitting = self._transmitting_until
        prior = transmitting.get(sender_id, 0.0)
        deadline = end if end > prior else prior
        transmitting[sender_id] = deadline
        if store is not None:
            sender_row = store.row_of[sender_id]
            store.tx_until[sender_row] = deadline
            store.tx_until_py[sender_row] = deadline
        own_incoming = self._incoming.get(sender_id)
        if own_incoming:
            for reception in own_incoming.values():
                reception.corrupted = True

        if self.energy_hook is not None:
            self.energy_hook(sender_id, "tx", airtime, packet)

        uid = packet.uid
        endpoints = self._endpoints
        incoming = self._incoming
        tracer = self.tracer
        receivers: List[Hashable] = []
        prefiltered = False
        if sender_id not in self.grid:
            # Sender already left the grid (death raced a pending frame):
            # resolve its audience from the recorded position, uncached.
            survivors = self.neighbors.neighbors_at(
                sender.position, tx_range, exclude=sender_id
            )
        elif store is None:
            survivors = self.neighbors.neighbors_with_distance(sender_id, tx_range)
        else:
            entry = self.neighbors.columnar_entry(sender_id, tx_range)
            memo = entry[2]
            if not self._all_publish or tracer is not None:
                # A legacy endpoint is attached (no published listening
                # state), or a tracer wants its drop/collision events
                # interleaved per candidate — exactly as the scalar backend
                # emits them, byte-identical traces being the gate.  Either
                # way: per-candidate filters below.
                if memo is not None:
                    survivors = memo
                elif entry[3] is not None:
                    ids = store.ids
                    survivors = [
                        (ids[row], dist)
                        for row, dist in zip(entry[3], entry[4])
                    ]
                else:
                    survivors = self.neighbors._materialize(sender_id, entry[0])
            elif entry[3] is not None:
                # Small/mid-size audience: filter by plain list index over
                # the store's listening/half-duplex mirrors — the same two
                # checks as the per-candidate loop below, minus the method
                # call and dict lookups per candidate (and minus the
                # vectorized mask's fixed numpy overhead, which dominates
                # below a few hundred candidates).
                listening_py = store.listening_py
                tx_py = store.tx_until_py
                survivors = []
                keep = survivors.append
                n_hd = 0
                if memo is not None:
                    for pair, row in zip(memo, entry[3]):
                        if listening_py[row]:
                            if tx_py[row] > now:
                                n_hd += 1
                            else:
                                keep(pair)
                else:
                    ids = store.ids
                    dists_list = entry[4]
                    for index, row in enumerate(entry[3]):
                        if listening_py[row]:
                            if tx_py[row] > now:
                                n_hd += 1
                            else:
                                keep((ids[row], dists_list[index]))
                if n_hd:
                    incr("half_duplex_losses", n_hd)
                prefiltered = True
            else:
                # Large audience: one vectorized mask over the store's
                # listening/half-duplex columns replaces per-candidate
                # checks.  Rows arrive in canonical (distance, insertion
                # index) order and the mask preserves it, so the survivor
                # loop below runs in exactly the order the per-candidate
                # path would.
                rows = entry[0]
                cand_listen = store.listening[rows]
                keep_mask = cand_listen & (store.tx_until[rows] <= now)
                n_hd = int(np.count_nonzero(cand_listen)) - int(
                    np.count_nonzero(keep_mask)
                )
                if n_hd:
                    incr("half_duplex_losses", n_hd)
                survivor_rows = rows[keep_mask]
                cx, cy = sender.position
                dx = store.xs[survivor_rows] - cx
                dy = store.ys[survivor_rows] - cy
                dists = np.sqrt(dx * dx + dy * dy)
                ids = store.ids
                survivors = [
                    (ids[row], dist)
                    for row, dist in zip(survivor_rows.tolist(), dists.tolist())
                ]
                prefiltered = True
        for node_id, dist in survivors:
            if not prefiltered:
                # Per-candidate path: the prefiltered branches above have
                # already applied exactly these two filters.
                endpoint = endpoints.get(node_id)
                if endpoint is None or not endpoint.is_listening():
                    continue
                if transmitting.get(node_id, 0.0) > now:
                    # Receiver is itself on the air: frame is lost to it.
                    incr("half_duplex_losses")
                    if tracer is not None:
                        tracer.emit(trace_events.drop(now, node_id, "half_duplex"))
                    continue
            reception = Reception(packet, end, dist)
            active = incoming.get(node_id)
            if active is None:
                incoming[node_id] = {uid: reception}
            else:
                if active:
                    # Overlap at this receiver: everything involved corrupts.
                    reception.corrupted = True
                    corrupted_now = 1
                    for other in active.values():
                        if not other.corrupted:
                            other.corrupted = True
                            incr("collisions")
                            corrupted_now += 1
                    incr("collisions")
                    if tracer is not None:
                        tracer.emit(
                            trace_events.collision(now, node_id, corrupted_now)
                        )
                active[uid] = reception
            receivers.append(node_id)

        if not receivers:
            # Nobody will hear this frame: the tx-side energy and counters
            # are already charged above, so skip scheduling a completion
            # event outright.  Both backends compute the same (empty)
            # audience, so the event stream stays backend-identical.
            return
        kind = packet.kind
        label = self._rx_labels.get(kind)
        if label is None:
            label = self._rx_labels[kind] = f"rx:{kind}"
        self._pending_tx[uid] = (sender_id, packet, receivers, airtime)
        self.sim.schedule(
            airtime,
            self._complete,
            sender_id,
            packet,
            receivers,
            airtime,
            priority=PRIORITY_HIGH,
            label=label,
            handler=("channel.rx", (uid,)),
        )

    # ---------------------------------------------------------- completion
    def _complete(
        self,
        sender_id: Hashable,
        packet: Packet,
        receivers: List[Hashable],
        airtime: float,
    ) -> None:
        uid = packet.uid
        self._pending_tx.pop(uid, None)
        incoming = self._incoming
        endpoints = self._endpoints
        incr = self.counters.incr
        energy_hook = self.energy_hook
        tracer = self.tracer
        loss_rate = self.loss_rate
        loss_process = self.loss_process
        rng = self.rng
        radio = self.radio
        # The stock radio without irregularity is a pure power law; inlining
        # it here skips a method call per delivered frame.  Any subclass (or
        # jittered attenuation) still goes through ``radio.rssi``.
        plain_rssi = type(radio) is RadioModel and radio.irregularity == 0.0
        neg_alpha = -radio.path_loss_exponent
        for node_id in receivers:
            active = incoming.get(node_id)
            if active is None:
                continue
            # The emptied per-receiver dict is kept for reuse by the next
            # frame (receivers hear frames repeatedly; churning dicts costs
            # an allocation per reception).  ``detach`` drops the whole entry.
            reception = active.pop(uid, None)
            if reception is None:
                continue
            endpoint = endpoints.get(node_id)
            if endpoint is None or not endpoint.is_listening():
                # Receiver died or slept mid-frame.
                incr("aborted_receptions")
                if tracer is not None:
                    tracer.emit(
                        trace_events.drop(self.sim.now, node_id, "aborted")
                    )
                continue
            if energy_hook is not None:
                energy_hook(node_id, "rx", airtime, packet)
            if reception.corrupted:
                continue
            if loss_rate > 0 and rng.random() < loss_rate:
                incr("random_losses")
                if tracer is not None:
                    tracer.emit(
                        trace_events.drop(self.sim.now, node_id, "random")
                    )
                continue
            if loss_process is not None and loss_process.drop(self.sim.now):
                incr("bursty_losses")
                if tracer is not None:
                    tracer.emit(
                        trace_events.drop(self.sim.now, node_id, "bursty")
                    )
                continue
            dist = reception.dist
            if plain_rssi:
                rssi = dist**neg_alpha if dist > 1e-9 else float("inf")
            else:
                rssi = radio.rssi(dist, rng)
            incr("frames_delivered")
            endpoint.on_packet(packet, rssi, dist)

    # ------------------------------------------------------------- snapshot
    def state_dict(self) -> dict:
        """Serializable medium state (peas-snapshot/1).

        Covers counters, in-flight frames (the ``_pending_tx`` registry plus
        each receiver's reception view) and the half-duplex deadlines.  The
        per-transmit memos, the neighbor cache and the store mirrors are
        derived state, rebuilt on demand after a restore.  The channel RNG
        and the bursty-loss overlay are owned elsewhere (RngRegistry and the
        fault engine respectively).
        """
        pending = [
            [uid, sender_id, packet_to_dict(packet), list(receivers), airtime]
            for uid, (sender_id, packet, receivers, airtime) in self._pending_tx.items()
        ]
        incoming = []
        for node_id, active in self._incoming.items():
            if not active:
                # Emptied per-receiver dicts are an allocation-reuse detail;
                # a missing entry behaves identically.
                continue
            incoming.append(
                [
                    node_id,
                    [
                        [uid, r.end_time, r.dist, r.corrupted]
                        for uid, r in active.items()
                    ],
                ]
            )
        return {
            "counters": self.counters.state_dict(),
            "pending_tx": pending,
            "incoming": incoming,
            "transmitting_until": [
                [k, v] for k, v in self._transmitting_until.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict`.

        Must run *before* the engine's queue restore so the ``channel.rx``
        resolver can find its pending entries.  Bumps the process-global
        packet-uid floor past every restored in-flight uid (receptions are
        keyed by uid, so a collision would cross-wire deliveries).
        """
        self.counters.load_state(state["counters"])
        self._pending_tx = {}
        max_uid = -1
        for uid, sender_id, packet_spec, receivers, airtime in state["pending_tx"]:
            uid = int(uid)
            self._pending_tx[uid] = (
                sender_id,
                packet_from_dict(packet_spec),
                list(receivers),
                float(airtime),
            )
            if uid > max_uid:
                max_uid = uid
        if max_uid >= 0:
            ensure_uid_floor(max_uid + 1)
        self._incoming = {}
        for node_id, entries in state["incoming"]:
            active: Dict[int, Reception] = {}
            for uid, end_time, dist, corrupted in entries:
                uid = int(uid)
                active[uid] = Reception(
                    self._pending_tx[uid][1],
                    float(end_time),
                    float(dist),
                    bool(corrupted),
                )
            self._incoming[node_id] = active
        self._transmitting_until = {}
        store = self._store
        for node_id, deadline in state["transmitting_until"]:
            deadline = float(deadline)
            self._transmitting_until[node_id] = deadline
            if store is not None:
                row = store.row_of.get(node_id)
                if row is not None:
                    store.tx_until[row] = deadline
                    store.tx_until_py[row] = deadline


@register_handler("channel.rx")
def _resolve_channel_rx(ctx: RestoreContext, event) -> None:
    channel = ctx.component("channel")
    uid = int(event.handler[1][0])
    sender_id, packet, receivers, airtime = channel._pending_tx[uid]
    event.fn = channel._complete
    event.args = (sender_id, packet, receivers, airtime)
