"""Packet representation for the control plane.

PEAS's control traffic consists of 25-byte PROBE and REPLY broadcasts
(§5.1).  The network layer is agnostic to packet kinds; protocol semantics
live in :mod:`repro.core.messages`, which builds payloads carried here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["Packet", "PACKET_SIZE_BYTES"]

#: The paper's PROBE/REPLY packet size (§5.1): "The packet size of PROBE and
#: REPLY messages is 25 bytes, which is enough to hold the information they
#: need to carry."
PACKET_SIZE_BYTES = 25

_packet_ids = itertools.count()


@dataclass(eq=False, slots=True)
class Packet:
    """An over-the-air frame.

    Packets are logically immutable and compare by identity: the per-instance
    ``uid`` makes every frame distinct, so the frozen/value-equality semantics
    of earlier versions were identity in practice — this formulation just
    constructs ~3x faster (no ``object.__setattr__`` per field), which matters
    because one packet is allocated per PROBE/REPLY broadcast.

    Attributes
    ----------
    kind:
        Application-level type tag (e.g. ``"PROBE"``/``"REPLY"``).
    sender:
        Node id of the transmitter.
    payload:
        Opaque protocol payload (a message object from ``repro.core``).
    size_bytes:
        Frame length; determines airtime via the radio bitrate.
    uid:
        Unique id assigned at construction, useful for trace correlation.
    """

    kind: str
    sender: Hashable
    payload: Any = None
    size_bytes: int = PACKET_SIZE_BYTES
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
