"""Packet representation for the control plane.

PEAS's control traffic consists of 25-byte PROBE and REPLY broadcasts
(§5.1).  The network layer is agnostic to packet kinds; protocol semantics
live in :mod:`repro.core.messages`, which builds payloads carried here.

Snapshot support: in-flight frames must round-trip through the
``peas-snapshot/1`` format, but this layer cannot know the payload types
(they live one layer up, in ``repro.core``).  Payload classes therefore
register a tagged codec via :func:`register_payload`, and
:func:`packet_to_dict` / :func:`packet_from_dict` serialize whole frames
without a downward import.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Tuple, Type

__all__ = [
    "Packet",
    "PACKET_SIZE_BYTES",
    "register_payload",
    "packet_to_dict",
    "packet_from_dict",
    "ensure_uid_floor",
]

#: The paper's PROBE/REPLY packet size (§5.1): "The packet size of PROBE and
#: REPLY messages is 25 bytes, which is enough to hold the information they
#: need to carry."
PACKET_SIZE_BYTES = 25

_packet_ids = itertools.count()


@dataclass(eq=False, slots=True)
class Packet:
    """An over-the-air frame.

    Packets are logically immutable and compare by identity: the per-instance
    ``uid`` makes every frame distinct, so the frozen/value-equality semantics
    of earlier versions were identity in practice — this formulation just
    constructs ~3x faster (no ``object.__setattr__`` per field), which matters
    because one packet is allocated per PROBE/REPLY broadcast.

    Attributes
    ----------
    kind:
        Application-level type tag (e.g. ``"PROBE"``/``"REPLY"``).
    sender:
        Node id of the transmitter.
    payload:
        Opaque protocol payload (a message object from ``repro.core``).
    size_bytes:
        Frame length; determines airtime via the radio bitrate.
    uid:
        Unique id assigned at construction, useful for trace correlation.
    """

    kind: str
    sender: Hashable
    payload: Any = None
    size_bytes: int = PACKET_SIZE_BYTES
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")


# --------------------------------------------------------------------------
# Snapshot codecs.
# --------------------------------------------------------------------------
#: tag -> (payload class, to_dict, from_dict)
_PAYLOAD_CODECS: Dict[str, Tuple[Type, Callable[[Any], dict], Callable[[dict], Any]]] = {}


def register_payload(
    tag: str,
    cls: Type,
    to_dict: Callable[[Any], dict],
    from_dict: Callable[[dict], Any],
) -> None:
    """Register a payload type's snapshot codec under ``tag``.

    Called at import time by the modules that define payload classes
    (e.g. :mod:`repro.core.messages`), so the packet layer can serialize
    frames without importing protocol code.
    """
    if tag in _PAYLOAD_CODECS:
        raise ValueError(f"payload tag {tag!r} is already registered")
    _PAYLOAD_CODECS[tag] = (cls, to_dict, from_dict)


def packet_to_dict(packet: Packet) -> dict:
    """Serialize a frame (payload via its registered codec)."""
    payload = None
    if packet.payload is not None:
        for tag, (cls, to_dict, _from_dict) in _PAYLOAD_CODECS.items():
            if isinstance(packet.payload, cls):
                payload = [tag, to_dict(packet.payload)]
                break
        else:
            raise TypeError(
                f"packet payload {type(packet.payload).__name__} has no "
                "registered snapshot codec (see register_payload)"
            )
    return {
        "kind": packet.kind,
        "sender": packet.sender,
        "payload": payload,
        "size": packet.size_bytes,
        "uid": packet.uid,
    }


def packet_from_dict(spec: dict) -> Packet:
    """Rebuild a frame serialized by :func:`packet_to_dict`, keeping its
    original ``uid`` (pending receptions are keyed by it)."""
    payload = None
    if spec["payload"] is not None:
        tag, data = spec["payload"]
        try:
            _cls, _to_dict, from_dict = _PAYLOAD_CODECS[tag]
        except KeyError:
            raise ValueError(f"unknown packet payload tag {tag!r}") from None
        payload = from_dict(data)
    return Packet(
        kind=spec["kind"],
        sender=spec["sender"],
        payload=payload,
        size_bytes=int(spec["size"]),
        uid=int(spec["uid"]),
    )


def ensure_uid_floor(next_uid: int) -> None:
    """Advance the process-global uid counter to at least ``next_uid``.

    Called after a restore so frames allocated post-restore can never
    collide with restored in-flight uids (receptions are keyed by uid).
    The counter is process-global, so uid values are *not* part of the
    byte-identity contract — they never appear in traces or metrics; only
    uniqueness within a run matters.
    """
    global _packet_ids
    current = next(_packet_ids)
    _packet_ids = itertools.count(max(current, int(next_uid)))
