"""Node deployment generators.

The paper's evaluation deploys nodes uniformly at random (§5.2) and its §4
discussion ("Distribution of deployed nodes") argues that uneven deployments
shorten system life because sparse regions die out first.  We provide the
uniform generator used by all paper experiments plus grid-jitter and
clustered (uneven) generators used by the deployment-distribution ablation.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List

from .field import Field, Point

__all__ = [
    "uniform_deployment",
    "grid_deployment",
    "clustered_deployment",
    "corner_heavy_deployment",
    "DEPLOYMENTS",
]


def uniform_deployment(field: Field, n: int, rng: random.Random) -> List[Point]:
    """``n`` positions i.i.d. uniform over the field (the paper's default)."""
    if n < 0:
        raise ValueError("n must be nonnegative")
    return [field.random_point(rng) for _ in range(n)]


def grid_deployment(
    field: Field, n: int, rng: random.Random, jitter: float = 0.25
) -> List[Point]:
    """Near-regular lattice of ``n`` nodes with per-node jitter.

    ``jitter`` is the uniform displacement amplitude as a fraction of the
    lattice spacing.  Used as a best-case "evenly deployed" comparator for
    the §4 deployment-distribution discussion.
    """
    if n <= 0:
        return []
    aspect = field.width / field.height
    ny = max(1, int(round(math.sqrt(n / aspect))))
    nx = max(1, int(math.ceil(n / ny)))
    dx = field.width / nx
    dy = field.height / ny
    points: List[Point] = []
    for i in range(nx):
        for j in range(ny):
            if len(points) >= n:
                break
            x = (i + 0.5) * dx + rng.uniform(-jitter, jitter) * dx
            y = (j + 0.5) * dy + rng.uniform(-jitter, jitter) * dy
            points.append(field.clamp((x, y)))
    return points


def clustered_deployment(
    field: Field,
    n: int,
    rng: random.Random,
    clusters: int = 5,
    spread_fraction: float = 0.12,
) -> List[Point]:
    """Uneven deployment: Gaussian clusters around random centers.

    ``spread_fraction`` scales the cluster standard deviation relative to
    the field diagonal.  Regions far from every cluster receive few nodes,
    reproducing the §4 "uneven distribution" scenario.
    """
    if clusters <= 0:
        raise ValueError("clusters must be positive")
    centers = [field.random_point(rng) for _ in range(clusters)]
    sigma = spread_fraction * math.hypot(field.width, field.height)
    points: List[Point] = []
    for _ in range(n):
        cx, cy = centers[rng.randrange(clusters)]
        points.append(
            field.clamp((rng.gauss(cx, sigma), rng.gauss(cy, sigma)))
        )
    return points


def corner_heavy_deployment(
    field: Field, n: int, rng: random.Random, bias: float = 0.7
) -> List[Point]:
    """Uneven deployment biased toward the origin corner.

    A ``bias`` fraction of nodes land in the origin quadrant; the rest are
    uniform.  Exercises the case where the region near one corner (e.g. the
    sink) is over-provisioned while the far corner starves.
    """
    if not 0.0 <= bias <= 1.0:
        raise ValueError("bias must be in [0, 1]")
    points: List[Point] = []
    for _ in range(n):
        if rng.random() < bias:
            points.append(
                (rng.uniform(0, field.width / 2), rng.uniform(0, field.height / 2))
            )
        else:
            points.append(field.random_point(rng))
    return points


#: Registry used by scenario configuration (name -> generator).
DEPLOYMENTS: Dict[str, Callable[..., List[Point]]] = {
    "uniform": uniform_deployment,
    "grid": grid_deployment,
    "clustered": clustered_deployment,
    "corner_heavy": corner_heavy_deployment,
}
