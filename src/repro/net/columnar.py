"""Columnar (struct-of-arrays) backing store for per-node state.

The object-graph substrate keeps node state spread across Python objects —
per-node positions inside bucket dicts, listening state behind a method
call, half-duplex deadlines in a dict — which is exactly the layout the
simulator-survey literature blames for the 10k-node wall: every range query
and every broadcast fan-out walks pointers one node at a time.

:class:`ColumnarNodeStore` holds the same state as parallel numpy arrays
(positions, insertion index, alive mask, listening flag, half-duplex
``tx_until``), and :class:`ColumnarSpatialGrid` answers range queries as a
bounding-box slice over an x-sorted view plus a squared-distance mask —
identical arithmetic to the scalar bucket scan, so results match the scalar
backend *bit for bit* (same ids, same canonical order).

Backend selection
-----------------
``REPRO_BACKEND=scalar|columnar`` picks the spatial-index implementation
(default ``columnar``); :func:`make_spatial_grid` is the single
construction point used by the PEAS network, the baselines and the
analysis helpers.  Both backends share every consumer code path, which is
what makes the scalar/columnar golden-trace byte-identity gate
(``tests/integration/test_columnar_identity.py``) meaningful.

Rows are append-only: node death marks ``alive[row] = False`` but never
reuses the row, so a row index doubles as the node's grid insertion index
and id→row mappings stay valid for the whole run (the channel still needs
the row of a node whose death raced its own in-flight frame).
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from .field import Field, Point
from .spatial import SpatialGrid

__all__ = [
    "ColumnarNodeStore",
    "ColumnarSpatialGrid",
    "backend_default",
    "make_spatial_grid",
]

_ENV_BACKEND = "REPRO_BACKEND"
_BACKENDS = ("scalar", "columnar")


def backend_default() -> str:
    """The spatial-index backend selected by ``REPRO_BACKEND``.

    ``columnar`` (the default) uses :class:`ColumnarSpatialGrid`;
    ``scalar`` keeps the pure-Python bucket grid.  Any other value raises,
    so typos cannot silently fall back to the slow path.
    """
    value = os.environ.get(_ENV_BACKEND, "columnar").lower()
    if value not in _BACKENDS:
        raise ValueError(
            f"{_ENV_BACKEND} must be one of {_BACKENDS}, got {value!r}"
        )
    return value


def make_spatial_grid(
    field: Field, cell_size: float, backend: Optional[str] = None
) -> SpatialGrid:
    """Construct the spatial index for the selected backend.

    ``backend=None`` reads ``REPRO_BACKEND`` (default ``columnar``).  Both
    implementations satisfy the full :class:`SpatialGrid` contract and
    return element-for-element identical query results.
    """
    chosen = backend_default() if backend is None else backend.lower()
    if chosen == "scalar":
        return SpatialGrid(field, cell_size)
    if chosen == "columnar":
        return ColumnarSpatialGrid(field, cell_size)
    raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")


class ColumnarNodeStore:
    """Parallel per-node state arrays, grown by doubling, rows append-only.

    Columns
    -------
    ``xs`` / ``ys``
        Positions (float64), exactly the floats handed to ``insert``.
    ``alive``
        False once the node left the index (death); dead rows are
        tombstones excluded by every query mask.
    ``listening``
        Radio-on flag published by protocol endpoints via
        :meth:`repro.net.channel.BroadcastChannel.note_listening`; lets the
        broadcast fan-out filter an entire neighborhood with one mask
        instead of one ``is_listening()`` call per candidate.
    ``tx_until``
        Absolute time the node's own transmission ends (half duplex),
        maintained by the channel.
    """

    __slots__ = (
        "xs", "ys", "alive", "listening", "tx_until",
        "listening_py", "tx_until_py",
        "ids", "row_of", "size", "death_epoch", "_capacity",
    )

    def __init__(self, capacity: int = 64) -> None:
        capacity = max(int(capacity), 8)
        self.xs = np.zeros(capacity, dtype=np.float64)
        self.ys = np.zeros(capacity, dtype=np.float64)
        self.alive = np.zeros(capacity, dtype=bool)
        self.listening = np.zeros(capacity, dtype=bool)
        self.tx_until = np.zeros(capacity, dtype=np.float64)
        #: plain-list mirrors of ``listening`` / ``tx_until``: small
        #: broadcast audiences filter per candidate, where a list index is
        #: several times cheaper than a numpy scalar read or a method call
        self.listening_py: List[bool] = []
        self.tx_until_py: List[float] = []
        #: row -> id (rows of removed nodes keep their id; rows never recycle)
        self.ids: List[Hashable] = []
        #: id -> row, kept across removal (see module docstring)
        self.row_of: Dict[Hashable, int] = {}
        self.size = 0
        #: bumped on every kill; consumers cache it to answer "has anything
        #: died since I computed this?" with one int compare
        self.death_epoch = 0
        self._capacity = capacity

    def append(self, item: Hashable, x: float, y: float) -> int:
        """Add a live row for ``item`` and return its index."""
        row = self.size
        if row == self._capacity:
            self._grow()
        self.xs[row] = x
        self.ys[row] = y
        self.alive[row] = True
        self.listening[row] = False
        self.tx_until[row] = 0.0
        self.listening_py.append(False)
        self.tx_until_py.append(0.0)
        self.ids.append(item)
        self.row_of[item] = row
        self.size = row + 1
        return row

    def kill(self, item: Hashable) -> None:
        """Tombstone ``item``'s row (removal from the index)."""
        row = self.row_of[item]
        self.alive[row] = False
        self.listening[row] = False
        self.listening_py[row] = False
        self.death_epoch += 1

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        for name in ("xs", "ys", "alive", "listening", "tx_until"):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)
        self._capacity = new_capacity


class ColumnarSpatialGrid(SpatialGrid):
    """Drop-in :class:`SpatialGrid` with vectorized range queries.

    Mutations delegate to the scalar superclass (keeping the bucket grid,
    position map and insertion order authoritative — mutations are rare:
    deployment setup plus node deaths) and mirror into the columnar store;
    the query methods are overridden with numpy implementations over the
    store's position columns.

    Query strategy: an x-sorted row index (built lazily, invalidated by
    insert) turns the bounding box ``|x - cx| <= r`` into one
    ``searchsorted`` slice; the slice is then filtered by the exact
    squared-distance mask ``dx*dx + dy*dy <= r*r`` — the same float
    arithmetic as the scalar bucket scan, so membership is bit-identical.
    """

    def __init__(self, field: Field, cell_size: float) -> None:
        super().__init__(field, cell_size)
        self.store = ColumnarNodeStore()
        #: row indices sorted by x (tombstones included) + their x values
        self._sorted_rows: Optional[np.ndarray] = None
        self._sorted_xs: Optional[np.ndarray] = None

    # ------------------------------------------------------------- mutation
    def insert(self, item: Hashable, position: Point) -> None:
        super().insert(item, position)
        self.store.append(item, float(position[0]), float(position[1]))
        self._sorted_rows = None
        self._sorted_xs = None

    def remove(self, item: Hashable) -> None:
        super().remove(item)
        # Tombstone only: the sorted-by-x view stays valid, dead rows are
        # masked out per query.
        self.store.kill(item)

    # -------------------------------------------------------------- queries
    def _sorted_view(self) -> Tuple[np.ndarray, np.ndarray]:
        rows = self._sorted_rows
        if rows is None:
            size = self.store.size
            xs = self.store.xs[:size]
            rows = np.argsort(xs, kind="stable").astype(np.intp)
            self._sorted_rows = rows
            self._sorted_xs = xs[rows].copy()
        assert self._sorted_xs is not None
        return rows, self._sorted_xs

    def query_rows(
        self, center: Point, radius: float, exclude_row: int = -1
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Live rows within ``radius`` of ``center`` plus squared distances.

        Rows come back sorted by ``(dist_sq, insertion index)`` — the
        canonical neighbor-list order (a columnar row index *is* the grid
        insertion index, rows being append-only).
        """
        if radius < 0:
            raise ValueError("radius must be nonnegative")
        cx, cy = center
        sorted_rows, sorted_xs = self._sorted_view()
        lo = int(np.searchsorted(sorted_xs, cx - radius, side="left"))
        hi = int(np.searchsorted(sorted_xs, cx + radius, side="right"))
        empty = np.empty(0, dtype=np.intp)
        if lo >= hi:
            return empty, np.empty(0, dtype=np.float64)
        candidates = sorted_rows[lo:hi]
        store = self.store
        dx = store.xs[candidates] - cx
        dy = store.ys[candidates] - cy
        d_sq = dx * dx + dy * dy
        mask = (d_sq <= radius * radius) & store.alive[candidates]
        if exclude_row >= 0:
            mask &= candidates != exclude_row
        rows = candidates[mask]
        if rows.size == 0:
            return empty, np.empty(0, dtype=np.float64)
        dists = d_sq[mask]
        # Primary key: squared distance; tie-break: insertion index (= row).
        chosen = np.lexsort((rows, dists))
        return rows[chosen], dists[chosen]

    def row_index(self, item: Hashable) -> int:
        """The store row of ``item`` (valid even after removal)."""
        return self.store.row_of[item]

    def within(self, center: Point, radius: float) -> List[Hashable]:
        rows, _ = self.query_rows(center, radius)
        if rows.size == 0:
            return []
        ids = self.store.ids
        # Canonical ``within`` order is insertion order (documented in
        # :class:`SpatialGrid`); rows are insertion-ordered by construction.
        return [ids[row] for row in np.sort(rows).tolist()]

    def within_annotated(
        self, center: Point, radius: float
    ) -> List[Tuple[float, int, Hashable]]:
        rows, d_sq = self.query_rows(center, radius)
        ids = self.store.ids
        return [
            (dist, row, ids[row])
            for dist, row in zip(d_sq.tolist(), rows.tolist())
        ]

    def nearest(self, center: Point) -> Hashable:
        if not self._positions:
            raise ValueError("index is empty")
        store = self.store
        size = store.size
        cx, cy = center
        dx = store.xs[:size] - cx
        dy = store.ys[:size] - cy
        d_sq = dx * dx + dy * dy
        d_sq[~store.alive[:size]] = np.inf
        # argmin's first-minimum rule == lowest row == earliest insertion,
        # a deterministic stand-in for the scalar path's "arbitrary" ties.
        return store.ids[int(np.argmin(d_sq))]
