"""MAC-layer timing helpers: randomized backoffs and frame spreading.

PEAS does not use a full contention MAC; instead it relies on randomized
timing to keep its tiny control frames from colliding (§2.1, §4):

* a working node waits "a small random period" before sending its REPLY;
* a probing node transmits its repeated PROBEs "randomly spread over a
  small time interval".

These helpers centralize that timing logic so nodes and tests share one
implementation.
"""

from __future__ import annotations

import random
from typing import List

__all__ = [
    "reply_backoff",
    "spread_transmissions",
    "probe_offsets",
    "probe_span",
    "probe_arrival_offset",
    "reply_phase",
    "reply_delay",
    "window_layout",
]


def reply_backoff(rng: random.Random, window: float) -> float:
    """Uniform REPLY backoff in ``[0, window)``.

    ``window`` must leave room inside the prober's listening window for the
    REPLY's own airtime; callers pass ``probe_window - airtime`` margins.
    """
    if window <= 0:
        raise ValueError(f"backoff window must be positive, got {window}")
    return rng.uniform(0.0, window)


def spread_transmissions(
    rng: random.Random, count: int, window: float, min_gap: float
) -> List[float]:
    """Offsets for ``count`` repeated frames spread over ``[0, window]``.

    The first frame goes out immediately (offset 0) so a lossless probe
    gets the fastest possible answer; subsequent frames are placed in
    successive slots of the window with uniform jitter, always at least
    ``min_gap`` (one frame airtime) apart so a node never overlaps itself.

    >>> rng = random.Random(1)
    >>> offsets = spread_transmissions(rng, 3, 0.06, 0.01)
    >>> len(offsets), offsets[0]
    (3, 0.0)
    >>> all(b - a >= 0.01 - 1e-12 for a, b in zip(offsets, offsets[1:]))
    True
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if count == 1:
        return [0.0]
    if window <= 0:
        raise ValueError("window must be positive")
    if min_gap < 0:
        raise ValueError("min_gap must be nonnegative")
    if (count - 1) * min_gap > window:
        raise ValueError(
            f"cannot fit {count} frames with gap {min_gap} in window {window}"
        )
    offsets = [0.0]
    slot = window / (count - 1)
    for i in range(1, count):
        low = max(offsets[-1] + min_gap, (i - 1) * slot)
        high = max(low, min(i * slot, window - (count - 1 - i) * min_gap))
        offsets.append(rng.uniform(low, high))
    return offsets


def probe_span(count: int, airtime: float, gap: float) -> float:
    """Duration of a back-to-back PROBE burst: count frames with gaps."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if airtime <= 0 or gap < 0:
        raise ValueError("airtime must be positive and gap nonnegative")
    return count * airtime + (count - 1) * gap


def probe_offsets(count: int, airtime: float, gap: float) -> List[float]:
    """Deterministic transmit offsets for a wakeup's PROBE burst.

    PROBEs go out back to back (one airtime plus a small inter-frame gap
    apart) so the listening window splits cleanly into a probing phase and
    a replying phase: workers never have to transmit while the prober is
    still on the air, which a randomized spread cannot guarantee under the
    half-duplex radio.

    >>> probe_offsets(3, 0.010, 0.002)
    [0.0, 0.012, 0.024]
    """
    probe_span(count, airtime, gap)  # validates
    return [i * (airtime + gap) for i in range(count)]


def reply_phase(
    num_probes: int, airtime: float, gap: float, window: float, guard: float
) -> "tuple[float, float]":
    """(earliest, latest) REPLY transmit-start offsets from the wakeup.

    The reply phase is the tail of the prober's listening window after the
    whole PROBE burst has finished, minus guard margins and the REPLY's own
    airtime.  Workers randomize their REPLY transmit times over this whole
    phase (and additionally self-separate their own repeated REPLYs); the
    phase never overlaps the burst, so under the half-duplex radio a lone
    worker's REPLYs are guaranteed receivable by the prober.
    """
    if guard < 0:
        raise ValueError("guard must be nonnegative")
    span = probe_span(num_probes, airtime, gap)
    reply_lo = span + guard
    reply_hi = window - airtime - guard
    if reply_hi <= reply_lo:
        raise ValueError(
            f"no reply phase: probes span {span:.4f}s of a {window:.4f}s window"
        )
    return reply_lo, reply_hi


def probe_arrival_offset(probe_index: int, airtime: float, gap: float) -> float:
    """Time from the prober's wakeup until PROBE ``probe_index`` is fully
    received (deterministic burst offsets + one airtime)."""
    if probe_index < 0:
        raise ValueError("probe_index must be nonnegative")
    return probe_index * (airtime + gap) + airtime


def window_layout(
    num_probes: int, airtime: float, gap: float, window: float, guard: float
) -> dict:
    """The complete control-plane timing of one listening window.

    Run manifests embed this block so a trace consumer can reconstruct the
    PROBE burst / reply-phase split exactly as the run used it, without
    re-deriving it from config + radio parameters.
    """
    reply_lo, reply_hi = reply_phase(num_probes, airtime, gap, window, guard)
    return {
        "num_probes": num_probes,
        "frame_airtime_s": airtime,
        "probe_gap_s": gap,
        "probe_window_s": window,
        "reply_guard_s": guard,
        "probe_offsets_s": probe_offsets(num_probes, airtime, gap),
        "probe_span_s": probe_span(num_probes, airtime, gap),
        "reply_phase_s": [reply_lo, reply_hi],
    }


def reply_delay(
    rng: random.Random,
    probe_index: int,
    num_probes: int,
    airtime: float,
    gap: float,
    window: float,
    guard: float,
) -> float:
    """Backoff (from PROBE reception) for the REPLY answering that PROBE:
    a uniform transmit time over the whole reply phase.  Returns a
    nonnegative delay in seconds."""
    if not 0 <= probe_index < num_probes:
        raise ValueError("probe_index out of range")
    reply_lo, reply_hi = reply_phase(num_probes, airtime, gap, window, guard)
    target = rng.uniform(reply_lo, reply_hi)
    return max(target - probe_arrival_offset(probe_index, airtime, gap), 0.0)
