"""Radio model: bitrate/airtime, propagation and received signal strength.

The paper's hardware model (§5.1, Berkeley-Motes-like):

* raw capacity 20 kbps -> a 25-byte frame occupies the air for 10 ms;
* sensing range and *maximum* transmission range are both 10 m;
* nodes may either select transmission power to reach a chosen range
  (variable-power mode, §2) or always transmit at full power and filter
  receptions by signal-strength threshold (fixed-power mode, §4).

Signal strength uses a unit-free inverse-power-law path loss
``rssi = (1/d)^alpha`` so that a threshold corresponds one-to-one with a
filtering distance; §4's "irregularities in signal attenuation" are modeled
as a per-reception multiplicative jitter on the attenuation exponentiated
distance (see :meth:`RadioModel.rssi`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["RadioModel"]


@dataclass
class RadioModel:
    """Physical-layer parameters and derived quantities.

    Parameters
    ----------
    bitrate_bps:
        Channel capacity; the paper uses 20 kbps.
    max_range_m:
        Maximum transmission range R_t at full power (paper: 10 m).
    path_loss_exponent:
        alpha in ``rssi = d^-alpha``; 2.0 approximates free space.
    irregularity:
        Amplitude of multiplicative log-uniform RSSI jitter in [0, 1).
        0 disables irregularity (the default for paper experiments).
    """

    bitrate_bps: float = 20_000.0
    max_range_m: float = 10.0
    path_loss_exponent: float = 2.0
    irregularity: float = 0.0

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if self.max_range_m <= 0:
            raise ValueError("max range must be positive")
        if self.path_loss_exponent <= 0:
            raise ValueError("path loss exponent must be positive")
        if not 0.0 <= self.irregularity < 1.0:
            raise ValueError("irregularity must be in [0, 1)")

    # ----------------------------------------------------------------- time
    def airtime(self, size_bytes: int) -> float:
        """Seconds a frame of the given size occupies the channel."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        return (size_bytes * 8) / self.bitrate_bps

    # --------------------------------------------------------------- signal
    def rssi(self, dist: float, rng: Optional[random.Random] = None) -> float:
        """Received signal strength at distance ``dist`` (unit-free).

        With irregularity ``e``, the effective distance is scaled by a
        uniform factor in ``[1-e, 1+e]`` before applying path loss,
        capturing §4's spatially varying attenuation.
        """
        if dist < 0:
            raise ValueError("distance must be nonnegative")
        effective = dist
        if self.irregularity > 0 and rng is not None:
            effective = dist * rng.uniform(1.0 - self.irregularity, 1.0 + self.irregularity)
        if effective <= 1e-9:
            return float("inf")
        return effective ** (-self.path_loss_exponent)

    def threshold_for_range(self, range_m: float) -> float:
        """Signal threshold S_th equivalent to accepting senders within
        ``range_m`` under nominal (jitter-free) attenuation — the fixed-power
        filtering rule of §4."""
        if not 0 < range_m <= self.max_range_m:
            raise ValueError(
                f"range must be in (0, {self.max_range_m}], got {range_m}"
            )
        return range_m ** (-self.path_loss_exponent)

    def validate_tx_range(self, range_m: float) -> float:
        """Clamp-check a requested variable-power transmission range."""
        if range_m <= 0:
            raise ValueError("transmission range must be positive")
        if range_m > self.max_range_m + 1e-9:
            raise ValueError(
                f"requested range {range_m} exceeds max range {self.max_range_m}"
            )
        return float(range_m)
