"""Uniform-grid spatial index for range queries over stationary nodes.

Sensor nodes in the paper are stationary once deployed (§5.2), so the index
is built once and queried many times: the radio channel asks "who is within
transmission range r of point p" on every PROBE/REPLY, and the routing layer
asks for communication-range neighborhoods.

A uniform bucket grid gives O(1) expected query time for the short ranges the
protocol uses (probing range 3 m, radio range 10 m in a 50 x 50 m field).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Tuple

from .field import Field, Point, distance_sq

__all__ = ["SpatialGrid"]


class SpatialGrid:
    """Bucket-grid index mapping ids to fixed positions.

    Parameters
    ----------
    field:
        The deployment field (defines the indexed extent).
    cell_size:
        Bucket edge length.  A good choice is the most common query radius;
        queries then touch at most 9 buckets.
    """

    def __init__(self, field: Field, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.field = field
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[Hashable]] = {}
        self._positions: Dict[Hashable, Point] = {}

    # ------------------------------------------------------------- mutation
    def insert(self, item: Hashable, position: Point) -> None:
        if item in self._positions:
            raise KeyError(f"item {item!r} already indexed")
        self._positions[item] = position
        self._cells.setdefault(self._cell_of(position), []).append(item)

    def remove(self, item: Hashable) -> None:
        position = self._positions.pop(item)
        cell = self._cell_of(position)
        self._cells[cell].remove(item)
        if not self._cells[cell]:
            del self._cells[cell]

    def bulk_insert(self, items: Iterable[Tuple[Hashable, Point]]) -> None:
        for item, position in items:
            self.insert(item, position)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._positions

    def position(self, item: Hashable) -> Point:
        return self._positions[item]

    def within(self, center: Point, radius: float) -> List[Hashable]:
        """All indexed items within ``radius`` of ``center`` (inclusive)."""
        if radius < 0:
            raise ValueError("radius must be nonnegative")
        r_sq = radius * radius
        cx, cy = center
        span = int(math.ceil(radius / self.cell_size))
        icx, icy = self._cell_of(center)
        found: List[Hashable] = []
        positions = self._positions
        for ix in range(icx - span, icx + span + 1):
            for iy in range(icy - span, icy + span + 1):
                bucket = self._cells.get((ix, iy))
                if not bucket:
                    continue
                for item in bucket:
                    if distance_sq(positions[item], (cx, cy)) <= r_sq:
                        found.append(item)
        return found

    def nearest(self, center: Point) -> Hashable:
        """The indexed item closest to ``center`` (ties broken arbitrarily)."""
        if not self._positions:
            raise ValueError("index is empty")
        # Expanding-ring search over buckets.
        radius = self.cell_size
        max_extent = math.hypot(self.field.width, self.field.height) + self.cell_size
        while radius <= max_extent:
            candidates = self.within(center, radius)
            if candidates:
                return min(
                    candidates,
                    key=lambda it: distance_sq(self._positions[it], center),
                )
            radius *= 2
        # Fallback: exhaustive (only reachable with pathological cell sizes).
        return min(
            self._positions,
            key=lambda it: distance_sq(self._positions[it], center),
        )

    def items(self) -> Iterable[Tuple[Hashable, Point]]:
        return self._positions.items()

    # ------------------------------------------------------------ internals
    def _cell_of(self, position: Point) -> Tuple[int, int]:
        return (
            int(math.floor(position[0] / self.cell_size)),
            int(math.floor(position[1] / self.cell_size)),
        )
